// Quorum-based distributed mutual-exclusive lock over multiple clouds,
// built from nothing but empty files and the five basic file APIs.
//
// Protocol (Section 5.2 of the paper):
//  1. The attempting device uploads an empty lock file named
//     "lock_<device>_<t>" into a dedicated /lock directory on every cloud.
//  2. It lists /lock on each cloud; it holds that cloud's lock iff its own
//     file is the only lock file present.
//  3. Holding a majority of clouds = holding the global lock. Otherwise the
//     device withdraws (deletes its files everywhere) and retries after a
//     random backoff.
//  4. While holding the lock, the device refreshes it periodically; other
//     clients record when they *first saw* each lock file (local clocks
//     only) and break locks older than a staleness threshold dT by deleting
//     them — so a crashed holder cannot block progress forever, and a
//     recovered holder discovers the loss because its file names changed.
//
// Correctness needs only read-after-write consistency from each cloud: once
// a client's list() shows lock file A, later list() calls also show A (until
// deleted), so two devices cannot both see themselves alone on a majority.
#pragma once

#include <algorithm>
#include <map>
#include <string>

#include "cloud/provider.h"
#include "common/clock.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/obs.h"

namespace unidrive::lock {

// Sleeping is injected so tests and simulations control time; the type and
// default implementation are the shared ones from common/retry.h.
using ::unidrive::real_sleep;
using ::unidrive::SleepFn;

struct LockConfig {
  std::string lock_dir = "/lock";
  Duration stale_after = 120.0;      // dT: break locks seen for this long
  Duration refresh_interval = 30.0;  // holder re-stamps its lock this often
  // Contention backoff between acquisition rounds reuses the unified retry
  // policy: max_attempts rounds, decorrelated-jitter pauses in
  // [backoff_base, backoff_cap], and an optional total_deadline budget on
  // the whole acquisition.
  RetryPolicy retry{.max_attempts = 16,
                    .backoff_base = 0.5,
                    .backoff_cap = 30.0};
};

class QuorumLock {
 public:
  // When `obs` is non-null, acquisition is traced ("lock.acquire" span with
  // one "lock.round" child per protocol round) and counted:
  //   lock.rounds, lock.acquired, lock.contention, lock.outage,
  //   lock.stale_broken, lock.backoffs; lock.acquire.latency histogram.
  QuorumLock(cloud::MultiCloud clouds, std::string device, LockConfig config,
             Clock& clock, Rng rng, SleepFn sleep = real_sleep(),
             obs::ObsPtr obs = nullptr);

  // Tries to acquire the global lock; blocks (via the sleep function)
  // between attempts. kLockContention after max_attempts failures, kOutage
  // when fewer than a majority of clouds answer at all.
  Status acquire();

  // Re-stamps the lock files (new timestamped names) so other clients'
  // first-seen timers restart. Call at least every `stale_after` while
  // holding. Fails if the majority was lost (e.g. our files were broken).
  Status refresh();

  // Deletes this device's lock files everywhere. Idempotent.
  void release();

  [[nodiscard]] bool held() const noexcept { return held_; }

  // Housekeeping any client performs whenever it lists a lock dir: record
  // first-seen times and delete lock files that have been visible for more
  // than `stale_after` on that cloud. Exposed for tests; acquire() calls it.
  void break_stale_locks(cloud::CloudProvider& cloud,
                         const std::vector<cloud::FileInfo>& listing);

 private:
  [[nodiscard]] std::string make_lock_name();
  // One acquisition round; returns number of clouds whose lock we hold
  // exclusively and the number of clouds that responded to list().
  struct RoundOutcome {
    std::size_t exclusive = 0;
    std::size_t responded = 0;
  };
  RoundOutcome attempt_round(const std::string& lock_name);
  void delete_own_locks();

  [[nodiscard]] std::size_t majority() const noexcept {
    // max() keeps the degenerate empty multi-cloud unsatisfiable.
    return std::max<std::size_t>(1, clouds_.size() / 2 + 1);
  }

  cloud::MultiCloud clouds_;
  std::string device_;
  LockConfig config_;
  Clock* clock_;  // non-owning, never null (pointer keeps locks assignable)
  Rng rng_;
  SleepFn sleep_;
  obs::ObsPtr obs_;

  bool held_ = false;
  std::string current_lock_name_;
  std::uint64_t stamp_counter_ = 0;
  // first-seen registry: (cloud id, lock file name) -> local first-seen time.
  std::map<std::pair<cloud::CloudId, std::string>, TimePoint> first_seen_;
};

}  // namespace unidrive::lock
