// Figure 16 — real-world trial, temporal view: daily average upload
// throughput for medium-sized files (100 KB - 1 MB) over one week at four
// representative sites. Paper: performance is stable across days and close
// across sites.
#include <map>

#include "bench_util.h"
#include "workload/trial.h"

namespace unidrive::bench {
namespace {

void run() {
  std::printf("=== Figure 16: daily avg upload throughput, medium files "
              "(100 KB - 1 MB), one week (Mbps) ===\n\n");
  workload::TrialConfig config;
  config.num_files = 30000;
  const workload::Trial trial = workload::generate_trial(config, 28001);

  // Four representative sites with different regions.
  const std::vector<std::size_t> chosen_sites = {0, 6, 10, 19};

  // site -> day -> summary
  std::map<std::size_t, std::vector<Summary>> daily;
  for (const std::size_t s : chosen_sites) daily[s].resize(7);

  std::size_t replayed = 0;
  for (std::size_t e = 0; e < trial.events.size(); ++e) {
    const auto& event = trial.events[e];
    if (daily.count(event.site) == 0) continue;
    if (workload::size_class_of(event.bytes) != 1) continue;  // medium only
    if (replayed++ % 3 != 0) continue;  // sample 1/3 to bound runtime

    const double mbps = replay_trial_upload(trial, e, 28100 + e);
    if (mbps < 0) continue;
    const auto day = static_cast<std::size_t>(event.time / 86400.0);
    if (day < 7) daily[event.site][day].add(mbps);
  }

  std::printf("%-12s", "site");
  for (int day = 0; day < 7; ++day) std::printf("   Sep-%2d", 14 + day);
  std::printf("\n");
  print_rule(12 + 9 * 7);
  Summary all;
  for (const std::size_t s : chosen_sites) {
    std::printf("%-12s", trial.sites[s].name.c_str());
    for (int day = 0; day < 7; ++day) {
      std::printf(" %8s", fmt(daily[s][static_cast<std::size_t>(day)].avg(), 2).c_str());
      if (daily[s][static_cast<std::size_t>(day)].count() > 0) {
        all.add(daily[s][static_cast<std::size_t>(day)].avg());
      }
    }
    std::printf("\n");
  }

  std::printf("\nPaper-shape check: across sites and days, daily averages "
              "stay within a narrow band (here %s..%s Mbps).\n",
              fmt(all.min(), 2).c_str(), fmt(all.max(), 2).c_str());
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
