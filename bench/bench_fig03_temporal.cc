// Figure 3 — temporal dimension: daily upload time of an 8 MB file over a
// month on the Princeton node, for the three U.S. CCSs. The paper's
// findings: high fluctuation with no predictable pattern (same-day max/min
// up to 17x for Dropbox) and variations largely independent across clouds.
#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr std::uint64_t kBytes = 8 << 20;
constexpr int kDays = 30;
constexpr int kSamplesPerDay = 48;

void run() {
  std::printf(
      "=== Figure 3: daily 8 MB upload time over a month, Princeton ===\n");
  const auto princeton = sim::planetlab_locations()[0];
  sim::SimEnv env(42);
  sim::CloudSet set = sim::make_cloud_set(env, princeton, 42);

  // sample[cloud][day][slot]
  std::vector<std::vector<std::vector<double>>> samples(
      3, std::vector<std::vector<double>>(kDays));
  for (int day = 0; day < kDays; ++day) {
    for (int slot = 0; slot < kSamplesPerDay; ++slot) {
      advance_to(env, day * 86400.0 + slot * 1800.0);
      for (std::size_t c = 0; c < 3; ++c) {  // the three U.S. CCSs
        const double t = measure_raw(env, *set.clouds[c], kBytes, false);
        if (t > 0) samples[c][day].push_back(t);
      }
    }
  }

  std::printf("%-5s %33s %33s %33s\n", "day", "Dropbox avg/min/max",
              "OneDrive avg/min/max", "GoogleDrive avg/min/max");
  print_rule(110);
  double worst_ratio = 0;
  for (int day = 0; day < kDays; ++day) {
    std::printf("%-5d", day + 1);
    for (std::size_t c = 0; c < 3; ++c) {
      Summary s;
      for (const double v : samples[c][day]) s.add(v);
      if (c == 0 && s.min() > 0) {
        worst_ratio = std::max(worst_ratio, s.max() / s.min());
      }
      std::printf(" %10s/%9s/%11s", fmt(s.avg()).c_str(), fmt(s.min()).c_str(),
                  fmt(s.max()).c_str());
    }
    std::printf("\n");
  }

  // Cross-cloud correlation of the daily averages (paper: ~independent).
  std::vector<double> daily[3];
  for (std::size_t c = 0; c < 3; ++c) {
    for (int day = 0; day < kDays; ++day) {
      Summary s;
      for (const double v : samples[c][day]) s.add(v);
      daily[c].push_back(s.avg());
    }
  }
  std::printf("\nPaper-shape checks:\n");
  std::printf("  max same-day max/min ratio (Dropbox): %s (paper: up to ~17x)\n",
              fmt(worst_ratio, 1).c_str());
  std::printf("  corr(Dropbox, OneDrive) daily avg: %s (paper: ~independent)\n",
              fmt_signed(correlation(daily[0], daily[1])).c_str());
  std::printf("  corr(Dropbox, GoogleDrive) daily avg: %s\n",
              fmt_signed(correlation(daily[0], daily[2])).c_str());
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
