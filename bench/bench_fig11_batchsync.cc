// Figure 11 — end-to-end sync time for a batch of 100 x 1 MB files, from
// each EC2 node to the other six. Approaches: the three U.S. native apps,
// the intuitive multi-cloud, the multi-cloud benchmark, and UniDrive.
// Paper: UniDrive is fastest and most consistent everywhere; speedups over
// the top-3 CCSs average 1.33x / 1.61x / 1.75x; the intuitive solution is
// the slowest (dominated by the slowest cloud); UniDrive beats the
// benchmark by ~1.4x on average.
#include <array>

#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr std::size_t kNumFiles = 100;
constexpr std::uint64_t kFileSize = 1 << 20;
constexpr int kReps = 3;

enum Approach : std::size_t {
  kDropbox = 0,
  kOneDrive = 1,
  kGoogleDrive = 2,
  kIntuitive = 3,
  kBenchmark = 4,
  kUniDrive = 5,
  kNumApproaches = 6,
};
const char* kNames[kNumApproaches] = {"Dropbox",   "OneDrive",  "GoogleDrive",
                                      "Intuitive", "Benchmark", "UniDrive"};

double run_approach(Approach approach, std::size_t up_loc,
                    std::uint64_t seed) {
  const auto locations = sim::ec2_locations();
  sim::SimEnv env(seed);
  sim::CloudSet up = sim::make_cloud_set(env, locations[up_loc], seed);
  std::vector<std::unique_ptr<sim::CloudSet>> downs;
  for (std::size_t li = 0; li < locations.size(); ++li) {
    if (li == up_loc) continue;
    downs.push_back(std::make_unique<sim::CloudSet>(
        sim::make_cloud_set(env, locations[li], seed * 31 + li)));
  }

  if (approach == kUniDrive || approach == kBenchmark) {
    sim::E2EConfig config;
    config.num_files = kNumFiles;
    config.file_size = kFileSize;
    if (approach == kBenchmark) {
      config.upload_options.overprovision = false;
      config.upload_options.availability_first = false;
      config.run.dynamic_polling = false;
    }
    std::vector<sim::CloudSet*> down_ptrs;
    for (const auto& d : downs) down_ptrs.push_back(d.get());
    const auto result = sim::run_unidrive_e2e(env, up, down_ptrs, config);
    return result.batch_sync_time;
  }

  baselines::BaselineE2EConfig config;
  config.num_files = kNumFiles;
  config.file_size = kFileSize;
  if (approach == kIntuitive) {
    std::vector<const sim::CloudSet*> down_ptrs;
    for (const auto& d : downs) down_ptrs.push_back(d.get());
    const auto result = baselines::intuitive_e2e(env, up, down_ptrs, config);
    return result.batch_sync_time;
  }

  const auto cloud_index = static_cast<std::size_t>(approach);
  std::vector<sim::SimCloud*> down_clouds;
  for (const auto& d : downs) {
    down_clouds.push_back(d->clouds[cloud_index].get());
  }
  const auto result = baselines::native_e2e(
      env, *up.clouds[cloud_index], down_clouds,
      static_cast<sim::CloudKind>(cloud_index), config);
  return result.batch_sync_time;
}

void run() {
  std::printf("=== Figure 11: end-to-end batch sync time, 100 x 1 MB, "
              "each node -> other 6 (avg[min..max] s, %d reps) ===\n\n",
              kReps);
  const auto locations = sim::ec2_locations();
  std::printf("%-10s", "uploader");
  for (const char* n : kNames) std::printf(" %24s", n);
  std::printf("\n");
  print_rule(10 + 25 * kNumApproaches);

  std::array<Summary, kNumApproaches> location_avgs;
  std::vector<double> unidrive_avg_per_loc;
  for (std::size_t li = 0; li < locations.size(); ++li) {
    std::array<Summary, kNumApproaches> stats;
    for (int rep = 0; rep < kReps; ++rep) {
      const std::uint64_t seed = 17000 + li * 100 + rep;
      for (std::size_t a = 0; a < kNumApproaches; ++a) {
        stats[a].add(run_approach(static_cast<Approach>(a), li, seed));
      }
    }
    std::printf("%-10s", locations[li].name.c_str());
    for (std::size_t a = 0; a < kNumApproaches; ++a) {
      std::printf(" %9s[%5s..%6s]", fmt(stats[a].avg(), 0).c_str(),
                  fmt(stats[a].min(), 0).c_str(),
                  fmt(stats[a].max(), 0).c_str());
      location_avgs[a].add(stats[a].avg());
    }
    unidrive_avg_per_loc.push_back(stats[kUniDrive].avg());
    std::printf("\n");

    // Per-location speedups vs the top-3 CCSs (sorted fastest first).
    std::vector<double> ccs = {stats[kDropbox].avg(), stats[kOneDrive].avg(),
                               stats[kGoogleDrive].avg()};
    std::sort(ccs.begin(), ccs.end());
    std::printf("%10s speedup vs top-3 CCS: %sx / %sx / %sx; "
                "vs benchmark: %sx\n",
                "",
                fmt(ccs[0] / stats[kUniDrive].avg(), 2).c_str(),
                fmt(ccs[1] / stats[kUniDrive].avg(), 2).c_str(),
                fmt(ccs[2] / stats[kUniDrive].avg(), 2).c_str(),
                fmt(stats[kBenchmark].avg() / stats[kUniDrive].avg(), 2)
                    .c_str());
  }

  std::printf("\n=== Summary across locations (paper: 1.33x/1.61x/1.75x "
              "vs top-3; ~1.4x vs benchmark; intuitive slowest) ===\n");
  for (std::size_t a = 0; a < kNumApproaches; ++a) {
    std::printf("  %-12s avg sync time %ss\n", kNames[a],
                fmt(location_avgs[a].avg(), 0).c_str());
  }
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
