// bench_population — the population harness at fleet scale. Three stages:
//
//   1. Idle fleet: construct a million-client harness and verify the
//      light-state claim — O(bytes) per idle client, folder state not
//      materialized until touched.
//   2. Smoke soak (hard-gated): ~10k clients through the full "soak"
//      scenario — diurnal arrivals, quota exhaustion, cloud churn, a flash
//      crowd and every chaos fault injector including silent bit-rot and
//      block loss, with scrub-and-repair anchors running. Gates: ZERO lost
//      updates, ZERO unrecoverable segments, zero unledgered redundancy
//      erosion, zero stale devices, and the fleet sync-latency p99 under
//      two poll intervals.
//   3. Scale ladder: the paper's 272-user trial population up through
//      >= 100k clients under the steady scenario, with a bounded
//      resident-memory gate (sessions per rung are held roughly constant,
//      so RSS must not scale with fleet size).
//
// Emits BENCH_population.json (CI artifact). Scale knobs for the nightly
// soak: UNIDRIVE_POP_SMOKE_CLIENTS, UNIDRIVE_POP_SMOKE_HORIZON,
// UNIDRIVE_POP_SCENARIO, UNIDRIVE_POP_SCALE_CLIENTS, UNIDRIVE_POP_SEED,
// UNIDRIVE_POP_P99_LIMIT, UNIDRIVE_POP_RSS_LIMIT_MB.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/population/population.h"
#include "sim/population/scenario.h"

namespace unidrive::bench {
namespace {

using sim::population::FleetConfig;
using sim::population::FleetResult;
using sim::population::PopulationHarness;
using sim::population::Scenario;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 0));
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

// Resident set size in bytes, from /proc/self/status (0 if unreadable —
// the memory gate is skipped on platforms without procfs).
std::uint64_t resident_bytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %" SCNu64 " kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

struct LatencyTail {
  double p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t count = 0;
};

LatencyTail latency_tail(const FleetResult& r) {
  LatencyTail t;
  const auto it = r.metrics.histograms.find("fleet.sync_latency");
  if (it == r.metrics.histograms.end()) return t;
  t.p50 = it->second.p50;
  t.p95 = it->second.p95;
  t.p99 = it->second.p99;
  t.count = it->second.count;
  return t;
}

struct StageRow {
  std::string name;
  std::size_t clients = 0;
  FleetResult result;
  LatencyTail tail;
  std::uint64_t rss_after = 0;
};

int run() {
  const std::uint64_t seed = env_u64("UNIDRIVE_POP_SEED", 42);
  const std::size_t smoke_clients =
      static_cast<std::size_t>(env_u64("UNIDRIVE_POP_SMOKE_CLIENTS", 10000));
  const double smoke_horizon =
      env_double("UNIDRIVE_POP_SMOKE_HORIZON", 1800.0);
  const char* scenario_env = std::getenv("UNIDRIVE_POP_SCENARIO");
  const std::string scenario_name =
      scenario_env != nullptr && *scenario_env != '\0' ? scenario_env : "soak";
  const std::size_t scale_clients =
      static_cast<std::size_t>(env_u64("UNIDRIVE_POP_SCALE_CLIENTS", 100000));
  // Under the chaos soak the tail legitimately stacks a poll interval on a
  // breaker-open window on a degraded (churn-rebalancing) sync — observed
  // p99 is ~1000 s. The gate catches the next regime up (retry storms,
  // repair starvation push p99 past 1800 s).
  const double p99_limit = env_double("UNIDRIVE_POP_P99_LIMIT", 1500.0);
  const std::uint64_t rss_limit =
      env_u64("UNIDRIVE_POP_RSS_LIMIT_MB", 2048) * (1ull << 20);

  int failures = 0;

  // --- stage 1: idle fleet ------------------------------------------------
  const std::uint64_t rss_start = resident_bytes();
  std::size_t idle_bytes_per_client = 0;
  std::uint64_t idle_rss_delta = 0;
  std::size_t idle_folders = 0;
  {
    FleetConfig cfg;
    cfg.seed = seed;
    cfg.num_clients = 1'000'000;
    PopulationHarness idle(cfg);
    idle_bytes_per_client = idle.idle_state_bytes();
    idle_folders = idle.num_folders();
    idle_rss_delta = resident_bytes() > rss_start
                         ? resident_bytes() - rss_start
                         : 0;
    std::printf(
        "stage idle: %zu clients, %zu folders declared, %zu bytes/idle "
        "client, %.1f MB resident for the whole idle fleet\n",
        idle.num_clients(), idle_folders, idle_bytes_per_client,
        static_cast<double>(idle_rss_delta) / (1 << 20));
    if (idle_bytes_per_client > 64) {
      std::fprintf(stderr,
                   "FAIL: idle client state %zu bytes > 64 — the light-state "
                   "model regressed\n",
                   idle_bytes_per_client);
      ++failures;
    }
    if (rss_start > 0 && idle_rss_delta > 256ull * cfg.num_clients) {
      std::fprintf(stderr,
                   "FAIL: idle fleet resident delta %.1f MB exceeds 256 "
                   "bytes/client\n",
                   static_cast<double>(idle_rss_delta) / (1 << 20));
      ++failures;
    }
  }

  // --- stage 2: hard-gated smoke soak ------------------------------------
  std::vector<StageRow> rows;
  {
    auto scenario = sim::population::make_scenario(scenario_name);
    if (!scenario.is_ok()) {
      std::fprintf(stderr, "unknown scenario '%s'\n", scenario_name.c_str());
      return 2;
    }
    FleetConfig cfg;
    cfg.seed = seed;
    cfg.num_clients = smoke_clients;
    cfg.horizon = smoke_horizon;
    StageRow row;
    row.name = "smoke_" + scenario_name;
    row.clients = smoke_clients;
    row.result = sim::population::run_scenario(cfg, scenario.value());
    row.tail = latency_tail(row.result);
    row.rss_after = resident_bytes();
    std::printf(
        "stage smoke (%s): %zu clients, %zu sessions, %zu commits, "
        "%zu conflicts, %zu audits (%zu strict), %zu segments deduped "
        "(%.1f MB saved), latency p50/p95/p99 = %.1f/%.1f/%.1f s\n",
        scenario_name.c_str(), smoke_clients, row.result.sessions,
        row.result.commits, row.result.conflicts, row.result.audits,
        row.result.strict_audited, row.result.segments_deduped,
        static_cast<double>(row.result.dedup_bytes_saved) / (1 << 20),
        row.tail.p50, row.tail.p95, row.tail.p99);

    if (row.result.commits == 0) {
      std::fprintf(stderr, "FAIL: smoke soak committed nothing\n");
      ++failures;
    }
    if (row.result.lost_updates != 0) {
      std::fprintf(stderr, "FAIL: %zu lost updates (gate: zero)\n",
                   row.result.lost_updates);
      ++failures;
    }
    if (row.result.unrecoverable_segments != 0) {
      std::fprintf(stderr, "FAIL: %zu unrecoverable segments (gate: zero)\n",
                   row.result.unrecoverable_segments);
      ++failures;
    }
    if (row.result.underrep_unledgered != 0) {
      std::fprintf(stderr,
                   "FAIL: %zu under-replicated segments with no defect "
                   "ledger entry (gate: zero)\n",
                   row.result.underrep_unledgered);
      ++failures;
    }
    if (row.result.stale_devices != 0) {
      std::fprintf(stderr, "FAIL: %zu devices still stale at drain\n",
                   row.result.stale_devices);
      ++failures;
    }
    if (row.tail.count > 0 && row.tail.p99 > p99_limit) {
      std::fprintf(stderr, "FAIL: sync latency p99 %.1f s > %.1f s\n",
                   row.tail.p99, p99_limit);
      ++failures;
    }
    rows.push_back(std::move(row));
  }

  // --- stage 3: scale ladder ----------------------------------------------
  // Arrival rate is scaled down as the fleet grows so total sessions stay
  // roughly constant: any RSS growth across rungs is fleet-size overhead,
  // not workload.
  std::vector<std::size_t> ladder = {272, 10000};
  if (scale_clients > ladder.back()) ladder.push_back(scale_clients);
  auto steady = sim::population::make_scenario("steady");
  if (!steady.is_ok()) return 2;
  constexpr double kLadderHorizon = 1200.0;
  constexpr double kLadderSessions = 600.0;
  for (const std::size_t clients : ladder) {
    FleetConfig cfg;
    cfg.seed = seed + clients;
    cfg.num_clients = clients;
    cfg.horizon = kLadderHorizon;
    cfg.sessions_per_client_per_day =
        kLadderSessions * 86400.0 /
        (static_cast<double>(clients) * kLadderHorizon);
    StageRow row;
    row.name = "scale_" + std::to_string(clients);
    row.clients = clients;
    row.result = sim::population::run_scenario(cfg, steady.value());
    row.tail = latency_tail(row.result);
    row.rss_after = resident_bytes();
    std::printf(
        "stage scale %zu: %zu sessions, %zu commits, %zu folders touched, "
        "rss %.1f MB\n",
        clients, row.result.sessions, row.result.commits,
        row.result.folders_touched,
        static_cast<double>(row.rss_after) / (1 << 20));
    if (row.result.sessions == 0 || row.result.commits == 0) {
      std::fprintf(stderr, "FAIL: scale rung %zu ran no work\n", clients);
      ++failures;
    }
    if (row.result.lost_updates != 0 ||
        row.result.unrecoverable_segments != 0) {
      std::fprintf(stderr,
                   "FAIL: scale rung %zu lost %zu updates, %zu segments "
                   "unrecoverable (gates: zero)\n",
                   clients, row.result.lost_updates,
                   row.result.unrecoverable_segments);
      ++failures;
    }
    if (row.rss_after > rss_limit) {
      std::fprintf(stderr,
                   "FAIL: resident memory %.1f MB over the %.0f MB cap at "
                   "%zu clients\n",
                   static_cast<double>(row.rss_after) / (1 << 20),
                   static_cast<double>(rss_limit) / (1 << 20), clients);
      ++failures;
    }
  }

  // --- artifact -----------------------------------------------------------
  FILE* json = std::fopen("BENCH_population.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"seed\": %" PRIu64 ",\n"
                 "  \"scenario\": \"%s\",\n"
                 "  \"idle\": {\"clients\": 1000000, \"folders\": %zu, "
                 "\"bytes_per_client\": %zu, \"rss_delta_bytes\": %" PRIu64
                 "},\n"
                 "  \"stages\": [\n",
                 seed, scenario_name.c_str(), idle_folders,
                 idle_bytes_per_client, idle_rss_delta);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const StageRow& row = rows[i];
      const FleetResult& r = row.result;
      std::fprintf(
          json,
          "    {\"stage\": \"%s\", \"clients\": %zu, \"folders\": %zu, "
          "\"folders_touched\": %zu, \"sessions\": %zu, \"syncs\": %zu, "
          "\"sync_errors\": %zu, \"commits\": %zu, \"conflicts\": %zu, "
          "\"deferred\": %zu, \"peak_live_sessions\": %zu, "
          "\"audits\": %zu, \"strict_audited\": %zu, "
          "\"lost_updates\": %zu, \"unrecoverable_segments\": %zu, "
          "\"underrep_unledgered\": %zu, \"restore_failures\": %zu, "
          "\"stale_devices\": %zu, \"cloud_stored_bytes\": %" PRIu64 ", "
          "\"segments_deduped\": %zu, \"dedup_bytes_saved\": %" PRIu64 ", "
          "\"latency_p50_s\": %.3f, \"latency_p95_s\": %.3f, "
          "\"latency_p99_s\": %.3f, \"latency_samples\": %" PRIu64 ", "
          "\"rss_bytes\": %" PRIu64 "}%s\n",
          row.name.c_str(), row.clients, r.folders, r.folders_touched,
          r.sessions, r.syncs, r.sync_errors, r.commits, r.conflicts,
          r.deferred, r.peak_live_sessions, r.audits, r.strict_audited,
          r.lost_updates, r.unrecoverable_segments, r.underrep_unledgered,
          r.restore_failures, r.stale_devices, r.cloud_stored_bytes,
          r.segments_deduped, r.dedup_bytes_saved,
          row.tail.p50, row.tail.p95, row.tail.p99, row.tail.count,
          row.rss_after, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"gates\": {\"p99_limit_s\": %.1f, \"rss_limit_mb\": "
                 "%.0f, \"failures\": %d}\n"
                 "}\n",
                 p99_limit, static_cast<double>(rss_limit) / (1 << 20),
                 failures);
    std::fclose(json);
  }

  if (failures == 0) {
    std::printf(
        "gates: zero lost updates, zero unrecoverable segments, zero "
        "unledgered erosion, p99 <= %.0f s, rss <= %.0f MB — all held\n",
        p99_limit, static_cast<double>(rss_limit) / (1 << 20));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace unidrive::bench

int main() { return unidrive::bench::run(); }
