// Observability smoke bench: runs a real client (memory clouds with
// injected transient failures) through a few sync rounds and dumps the full
// metrics/span registry to metrics.json — the artifact CI uploads so a
// regression in instrumentation coverage is visible per-commit.
//
// Usage: bench_obs_smoke [output-path]   (default ./metrics.json)
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "common/rng.h"
#include "core/client.h"
#include "obs/obs.h"

namespace unidrive::bench {
namespace {

int run(const std::string& out_path) {
  cloud::MultiCloud clouds;
  cloud::FaultProfile profile;
  profile.base_failure_rate = 0.15;
  for (cloud::CloudId id = 0; id < 5; ++id) {
    auto raw = std::make_shared<cloud::MemoryCloud>(
        id, "cloud" + std::to_string(id));
    clouds.push_back(
        std::make_shared<cloud::FaultyCloud>(raw, profile, 900 + id));
  }

  core::ClientConfig config;
  config.device = "bench";
  config.theta = 64 << 10;
  config.retry.max_attempts = 10;
  config.retry.backoff_base = 0.0005;
  config.retry.backoff_cap = 0.002;
  config.breaker.consecutive_failures_to_open = 50;
  config.breaker.window_failure_ratio_to_open = 0.95;
  config.lock.retry.backoff_base = 0.001;
  config.lock.retry.backoff_cap = 0.01;

  auto fs = std::make_shared<core::MemoryLocalFs>();
  core::UniDriveClient client(clouds, fs, config);

  Rng rng(77);
  for (int round = 0; round < 3; ++round) {
    const Bytes content = rng.bytes(80000 + round * 40000);
    const std::string path = "/bench_file_" + std::to_string(round);
    if (!fs->write(path, ByteSpan(content)).is_ok()) return 1;
    auto report = client.sync();
    if (!report.is_ok()) {
      std::fprintf(stderr, "sync round %d failed: %s\n", round,
                   report.status().to_string().c_str());
      return 1;
    }
    std::printf("round %d: committed=%d segments=%zu conflicts=%zu\n", round,
                report.value().committed ? 1 : 0,
                report.value().segments_uploaded,
                report.value().conflicts.size());
  }

  const obs::Observability& sink = *client.observability();
  const obs::MetricsSnapshot snap = sink.metrics.snapshot();
  std::printf("\nblocks placed: %llu, retries: ",
              static_cast<unsigned long long>(
                  snap.counter_value("sched.blocks.placed")));
  std::uint64_t retries = 0;
  for (int i = 0; i < 5; ++i) {
    retries +=
        snap.counter_value("retry.cloud" + std::to_string(i) + ".retries");
  }
  std::printf("%llu, spans: %zu\n",
              static_cast<unsigned long long>(retries),
              sink.tracer.finished().size());

  const Status written = obs::WriteJsonFile(sink, out_path);
  if (!written.is_ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                 written.to_string().c_str());
    return 1;
  }
  std::printf("metrics written to %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace unidrive::bench

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "metrics.json";
  return unidrive::bench::run(out);
}
