// bench_meta_scale — commit/catch-up cost of the metadata plane as the
// folder grows: monolithic MetaStore (one image, O(folder) folds) vs the
// sharded ShardedMetaStore (per-shard bases + delta logs, O(changed
// subtree) commits), plus a concurrent-writer ladder over the sharded
// store with per-shard locks.
//
// Ladder: 10k -> 100k -> 1M files (UNIDRIVE_META_SCALE_FILES appends an
// extra point, e.g. 10000000). At each point we measure a ONE-FILE commit
// at its amortized-worst moment — the fold the delta policy forces once
// the log outgrows λ. Monolithic, that fold re-serializes, re-encrypts and
// re-replicates the entire image; sharded, it folds one shard (shard count
// scales with the folder, so the shard stays O(changed subtree)). Reader
// catch-up after that commit is measured the same way: the monolithic
// reader replays the full image, the sharded reader re-fetches exactly the
// one advanced shard (version short-circuit serves the rest from cache).
//
// Writer ladder: 1 -> 1000 writers, each committing one token file to its
// own subtree through its own ShardedMetaStore + LockManager over shared
// clouds. Disjoint shards stage concurrently; only the root flip
// serializes.
//
// Emits BENCH_meta.json (CI artifact). Hard gates (exit 1):
//   * sharded one-file fold commit at the 1M point is >= 10x faster than
//     the monolithic equivalent;
//   * sharded commit latency grows sublinearly across the ladder
//     (O(changed subtree), not O(folder)): the 100x file-count span may
//     cost at most 10x in commit latency;
//   * every ladder commit succeeded, and the writer ladder lost ZERO
//     updates (token oracle over the assembled image).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/memory_cloud.h"
#include "common/rng.h"
#include "lock/lock_manager.h"
#include "metadata/changelist.h"
#include "metadata/shard.h"
#include "metadata/sharded_store.h"
#include "metadata/store.h"

namespace unidrive::bench {
namespace {

using metadata::Change;
using metadata::DeltaPolicy;
using metadata::FileSnapshot;
using metadata::MetaStore;
using metadata::ShardConfig;
using metadata::ShardedMetaStore;
using metadata::ShardEntry;
using metadata::ShardManifest;
using metadata::SyncFolderImage;
using metadata::VersionStamp;

constexpr int kClouds = 3;
constexpr std::size_t kFilesPerDir = 1024;

double now_sec() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

// Peak resident set (MiB) from /proc/self/status; -1 when unavailable.
double peak_rss_mib() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  double kib = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %lf kB", &kib) == 1) break;
  }
  std::fclose(f);
  return kib < 0 ? -1 : kib / 1024.0;
}

cloud::MultiCloud make_clouds() {
  cloud::MultiCloud clouds;
  for (int i = 0; i < kClouds; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i)));
  }
  return clouds;
}

std::string file_path(std::size_t index) {
  return "/dir" + std::to_string(index / kFilesPerDir) + "/f" +
         std::to_string(index % kFilesPerDir);
}

FileSnapshot snapshot_of(const std::string& path) {
  FileSnapshot s;
  s.path = path;
  s.size = 4096;
  s.content_hash = "sha-" + path;
  s.origin_device = "bench";
  return s;
}

SyncFolderImage build_image(std::size_t files) {
  SyncFolderImage image;
  for (std::size_t i = 0; i < files; ++i) {
    image.upsert_file(snapshot_of(file_path(i)));
  }
  image.set_version({"bench", 1, 0.0});
  return image;
}

// Shard count scaling with the folder keeps each shard O(changed subtree):
// ~16k files per shard regardless of total size.
std::uint32_t shards_for(std::size_t files) {
  return std::max<std::uint32_t>(
      16, static_cast<std::uint32_t>(files / 16384));
}

struct PointResult {
  std::size_t files = 0;
  double mono_commit_s = -1;    // 1-file commit, fold due (O(folder))
  double mono_catchup_s = -1;   // reader replay after that commit
  double shard_commit_s = -1;   // 1-file commit, shard fold forced
  double shard_catchup_s = -1;  // warm reader: one shard re-fetched
  std::uint32_t num_shards = 0;
  bool ok = false;
};

PointResult run_point(const SyncFolderImage& image, std::size_t files) {
  PointResult r;
  r.files = files;
  r.num_shards = shards_for(files);

  const std::string touched = file_path(files / 2);
  // Fold ALWAYS due: this is the amortized-worst commit both designs pay
  // once the delta log outgrows λ — the O(folder)-vs-O(subtree) moment.
  const DeltaPolicy fold_now{.merge_ratio = 0.0, .merge_floor = 0};

  // --- monolithic -----------------------------------------------------------
  {
    MetaStore store(make_clouds(), "bench-pass");
    metadata::DeltaLog empty;
    if (!store.publish(image, empty, /*upload_base=*/true).is_ok()) return r;

    SyncFolderImage next = image;
    FileSnapshot s = snapshot_of(touched);
    s.content_hash = "sha-v2";
    const double t0 = now_sec();
    next.upsert_file(s);
    next.set_version({"bench", 2, 0.0});
    // The fold: the whole image re-serialized, re-encrypted, re-replicated.
    if (!store.publish(next, empty, /*upload_base=*/true).is_ok()) return r;
    r.mono_commit_s = now_sec() - t0;

    // Reader that fetched v1 catches up to v2: full O(folder) replay (the
    // version short-circuit only helps when NOTHING changed).
    MetaStore reader(store.clouds(), "bench-pass");
    const double t1 = now_sec();
    auto fetched = reader.fetch_latest();
    if (!fetched.is_ok()) return r;
    r.mono_catchup_s = now_sec() - t1;
  }

  // --- sharded --------------------------------------------------------------
  {
    auto clouds = make_clouds();
    ShardConfig cfg;
    cfg.num_shards = r.num_shards;
    ShardedMetaStore store(clouds, "bench-pass", cfg);

    // Seed: one bulk commit of every file (O(folder), paid once at setup).
    std::vector<Change> seed;
    seed.reserve(files);
    for (const auto& [path, snap] : image.files()) {
      seed.push_back(Change::upsert_file(snap));
    }
    ShardManifest fenced;
    fenced.num_shards = cfg.num_shards;
    std::vector<ShardEntry> dirty;
    for (const auto& slice :
         split_changes_by_shard(seed, cfg.num_shards)) {
      auto e = store.publish_shard(slice.shard, nullptr, slice.changes,
                                   image, {"bench", 1, 0.0}, fold_now);
      if (!e.is_ok()) return r;
      dirty.push_back(std::move(e).take());
    }
    if (!store.commit_manifest(dirty, fenced, {"bench", 1, 0.0}).is_ok()) {
      return r;
    }

    // A warm reader holding v1 (cache primed).
    ShardedMetaStore reader(clouds, "bench-pass", cfg);
    if (!reader.fetch_latest().is_ok()) return r;

    // The measured 1-file commit, fold forced — but the fold touches ONE
    // shard, whose size is bounded by the routing, not by the folder.
    SyncFolderImage next = image;
    FileSnapshot s = snapshot_of(touched);
    s.content_hash = "sha-v2";
    const double t0 = now_sec();
    next.upsert_file(s);
    next.set_version({"bench", 2, 0.0});
    std::vector<Change> one{Change::upsert_file(s)};
    auto fence = store.fetch_manifest();
    if (!fence.is_ok()) return r;
    const metadata::ShardId shard =
        metadata::shard_of_path(touched, cfg.num_shards);
    auto entry = store.publish_shard(shard, fence.value().find(shard), one,
                                     next, {"bench", 2, 0.0}, fold_now);
    if (!entry.is_ok()) return r;
    if (!store.commit_manifest({entry.value()}, fence.value(),
                               {"bench", 2, 0.0})
             .is_ok()) {
      return r;
    }
    r.shard_commit_s = now_sec() - t0;

    // Warm reader catch-up: every clean shard short-circuits from cache,
    // only the advanced shard is re-fetched and replayed.
    const double t1 = now_sec();
    auto caught = reader.fetch_latest();
    if (!caught.is_ok() ||
        caught.value().image.files().size() != files) {
      return r;
    }
    r.shard_catchup_s = now_sec() - t1;
  }

  r.ok = true;
  return r;
}

struct WriterResult {
  int writers = 0;
  double seconds = -1;
  double commits_per_sec = -1;
  bool zero_lost_updates = false;
};

WriterResult run_writers(int writers) {
  WriterResult r;
  r.writers = writers;

  auto clouds = make_clouds();
  ShardConfig cfg;
  cfg.num_shards = 64;
  const int threads =
      std::min<int>(writers, std::max(4u, std::thread::hardware_concurrency()));

  const double t0 = now_sec();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  std::atomic<int> next_writer{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ShardedMetaStore store(clouds, "bench-pass", cfg);
      lock::LockConfig lk;
      lk.retry.backoff_base = 0.0005;
      lk.retry.backoff_cap = 0.01;
      lk.retry.max_attempts = 256;
      lock::LockManager locks(clouds, "writer-thread" + std::to_string(t),
                              lk, RealClock::instance(),
                              Rng(0xbe9cull * (t + 1)));
      for (int w = next_writer.fetch_add(1); w < writers;
           w = next_writer.fetch_add(1)) {
        const std::string path = "/w" + std::to_string(w) + "/token";
        std::vector<Change> cs{Change::upsert_file(snapshot_of(path))};
        SyncFolderImage mine;
        metadata::apply_change(mine, cs.front());
        const metadata::ShardId shard =
            metadata::shard_of_path(path, cfg.num_shards);
        bool committed = false;
        for (int attempt = 0; attempt < 64 && !committed; ++attempt) {
          if (!locks.acquire(lock::Scope::of_shard(shard)).is_ok()) continue;
          ShardManifest fenced;
          auto m = store.fetch_manifest();
          if (m.is_ok()) {
            fenced = std::move(m).take();
          } else if (m.code() != ErrorCode::kNotFound) {
            locks.release_all();
            continue;
          } else {
            fenced.num_shards = cfg.num_shards;
          }
          const VersionStamp stamp{"w" + std::to_string(w),
                                   fenced.version.counter + 1, 0.0};
          auto entry = store.publish_shard(shard, fenced.find(shard), cs,
                                           mine, stamp, DeltaPolicy{});
          if (entry.is_ok() && locks.acquire(lock::Scope::root()).is_ok()) {
            committed =
                store.commit_manifest({entry.value()}, fenced, stamp).is_ok();
          }
          locks.release_all();
        }
        if (!committed) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  r.seconds = now_sec() - t0;
  r.commits_per_sec = r.seconds > 0 ? writers / r.seconds : -1;

  if (failures.load() != 0) return r;
  // Token oracle: every writer's file must be in the assembled image.
  ShardedMetaStore reader(clouds, "bench-pass", cfg);
  auto latest = reader.fetch_latest();
  if (!latest.is_ok()) return r;
  for (int w = 0; w < writers; ++w) {
    if (latest.value().image.find_file("/w" + std::to_string(w) +
                                       "/token") == nullptr) {
      return r;
    }
  }
  r.zero_lost_updates = true;
  return r;
}

int run() {
  std::vector<std::size_t> ladder{10'000, 100'000, 1'000'000};
  if (const char* extra = std::getenv("UNIDRIVE_META_SCALE_FILES")) {
    const auto v = static_cast<std::size_t>(std::strtoull(extra, nullptr, 0));
    if (v > ladder.back()) ladder.push_back(v);
  }

  std::printf("bench_meta_scale: monolithic vs sharded metadata plane, "
              "%d clouds, %zu files/dir\n\n",
              kClouds, kFilesPerDir);
  std::printf("%10s %7s | %12s %12s | %12s %12s | %8s\n", "files", "shards",
              "mono commit", "mono catchup", "shard commit", "shard catchup",
              "speedup");

  std::vector<PointResult> points;
  for (const std::size_t files : ladder) {
    const SyncFolderImage image = build_image(files);
    PointResult p = run_point(image, files);
    const double speedup =
        p.shard_commit_s > 0 ? p.mono_commit_s / p.shard_commit_s : -1;
    std::printf("%10zu %7u | %10.1f ms %10.1f ms | %10.1f ms %10.1f ms | "
                "%7.1fx\n",
                p.files, p.num_shards, p.mono_commit_s * 1e3,
                p.mono_catchup_s * 1e3, p.shard_commit_s * 1e3,
                p.shard_catchup_s * 1e3, speedup);
    points.push_back(p);
  }

  std::printf("\nwriter ladder (sharded store, per-shard locks):\n");
  std::printf("%8s | %10s | %12s | %s\n", "writers", "seconds", "commits/s",
              "lost updates");
  std::vector<WriterResult> writer_results;
  for (const int writers : {1, 10, 100, 1000}) {
    WriterResult w = run_writers(writers);
    std::printf("%8d | %8.3f s | %12.1f | %s\n", w.writers, w.seconds,
                w.commits_per_sec, w.zero_lost_updates ? "none" : "LOST");
    writer_results.push_back(w);
  }

  const double rss = peak_rss_mib();
  std::printf("\npeak RSS: %.1f MiB\n", rss);

  // --- gates ----------------------------------------------------------------
  int failures = 0;
  for (const PointResult& p : points) {
    if (!p.ok) {
      std::fprintf(stderr, "GATE: ladder point %zu files failed to run\n",
                   p.files);
      ++failures;
    }
  }
  const PointResult& top = points.back().files >= 1'000'000
                               ? points.back()
                               : points[points.size() - 1];
  const double top_speedup =
      top.shard_commit_s > 0 ? top.mono_commit_s / top.shard_commit_s : 0;
  if (top.ok && top_speedup < 10.0) {
    std::fprintf(stderr,
                 "GATE: sharded 1-file commit at %zu files must be >= 10x "
                 "faster than monolithic, got %.1fx\n",
                 top.files, top_speedup);
    ++failures;
  }
  // O(changed subtree): 100x more files may cost at most 10x commit latency
  // (it should be near-flat; the bound only absorbs timer noise on tiny
  // absolute numbers).
  const PointResult& base = points.front();
  if (top.ok && base.ok &&
      top.shard_commit_s > 10.0 * std::max(base.shard_commit_s, 1e-4)) {
    std::fprintf(stderr,
                 "GATE: sharded commit latency must scale with the changed "
                 "subtree, not the folder: %.1f ms at %zu files vs %.1f ms "
                 "at %zu files\n",
                 top.shard_commit_s * 1e3, top.files,
                 base.shard_commit_s * 1e3, base.files);
    ++failures;
  }
  for (const WriterResult& w : writer_results) {
    if (!w.zero_lost_updates) {
      std::fprintf(stderr,
                   "GATE: writer ladder at %d writers lost updates or "
                   "failed to commit\n",
                   w.writers);
      ++failures;
    }
  }

  FILE* json = std::fopen("BENCH_meta.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const PointResult& p = points[i];
      std::fprintf(
          json,
          "    {\"files\": %zu, \"num_shards\": %u, "
          "\"mono_commit_s\": %.6f, \"mono_catchup_s\": %.6f, "
          "\"shard_commit_s\": %.6f, \"shard_catchup_s\": %.6f, "
          "\"speedup\": %.2f}%s\n",
          p.files, p.num_shards, p.mono_commit_s, p.mono_catchup_s,
          p.shard_commit_s, p.shard_catchup_s,
          p.shard_commit_s > 0 ? p.mono_commit_s / p.shard_commit_s : -1.0,
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"writer_ladder\": [\n");
    for (std::size_t i = 0; i < writer_results.size(); ++i) {
      const WriterResult& w = writer_results[i];
      std::fprintf(json,
                   "    {\"writers\": %d, \"seconds\": %.4f, "
                   "\"commits_per_sec\": %.1f, \"zero_lost_updates\": %s}%s\n",
                   w.writers, w.seconds, w.commits_per_sec,
                   w.zero_lost_updates ? "true" : "false",
                   i + 1 < writer_results.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"top_speedup\": %.2f,\n"
                 "  \"peak_rss_mib\": %.1f,\n  \"gate_failures\": %d\n}\n",
                 top_speedup, rss, failures);
    std::fclose(json);
  }

  if (failures != 0) {
    std::fprintf(stderr, "bench_meta_scale: %d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall gates passed (top speedup %.1fx)\n", top_speedup);
  return 0;
}

}  // namespace
}  // namespace unidrive::bench

int main() { return unidrive::bench::run(); }
