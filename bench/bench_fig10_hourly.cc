// Figure 10 — hourly variation over one day (Virginia, 32 MB): UniDrive
// versus the fastest single CCS there. Paper: UniDrive is both faster and
// far more stable over the day; the single CCS swings widely.
#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr std::uint64_t kBytes = 32 << 20;

void run() {
  std::printf("=== Figure 10: hourly 32 MB transfer times over a day, "
              "Virginia ===\n\n");
  const auto virginia = sim::ec2_locations()[0];
  const std::size_t fastest = fastest_native_cloud(virginia);
  std::printf("fastest single CCS at Virginia: %s\n\n",
              sim::cloud_name(static_cast<sim::CloudKind>(fastest)));

  std::printf("%-6s %16s %16s %16s %16s\n", "hour", "UniDrive up",
              "single-CCS up", "UniDrive down", "single-CCS down");
  print_rule(76);

  Summary uni_up, uni_down, single_up, single_down;
  for (int hour = 0; hour < 24; ++hour) {
    // Same seed => identical network for both approaches in this hour.
    const std::uint64_t seed = 13000 + hour;
    double uu, ud, su, sd;
    {
      sim::SimEnv env(seed);
      sim::CloudSet set = sim::make_cloud_set(env, virginia, seed);
      advance_to(env, hour * 3600.0);
      const UpDown r = unidrive_updown(env, set, kBytes, UniDriveRunOptions{});
      uu = r.up;
      ud = r.down;
    }
    {
      sim::SimEnv env(seed);
      sim::CloudSet set = sim::make_cloud_set(env, virginia, seed);
      advance_to(env, hour * 3600.0);
      const UpDown r = native_updown(env, set, fastest, kBytes);
      su = r.up;
      sd = r.down;
    }
    uni_up.add(uu);
    uni_down.add(ud);
    single_up.add(su);
    single_down.add(sd);
    std::printf("%-6d %16s %16s %16s %16s\n", hour, fmt(uu).c_str(),
                fmt(su).c_str(), fmt(ud).c_str(), fmt(sd).c_str());
  }

  std::printf("\nPaper-shape checks:\n");
  std::printf("  avg upload: UniDrive %ss vs single %ss (UniDrive faster)\n",
              fmt(uni_up.avg()).c_str(), fmt(single_up.avg()).c_str());
  std::printf("  upload max/min swing: UniDrive %sx vs single %sx "
              "(UniDrive more stable)\n",
              fmt(uni_up.max() / uni_up.min(), 2).c_str(),
              fmt(single_up.max() / single_up.min(), 2).c_str());
  std::printf("  (download gains are capped by the VM's 40 Mbps downlink, "
              "as the paper notes)\n");
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
