// Figure 12 — cumulative number of sync'ed files over time when syncing
// 100 x 1 MB files from Oregon to Virginia. Paper: UniDrive's curve climbs
// fast with an almost constant slope (availability-first keeps files
// landing steadily); other approaches have varying slopes and may cross.
#include <algorithm>

#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr std::size_t kNumFiles = 100;
constexpr std::uint64_t kFileSize = 1 << 20;

std::vector<double> sorted_sync_times(std::vector<double> times) {
  std::sort(times.begin(), times.end());
  return times;
}

void print_series(const char* name, const std::vector<double>& sorted) {
  std::printf("%-12s", name);
  for (std::size_t count = 10; count <= kNumFiles; count += 10) {
    std::printf(" %8s", fmt(sorted[count - 1], 0).c_str());
  }
  std::printf("\n");
}

void run() {
  std::printf("=== Figure 12: cumulative sync'ed files over time, "
              "Oregon -> Virginia (seconds until Nth file) ===\n\n");
  const auto oregon = sim::ec2_locations()[1];
  const auto virginia = sim::ec2_locations()[0];
  const std::uint64_t seed = 19001;

  std::printf("%-12s", "files:");
  for (std::size_t count = 10; count <= kNumFiles; count += 10) {
    std::printf(" %8zu", count);
  }
  std::printf("\n");
  print_rule(12 + 9 * 10);

  std::vector<double> unidrive_sorted;

  // UniDrive and benchmark.
  for (const bool is_unidrive : {true, false}) {
    sim::SimEnv env(seed);
    sim::CloudSet up = sim::make_cloud_set(env, oregon, seed);
    sim::CloudSet down = sim::make_cloud_set(env, virginia, seed + 1);
    sim::E2EConfig config;
    config.num_files = kNumFiles;
    config.file_size = kFileSize;
    config.commit_interval = 5.0;
    if (!is_unidrive) {
      config.upload_options.overprovision = false;
      config.upload_options.availability_first = false;
      config.run.dynamic_polling = false;
    }
    const auto result = sim::run_unidrive_e2e(env, up, {&down}, config);
    const auto sorted =
        sorted_sync_times(result.downloaders[0].file_sync_time);
    print_series(is_unidrive ? "UniDrive" : "Benchmark", sorted);
    if (is_unidrive) unidrive_sorted = sorted;
  }

  // Intuitive.
  {
    sim::SimEnv env(seed);
    sim::CloudSet up = sim::make_cloud_set(env, oregon, seed);
    sim::CloudSet down = sim::make_cloud_set(env, virginia, seed + 1);
    baselines::BaselineE2EConfig config;
    config.num_files = kNumFiles;
    config.file_size = kFileSize;
    const auto result = baselines::intuitive_e2e(env, up, {&down}, config);
    print_series("Intuitive", sorted_sync_times(result.file_sync_time[0]));
  }

  // The three U.S. native apps.
  for (std::size_t c = 0; c < 3; ++c) {
    sim::SimEnv env(seed);
    sim::CloudSet up = sim::make_cloud_set(env, oregon, seed);
    sim::CloudSet down = sim::make_cloud_set(env, virginia, seed + 1);
    baselines::BaselineE2EConfig config;
    config.num_files = kNumFiles;
    config.file_size = kFileSize;
    const auto result = baselines::native_e2e(
        env, *up.clouds[c], {down.clouds[c].get()},
        static_cast<sim::CloudKind>(c), config);
    print_series(sim::cloud_name(static_cast<sim::CloudKind>(c)),
                 sorted_sync_times(result.file_sync_time[0]));
  }

  // Stability check: UniDrive's inter-arrival slope should be steady.
  std::printf("\nPaper-shape check (UniDrive slope steadiness):\n");
  std::vector<double> gaps;
  for (std::size_t i = 10; i < unidrive_sorted.size(); i += 10) {
    gaps.push_back(unidrive_sorted[i] - unidrive_sorted[i - 10]);
  }
  Summary gap_stats;
  for (const double g : gaps) gap_stats.add(g);
  std::printf("  per-10-file time deltas: avg %ss, max/min ratio %s "
              "(closer to 1 = steadier)\n",
              fmt(gap_stats.avg(), 1).c_str(),
              fmt(gap_stats.max() / std::max(1e-9, gap_stats.min()), 2)
                  .c_str());
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
