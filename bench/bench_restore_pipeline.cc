// bench_restore_pipeline — monolithic vs streaming restore of a committed
// multi-cloud image on a latency-skewed 4-cloud setup (real-time
// LatentCloud throttling, not the discrete-event simulator: the point is
// wall-clock overlap of the fetch, decode and write stages, which only
// exists in real time).
//
// Workload: 48 files x 512 KiB, theta = 256 KiB, four clouds with skewed
// request latencies and downlinks. The data is uploaded once through raw
// in-memory clouds; each restore round then syncs a fresh reader through
// latency-throttled views of the same clouds. The monolithic reader
// (pipeline.enabled = false) reconstructs one segment at a time; the
// streaming reader overlaps block fetches across segments and files,
// decodes in parallel and writes in snapshot order behind a bounded
// prefetch window.
//
// Emits BENCH_restore.json (CI artifact). Exit code 1 only if the
// streaming round's peak in-flight bytes exceeded the configured cap —
// the bounded-memory guarantee; the speedup itself is reported, not gated,
// so a loaded CI runner cannot turn a perf report into a flaky failure.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "cloud/latent_cloud.h"
#include "cloud/memory_cloud.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/local_fs.h"

namespace unidrive::bench {
namespace {

constexpr int kFiles = 48;
constexpr std::size_t kFileBytes = 512 << 10;
constexpr std::size_t kTheta = 256 << 10;
constexpr std::size_t kInflightCap = 16u << 20;

struct RoundResult {
  double seconds = 0;
  std::size_t files = 0;
  double inflight_peak = 0;
  double inflight_final = 0;
};

core::ClientConfig reader_config(const std::string& device, bool pipelined) {
  core::ClientConfig cfg;
  cfg.device = device;
  cfg.theta = kTheta;
  cfg.pipeline.enabled = pipelined;
  cfg.pipeline.max_inflight_bytes = kInflightCap;
  return cfg;
}

RoundResult run_round(const cloud::MultiCloud& raw, bool pipelined) {
  // Skewed links: the fastest cloud answers 3x quicker and is 4x wider
  // than the slowest, so completions arrive thoroughly out of order.
  const double latency[] = {0.003, 0.004, 0.006, 0.009};
  const double down_bw[] = {800e6, 600e6, 400e6, 200e6};
  cloud::MultiCloud clouds;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    cloud::LinkProfile link;
    link.request_latency_sec = latency[i];
    link.up_bytes_per_sec = down_bw[i];
    link.down_bytes_per_sec = down_bw[i];
    clouds.push_back(std::make_shared<cloud::LatentCloud>(raw[i], link));
  }

  auto fs = std::make_shared<core::MemoryLocalFs>();
  core::UniDriveClient reader(
      clouds, fs, reader_config(pipelined ? "stream" : "mono", pipelined));

  const auto start = std::chrono::steady_clock::now();
  const auto report = reader.sync();
  const auto stop = std::chrono::steady_clock::now();
  if (!report.is_ok() || !report.value().applied_cloud ||
      !report.value().materialize.is_ok()) {
    std::fprintf(stderr, "restore round failed: %s\n",
                 report.status().to_string().c_str());
    std::exit(2);
  }

  RoundResult out;
  out.seconds = std::chrono::duration<double>(stop - start).count();
  out.files = report.value().files_downloaded;
  out.inflight_peak =
      report.value().metrics.gauge_value("restore.inflight_bytes_peak");
  out.inflight_final =
      report.value().metrics.gauge_value("restore.inflight_bytes");
  return out;
}

int run() {
  std::printf("bench_restore_pipeline: %d files x %zu KiB, theta %zu KiB, "
              "4 skewed clouds\n",
              kFiles, kFileBytes >> 10, kTheta >> 10);

  // Publish the image once through raw (latency-free) clouds.
  cloud::MultiCloud raw;
  for (int i = 0; i < 4; ++i) {
    raw.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i)));
  }
  {
    auto fs = std::make_shared<core::MemoryLocalFs>();
    core::UniDriveClient writer(raw, fs, reader_config("writer", true));
    Rng rng(42);
    for (int i = 0; i < kFiles; ++i) {
      const std::string path =
          "/data/file" + std::to_string(i / 10) + std::to_string(i % 10);
      if (!fs->write(path, ByteSpan(rng.bytes(kFileBytes))).is_ok()) {
        std::fprintf(stderr, "local write failed\n");
        return 2;
      }
    }
    const auto report = writer.sync();
    if (!report.is_ok() || !report.value().committed) {
      std::fprintf(stderr, "upload round failed: %s\n",
                   report.status().to_string().c_str());
      return 2;
    }
  }

  const RoundResult mono = run_round(raw, /*pipelined=*/false);
  std::printf("  monolithic : %6.3f s  (%zu files)\n", mono.seconds,
              mono.files);
  const RoundResult pipe = run_round(raw, /*pipelined=*/true);
  std::printf("  streaming  : %6.3f s  (%zu files, peak in-flight "
              "%.1f MiB, cap %.1f MiB)\n",
              pipe.seconds, pipe.files, pipe.inflight_peak / (1 << 20),
              static_cast<double>(kInflightCap) / (1 << 20));

  const double speedup = pipe.seconds > 0 ? mono.seconds / pipe.seconds : 0;
  std::printf("  speedup    : %.2fx\n", speedup);

  FILE* json = std::fopen("BENCH_restore.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"files\": %d,\n"
                 "  \"file_bytes\": %zu,\n"
                 "  \"monolithic_s\": %.4f,\n"
                 "  \"streaming_s\": %.4f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"inflight_peak_bytes\": %.0f,\n"
                 "  \"inflight_final_bytes\": %.0f,\n"
                 "  \"inflight_cap_bytes\": %zu\n"
                 "}\n",
                 kFiles, kFileBytes, mono.seconds, pipe.seconds, speedup,
                 pipe.inflight_peak, pipe.inflight_final, kInflightCap);
    std::fclose(json);
  }

  // Hard gate: bounded memory. The streaming round must never hold more
  // than the configured cap, and everything must drain by the end.
  if (pipe.inflight_peak > static_cast<double>(kInflightCap) ||
      pipe.inflight_final != 0) {
    std::fprintf(stderr,
                 "FAIL: in-flight bytes out of bounds (peak %.0f, cap %zu, "
                 "final %.0f)\n",
                 pipe.inflight_peak, kInflightCap, pipe.inflight_final);
    return 1;
  }
  if (speedup < 1.3) {
    std::printf("  note: speedup below the 1.3x target on this run\n");
  }
  return 0;
}

}  // namespace
}  // namespace unidrive::bench

int main() { return unidrive::bench::run(); }
