// Ablation: the tunable parameters — segment size theta and the
// (k, Ks, Kr) code point. The paper fixes theta = 4 MB and k = 3 "so the
// final block size is around 1-2 MB, which strikes a good balance between
// throughput and failure rate"; this bench shows the trade-off curves that
// justify those choices, plus the storage cost of each code point.
#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr std::uint64_t kBytes = 32 << 20;
constexpr int kReps = 8;

void theta_sweep() {
  std::printf("--- segment size theta sweep (32 MB upload, Virginia) ---\n");
  std::printf("%-10s %12s %12s %14s\n", "theta", "up (s)", "down (s)",
              "block size");
  print_rule(52);
  const auto virginia = sim::ec2_locations()[0];
  for (const std::uint64_t theta :
       {1ULL << 20, 2ULL << 20, 4ULL << 20, 8ULL << 20, 16ULL << 20}) {
    Summary up, down;
    for (int rep = 0; rep < kReps; ++rep) {
      const std::uint64_t seed = 33000 + rep;
      sim::SimEnv env(seed);
      sim::CloudSet set = sim::make_cloud_set(env, virginia, seed);
      UniDriveRunOptions options;
      options.theta = theta;
      const UpDown r = unidrive_updown(env, set, kBytes, options);
      up.add(r.up);
      down.add(r.down);
    }
    std::printf("%6llu MB %12s %12s %11.2f MB\n",
                static_cast<unsigned long long>(theta >> 20),
                fmt(up.avg()).c_str(), fmt(down.avg()).c_str(),
                static_cast<double>(theta) / 3 / (1 << 20));
  }
  std::printf("Small theta: more per-request latency overhead; large theta: "
              "higher per-request failure cost and coarser scheduling. The "
              "paper's 4 MB sits in the flat middle.\n\n");
}

void code_sweep() {
  std::printf("--- code point (k, Ks, Kr) sweep (N = 5) ---\n");
  std::printf("%-16s %10s %10s %12s %12s %14s\n", "(k, Ks, Kr)", "up (s)",
              "down (s)", "tolerates", "breach<Ks", "storage cost");
  print_rule(80);
  const auto virginia = sim::ec2_locations()[0];
  struct Point {
    std::size_t k, ks, kr;
  };
  for (const Point p : std::initializer_list<Point>{
           {3, 2, 3}, {3, 1, 3}, {2, 2, 2}, {4, 2, 4}, {6, 2, 3}, {3, 3, 4}}) {
    sched::CodeParams params;
    params.k = p.k;
    params.ks = p.ks;
    params.kr = p.kr;
    if (!params.validate().is_ok()) continue;
    Summary up, down;
    for (int rep = 0; rep < kReps; ++rep) {
      const std::uint64_t seed = 35000 + rep;
      sim::SimEnv env(seed);
      sim::CloudSet set = sim::make_cloud_set(env, virginia, seed);
      UniDriveRunOptions options;
      options.code = params;
      const UpDown r = unidrive_updown(env, set, kBytes, options);
      up.add(r.up);
      down.add(r.down);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "(%zu, %zu, %zu)", p.k, p.ks, p.kr);
    std::printf("%-16s %10s %10s %9zu dn %11zu %13.2fx\n", label,
                fmt(up.avg()).c_str(), fmt(down.avg()).c_str(),
                params.num_clouds - params.kr, params.ks,
                static_cast<double>(params.normal_blocks()) /
                    static_cast<double>(params.k));
  }
  std::printf("The paper's (3, 2, 3): 1.67x storage for 2-outage tolerance "
              "and single-cloud secrecy — the balanced corner.\n");
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  std::printf("=== Ablation: theta and (k, Ks, Kr) ===\n\n");
  unidrive::bench::theta_sweep();
  unidrive::bench::code_sweep();
  return 0;
}
