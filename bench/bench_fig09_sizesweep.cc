// Figure 9 — average transfer time for different file sizes on the Virginia
// node: UniDrive and the multi-cloud benchmark against the three U.S.
// native apps. Paper: UniDrive (and even the benchmark) outperform all
// native apps for almost all sizes.
#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr int kReps = 12;

void run() {
  std::printf("=== Figure 9: transfer time vs file size, Virginia "
              "(avg seconds, %d reps) ===\n", kReps);
  const auto virginia = sim::ec2_locations()[0];
  const std::vector<std::uint64_t> sizes = {1 << 20,  2 << 20,  4 << 20,
                                            8 << 20,  16 << 20, 32 << 20,
                                            64 << 20};
  const std::vector<std::string> approaches = {
      "Dropbox", "OneDrive", "GoogleDrive", "Benchmark", "UniDrive"};

  for (const bool download : {false, true}) {
    std::printf("\n--- %s ---\n", download ? "DOWNLOAD" : "UPLOAD");
    std::printf("%-9s", "size");
    for (const auto& a : approaches) std::printf(" %12s", a.c_str());
    std::printf("\n");
    print_rule(9 + 13 * approaches.size());

    for (const std::uint64_t bytes : sizes) {
      std::printf("%5.0f MB ", static_cast<double>(bytes) / (1 << 20));
      for (std::size_t a = 0; a < approaches.size(); ++a) {
        Summary s;
        for (int rep = 0; rep < kReps; ++rep) {
          const std::uint64_t seed = 11000 + a * 997 + rep;
          sim::SimEnv env(seed);
          sim::CloudSet set = sim::make_cloud_set(env, virginia, seed);
          advance_to(env, rep * 7200.0);
          UpDown r;
          if (a < 3) {
            r = native_updown(env, set, a, bytes);
          } else if (a == 3) {
            r = unidrive_updown(env, set, bytes, benchmark_options());
          } else {
            r = unidrive_updown(env, set, bytes, UniDriveRunOptions{});
          }
          s.add(download ? r.down : r.up);
        }
        std::printf(" %12s", fmt(s.avg()).c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("\nPaper shape: UniDrive fastest at (almost) every size; "
              "benchmark second among multi-cloud rows.\n");
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
