// Microbenchmarks: discrete-event engine and fluid-network throughput —
// how many simulated transfers per second the experiment substrate sustains.
#include <benchmark/benchmark.h>

#include "sim/fluid.h"
#include "sim/profiles.h"
#include "sim/transfer_run.h"
#include "workload/files.h"

namespace {

using namespace unidrive;

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimEnv env(1);
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      env.schedule(env.rng().uniform(0, 1000), [&fired] { ++fired; });
    }
    env.run();
    benchmark::DoNotOptimize(fired);
  }
  state.counters["events"] = 10000;
}
BENCHMARK(BM_EventQueueChurn);

void BM_FluidTransfers(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimEnv env(2);
    sim::FluidNet net(env);
    net.set_link({0, false}, sim::constant_bw(1e6));
    int done = 0;
    for (int i = 0; i < 1000; ++i) {
      env.schedule(i * 0.1, [&net, &done](/*start staggered*/) {
        net.start_transfer({0, false}, 5e4, [&done](sim::SimTime) { ++done; });
      });
    }
    env.run();
    benchmark::DoNotOptimize(done);
  }
  state.counters["transfers"] = 1000;
}
BENCHMARK(BM_FluidTransfers);

void BM_UniDriveUploadSim(benchmark::State& state) {
  // Full scheduler-driven upload of a 100 x 1 MB batch in virtual time.
  for (auto _ : state) {
    sim::SimEnv env(3);
    sim::CloudSet set =
        sim::make_cloud_set(env, sim::ec2_locations()[0], 3,
                            /*with_failures=*/false);
    const auto specs = workload::upload_specs(
        workload::uniform_batch(100, 1 << 20), 4 << 20, "f");
    sched::UploadScheduler scheduler(sched::CodeParams{}, {0, 1, 2, 3, 4},
                                     specs);
    sched::ThroughputMonitor monitor;
    const auto result = run_upload_job(env, set.ptrs(), scheduler, monitor,
                                       sim::RunConfig{});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UniDriveUploadSim)->Unit(benchmark::kMillisecond);

}  // namespace
