// Table 2 — variance of the average batch-sync time across the 7 EC2
// locations. Paper: UniDrive's variance (33.1) is several-fold smaller than
// any single CCS (Dropbox 134.2, OneDrive 140.9, Google Drive 558.0) —
// multi-cloud aggregation smooths out per-location differences.
#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr std::size_t kNumFiles = 50;   // lighter than Figure 11's 100
constexpr std::uint64_t kFileSize = 1 << 20;
constexpr int kReps = 2;

void run() {
  std::printf("=== Table 2: variance of avg sync time across locations ===\n\n");
  const auto locations = sim::ec2_locations();

  const std::vector<std::string> names = {"Dropbox", "OneDrive",
                                          "GoogleDrive", "UniDrive"};
  std::vector<std::vector<double>> avg_per_location(names.size());

  for (std::size_t li = 0; li < locations.size(); ++li) {
    for (std::size_t a = 0; a < names.size(); ++a) {
      Summary s;
      for (int rep = 0; rep < kReps; ++rep) {
        const std::uint64_t seed = 21000 + li * 100 + rep;
        sim::SimEnv env(seed);
        sim::CloudSet up = sim::make_cloud_set(env, locations[li], seed);
        // One representative downloader (Virginia, or Oregon when uploading
        // from Virginia).
        const std::size_t down_loc = li == 0 ? 1 : 0;
        sim::CloudSet down =
            sim::make_cloud_set(env, locations[down_loc], seed + 7);

        double t = -1;
        if (a == 3) {
          sim::E2EConfig config;
          config.num_files = kNumFiles;
          config.file_size = kFileSize;
          t = sim::run_unidrive_e2e(env, up, {&down}, config).batch_sync_time;
        } else {
          baselines::BaselineE2EConfig config;
          config.num_files = kNumFiles;
          config.file_size = kFileSize;
          t = baselines::native_e2e(env, *up.clouds[a],
                                    {down.clouds[a].get()},
                                    static_cast<sim::CloudKind>(a), config)
                  .batch_sync_time;
        }
        s.add(t);
      }
      if (s.count() > 0) avg_per_location[a].push_back(s.avg());
    }
  }

  std::printf("%-14s %16s %18s\n", "approach", "variance (s^2)",
              "avg sync time (s)");
  print_rule(50);
  double unidrive_var = 0, worst_single_var = 0;
  for (std::size_t a = 0; a < names.size(); ++a) {
    Summary s;
    for (const double v : avg_per_location[a]) s.add(v);
    std::printf("%-14s %16s %18s\n", names[a].c_str(),
                fmt(s.variance(), 1).c_str(), fmt(s.avg(), 0).c_str());
    if (a == 3) {
      unidrive_var = s.variance();
    } else {
      worst_single_var = std::max(worst_single_var, s.variance());
    }
  }
  std::printf("\nPaper shape: UniDrive variance several-fold below every "
              "single CCS (here %sx below the worst).\n",
              fmt(worst_single_var / std::max(1e-9, unidrive_var), 1).c_str());
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
