// Microbenchmarks: content-defined chunking and the UniDrive segmenter.
#include <benchmark/benchmark.h>

#include "chunker/cdc.h"
#include "chunker/segmenter.h"
#include "common/rng.h"

namespace {

using namespace unidrive;

void BM_CdcSplit(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  chunker::CdcParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker::cdc_split(ByteSpan(data), params));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CdcSplit)->Arg(1 << 20)->Arg(16 << 20);

void BM_SegmentFile(benchmark::State& state) {
  Rng rng(2);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  chunker::SegmenterParams params;  // theta = 4 MB
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker::segment_file(ByteSpan(data), params));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SegmentFile)->Arg(4 << 20)->Arg(32 << 20);

}  // namespace
