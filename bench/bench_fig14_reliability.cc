// Figure 14 — availability and download performance under cloud outages:
// a 32 MB file is pre-uploaded (Kr = 3, Ks = 2, with over-provisioning),
// then n in [0, 4] of the five clouds are disabled and the Tokyo node
// repeatedly downloads. Paper: recovery succeeds for n <= 2 by design;
// n = 3 often still works because over-provisioning left extra blocks on
// the fast clouds; n = 4 never works (a single cloud must not suffice —
// that is the security requirement); fewer clouds = slower downloads.
#include <set>

#include "bench_util.h"
#include "workload/files.h"

namespace unidrive::bench {
namespace {

constexpr std::uint64_t kBytes = 32 << 20;
constexpr int kRepeats = 12;

void run() {
  std::printf("=== Figure 14: availability & download time with n clouds "
              "unavailable (Tokyo, 32 MB, %d attempts each) ===\n\n",
              kRepeats);
  const auto tokyo = sim::ec2_locations()[5];

  std::printf("%-4s %14s %20s\n", "n", "success rate", "avg download (s)");
  print_rule(42);

  for (int n = 0; n <= 4; ++n) {
    int successes = 0;
    Summary download_time;
    for (int attempt = 0; attempt < kRepeats; ++attempt) {
      const std::uint64_t seed = 25000 + n * 100 + attempt;
      sim::SimEnv env(seed);
      sim::CloudSet set = sim::make_cloud_set(env, tokyo, seed);

      // Pre-upload with the real scheduler (over-provisioning included).
      const auto specs = workload::upload_specs({kBytes}, 4 << 20, "f");
      sched::UploadScheduler up_sched(sched::CodeParams{}, {0, 1, 2, 3, 4},
                                      specs);
      sched::ThroughputMonitor monitor;
      const auto up =
          run_upload_job(env, set.ptrs(), up_sched, monitor, sim::RunConfig{});
      if (!up.all_available) continue;

      // Disable n random clouds.
      std::set<std::size_t> down_clouds;
      while (down_clouds.size() < static_cast<std::size_t>(n)) {
        down_clouds.insert(env.rng().next_below(sim::kNumClouds));
      }
      for (const std::size_t c : down_clouds) {
        set.clouds[c]->set_outage(true);
      }

      // Attempt the download every 5 minutes (one shot per attempt here;
      // the schedule spreads attempts over an hour of fluctuating network).
      advance_to(env, env.now() + 300.0 * (attempt + 1));
      sched::DownloadFileSpec file;
      file.path = "/f0";
      for (const auto& seg : specs[0].segments) {
        file.segments.push_back({seg.id, seg.size, up_sched.locations(seg.id)});
      }
      sched::DownloadScheduler down_sched(3, {file});
      for (const std::size_t c : down_clouds) {
        down_sched.set_cloud_enabled(static_cast<cloud::CloudId>(c), false);
      }
      sched::ThroughputMonitor down_monitor;
      const double start = env.now();
      const auto down = run_download_job(env, set.ptrs(), down_sched,
                                         down_monitor, sim::RunConfig{});
      if (down.all_complete) {
        ++successes;
        download_time.add(down.finish_time - start);
      }
    }
    std::printf("%-4d %13.0f%% %20s\n", n,
                100.0 * successes / kRepeats,
                fmt(download_time.avg()).c_str());
  }

  std::printf("\nPaper shape: 100%% for n<=2 (Kr=3); n=3 often succeeds "
              "thanks to over-provisioned blocks; n=4 always fails "
              "(Ks=2: one cloud can never reconstruct); download slows as "
              "clouds disappear.\n");
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
