// Figure 14 — availability and download performance under cloud outages:
// a 32 MB file is pre-uploaded (Kr = 3, Ks = 2, with over-provisioning),
// then n in [0, 4] of the five clouds are disabled and the Tokyo node
// repeatedly downloads. Paper: recovery succeeds for n <= 2 by design;
// n = 3 often still works because over-provisioning left extra blocks on
// the fast clouds; n = 4 never works (a single cloud must not suffice —
// that is the security requirement); fewer clouds = slower downloads.
//
// Part 2 extends the figure beyond the paper: the same outage model plus
// SILENT defects (bit-rot and block loss on 2 of the 5 clouds), with the
// scrub-and-repair loop on vs off. Emits BENCH_repair.json (CI artifact)
// and exits 1 if any hard gate fails:
//   - repair-on durability strictly dominates repair-off,
//   - repair-on ends at full redundancy, zero unrecoverable segments, and
//     an empty-folder restore succeeds,
//   - foreground sync throughput degrades <= 10% with maintenance active.
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/local_fs.h"
#include "core/sync_daemon.h"
#include "repair/engine.h"
#include "repair/scrubber.h"
#include "repair/service.h"
#include "workload/files.h"

namespace unidrive::bench {
namespace {

constexpr std::uint64_t kBytes = 32 << 20;
constexpr int kRepeats = 12;

void run() {
  std::printf("=== Figure 14: availability & download time with n clouds "
              "unavailable (Tokyo, 32 MB, %d attempts each) ===\n\n",
              kRepeats);
  const auto tokyo = sim::ec2_locations()[5];

  std::printf("%-4s %14s %20s\n", "n", "success rate", "avg download (s)");
  print_rule(42);

  for (int n = 0; n <= 4; ++n) {
    int successes = 0;
    Summary download_time;
    for (int attempt = 0; attempt < kRepeats; ++attempt) {
      const std::uint64_t seed = 25000 + n * 100 + attempt;
      sim::SimEnv env(seed);
      sim::CloudSet set = sim::make_cloud_set(env, tokyo, seed);

      // Pre-upload with the real scheduler (over-provisioning included).
      const auto specs = workload::upload_specs({kBytes}, 4 << 20, "f");
      sched::UploadScheduler up_sched(sched::CodeParams{}, {0, 1, 2, 3, 4},
                                      specs);
      sched::ThroughputMonitor monitor;
      const auto up =
          run_upload_job(env, set.ptrs(), up_sched, monitor, sim::RunConfig{});
      if (!up.all_available) continue;

      // Disable n random clouds.
      std::set<std::size_t> down_clouds;
      while (down_clouds.size() < static_cast<std::size_t>(n)) {
        down_clouds.insert(env.rng().next_below(sim::kNumClouds));
      }
      for (const std::size_t c : down_clouds) {
        set.clouds[c]->set_outage(true);
      }

      // Attempt the download every 5 minutes (one shot per attempt here;
      // the schedule spreads attempts over an hour of fluctuating network).
      advance_to(env, env.now() + 300.0 * (attempt + 1));
      sched::DownloadFileSpec file;
      file.path = "/f0";
      for (const auto& seg : specs[0].segments) {
        file.segments.push_back({seg.id, seg.size, up_sched.locations(seg.id)});
      }
      sched::DownloadScheduler down_sched(3, {file});
      for (const std::size_t c : down_clouds) {
        down_sched.set_cloud_enabled(static_cast<cloud::CloudId>(c), false);
      }
      sched::ThroughputMonitor down_monitor;
      const double start = env.now();
      const auto down = run_download_job(env, set.ptrs(), down_sched,
                                         down_monitor, sim::RunConfig{});
      if (down.all_complete) {
        ++successes;
        download_time.add(down.finish_time - start);
      }
    }
    std::printf("%-4d %13.0f%% %20s\n", n,
                100.0 * successes / kRepeats,
                fmt(download_time.avg()).c_str());
  }

  std::printf("\nPaper shape: 100%% for n<=2 (Kr=3); n=3 often succeeds "
              "thanks to over-provisioned blocks; n=4 always fails "
              "(Ks=2: one cloud can never reconstruct); download slows as "
              "clouds disappear.\n");
}

// --- Part 2: scrub-and-repair durability curve -------------------------------

constexpr int kNumRepairClouds = 5;
constexpr int kDefectRounds = 8;       // injection rounds per world
constexpr std::size_t kFgRounds = 150; // foreground rounds per throughput trial
constexpr int kFgTrials = 3;

struct RepairWorld {
  ManualClock clock;
  std::vector<std::shared_ptr<cloud::MemoryCloud>> memory;
  std::vector<std::shared_ptr<cloud::FaultyCloud>> faulty;
  cloud::MultiCloud clouds;
  std::shared_ptr<core::MemoryLocalFs> fs;
  std::unique_ptr<core::UniDriveClient> client;
};

core::ClientConfig repair_world_config(const std::string& device,
                                       ManualClock& clock) {
  core::ClientConfig cfg;
  cfg.device = device;
  cfg.theta = 64 << 10;
  cfg.retry.max_attempts = 3;
  cfg.retry.backoff_base = 0.001;
  cfg.retry.backoff_cap = 0.01;
  cfg.lock.retry.backoff_base = 0.001;
  cfg.lock.retry.backoff_cap = 0.01;
  cfg.sleep = [&clock](Duration d) { clock.advance(d); };
  return cfg;
}

std::unique_ptr<RepairWorld> make_repair_world(std::uint64_t seed) {
  auto world = std::make_unique<RepairWorld>();
  for (int i = 0; i < kNumRepairClouds; ++i) {
    auto memory = std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i));
    auto faulty = std::make_shared<cloud::FaultyCloud>(
        memory, cloud::FaultProfile{}, seed + static_cast<std::uint64_t>(i),
        [clock = &world->clock](Duration d) { clock->advance(d); });
    world->memory.push_back(memory);
    world->faulty.push_back(faulty);
    world->clouds.push_back(faulty);
  }
  world->fs = std::make_shared<core::MemoryLocalFs>();
  world->client = std::make_unique<core::UniDriveClient>(
      world->clouds, world->fs, repair_world_config("bench", world->clock),
      world->clock, Rng(seed));
  return world;
}

// A referenced placement, addressable identically in both worlds (same
// seeds, same data -> the committed images are identical).
struct Placement {
  std::string segment_id;
  std::uint32_t block_index = 0;
  cloud::CloudId cloud = 0;
};

std::vector<Placement> placements_on(const metadata::SyncFolderImage& image,
                                     cloud::CloudId cloud_id) {
  std::vector<Placement> out;
  for (const auto& [id, seg] : image.segments()) {
    if (seg.refcount == 0) continue;
    for (const metadata::BlockLocation& loc : seg.blocks) {
      if (loc.cloud == cloud_id) out.push_back({id, loc.block_index, loc.cloud});
    }
  }
  return out;
}

// Ground truth measured against the RAW memory clouds: a placement counts
// as surviving only if it stores exactly its re-encoded codeword row.
struct GroundTruth {
  std::size_t min_surviving = 0;
  std::size_t unrecoverable = 0;
  std::size_t segments = 0;
};

GroundTruth measure_ground_truth(RepairWorld& world,
                                 const std::map<std::string, Bytes>& plain) {
  GroundTruth gt;
  const metadata::SyncFolderImage image = world.client->image();
  const erasure::RsCode code = world.client->codec();
  const std::size_t k = world.client->config().k;
  bool first = true;
  for (const auto& [id, seg] : image.segments()) {
    if (seg.refcount == 0 || plain.count(id) == 0) continue;
    std::set<std::uint32_t> surviving;
    for (const metadata::BlockLocation& loc : seg.blocks) {
      auto stored = world.memory[loc.cloud]->download(
          metadata::block_path(id, loc.block_index));
      if (!stored.is_ok()) continue;
      const auto expected =
          code.encode_shards(ByteSpan(plain.at(id)), {loc.block_index});
      if (stored.value() == expected.front().data) {
        surviving.insert(loc.block_index);
      }
    }
    ++gt.segments;
    if (first || surviving.size() < gt.min_surviving) {
      gt.min_surviving = surviving.size();
    }
    first = false;
    if (surviving.size() < k) ++gt.unrecoverable;
  }
  return gt;
}

// Fresh device, empty folder: can every file be restored from the clouds
// alone, byte-identical?
bool empty_folder_restore_ok(RepairWorld& world,
                             const std::map<std::string, Bytes>& files) {
  auto fs = std::make_shared<core::MemoryLocalFs>();
  core::UniDriveClient reader(world.clouds, fs,
                              repair_world_config("restore", world.clock),
                              world.clock, Rng(4242));
  auto r = reader.sync();
  if (!r.is_ok()) return false;
  for (const auto& [path, content] : files) {
    auto got = fs->read(path);
    if (!got.is_ok() || got.value() != content) return false;
  }
  return true;
}

// Total wall-clock seconds for kFgRounds foreground daemon rounds over a
// churning folder, with the scrub-and-repair maintenance task on or off.
// Silent defects drip in either way so the workloads are identical; the
// admission budget (shrunk after busy rounds) plus maintenance pacing are
// what keep the delta small.
double foreground_seconds(bool with_repair, std::uint64_t seed) {
  auto world = make_repair_world(seed);
  Rng rng(seed + 17);
  const std::vector<std::string> paths = {"/w0", "/w1", "/w2", "/w3"};
  for (const std::string& path : paths) {
    (void)world->fs->write(path, ByteSpan(rng.bytes(64 << 10)));
  }
  core::DaemonConfig daemon_cfg;
  if (with_repair) {
    repair::RepairServiceConfig service_cfg;
    service_cfg.scrub.deep_verify_segments = 1;
    daemon_cfg.maintenance =
        std::make_shared<repair::RepairService>(*world->client, service_cfg);
    daemon_cfg.maintenance_every = 4;
  }
  core::SyncDaemon daemon(*world->client, daemon_cfg);
  (void)daemon.sync_once();

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < kFgRounds; ++round) {
    (void)world->fs->write(paths[round % paths.size()],
                           ByteSpan(rng.bytes(64 << 10)));
    (void)daemon.sync_once();
    if (round % 10 == 9) {  // keep a real defect backlog trickling in
      const auto victims = placements_on(world->client->image(), 1);
      if (!victims.empty()) {
        const Placement& p = victims[rng.next_below(victims.size())];
        (void)world->faulty[p.cloud]->drop_stored(
            metadata::block_path(p.segment_id, p.block_index));
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

bool run_repair_curve() {
  std::printf("\n=== Figure 14b: durability under silent defects, "
              "scrub-and-repair on vs off ===\n\n");

  // Two identical worlds (same seeds -> same placements); only one heals.
  auto on = make_repair_world(97000);
  auto off = make_repair_world(97000);
  std::map<std::string, Bytes> files;
  Rng data_rng(5);
  for (int i = 0; i < 6; ++i) {
    files["/f" + std::to_string(i)] = data_rng.bytes(96 << 10);
  }
  for (auto* world : {on.get(), off.get()}) {
    for (const auto& [path, content] : files) {
      (void)world->fs->write(path, ByteSpan(content));
    }
    if (!world->client->sync().is_ok()) {
      std::fprintf(stderr, "seed sync failed\n");
      return false;
    }
  }

  // Ground-truth plaintext per segment, cached before any defect exists.
  std::map<std::string, Bytes> plain;
  for (const auto& [id, seg] : on->client->image().segments()) {
    if (seg.refcount == 0) continue;
    auto bytes = on->client->reconstruct_segment(id, {});
    if (!bytes.is_ok()) return false;
    plain[id] = std::move(bytes).take();
  }

  repair::ScrubConfig scrub_cfg;
  scrub_cfg.deep_verify_segments = 64;  // whole pool, every pass
  repair::Scrubber scrubber(*on->client, on->client->durability(), scrub_cfg);
  repair::RepairEngine engine(*on->client, on->client->durability(),
                              repair::RepairConfig{});

  const GroundTruth full = measure_ground_truth(*on, plain);
  std::printf("%-7s %18s %18s %16s %16s\n", "round", "min surviving ON",
              "min surviving OFF", "unrecov ON", "unrecov OFF");
  print_rule(80);
  std::printf("%-7d %18zu %18zu %16zu %16zu\n", 0, full.min_surviving,
              full.min_surviving, std::size_t{0}, std::size_t{0});

  // Identical injections each round: 2 blocks dropped on cloud 1, 2 blocks
  // rotted on cloud 3 (the "2 of N misbehaving providers" scenario). The
  // ON world then scrubs and drains its repair backlog.
  std::vector<GroundTruth> curve_on, curve_off;
  std::size_t injected_drops = 0, injected_rots = 0;
  Rng pick(31337);
  for (int round = 1; round <= kDefectRounds; ++round) {
    const auto drops = placements_on(on->client->image(), 1);
    const auto rots = placements_on(on->client->image(), 3);
    for (int j = 0; j < 2 && !drops.empty(); ++j) {
      const Placement& p = drops[pick.next_below(drops.size())];
      const std::string path = metadata::block_path(p.segment_id, p.block_index);
      if (on->faulty[1]->drop_stored(path).is_ok()) ++injected_drops;
      (void)off->faulty[1]->drop_stored(path);
    }
    for (int j = 0; j < 2 && !rots.empty(); ++j) {
      const Placement& p = rots[pick.next_below(rots.size())];
      const std::string path = metadata::block_path(p.segment_id, p.block_index);
      if (on->faulty[3]->rot_stored(path).is_ok()) ++injected_rots;
      (void)off->faulty[3]->rot_stored(path);
    }

    (void)scrubber.run_pass();
    on->clock.advance(30.0);  // detection -> repair pacing gap (MTTR)
    for (int slice = 0; slice < 5 && on->client->durability()->backlog() > 0;
         ++slice) {
      (void)engine.run_slice(1000);
    }
    curve_on.push_back(measure_ground_truth(*on, plain));
    curve_off.push_back(measure_ground_truth(*off, plain));
    std::printf("%-7d %18zu %18zu %16zu %16zu\n", round,
                curve_on.back().min_surviving, curve_off.back().min_surviving,
                curve_on.back().unrecoverable, curve_off.back().unrecoverable);
  }

  const bool restore_on = empty_folder_restore_ok(*on, files);
  const bool restore_off = empty_folder_restore_ok(*off, files);

  const auto metrics = on->client->observability()->metrics.snapshot();
  const double blocks_healed = metrics.counter_value("repair.blocks_healed");
  double mttr_p50 = 0, mttr_p95 = 0;
  std::size_t mttr_count = 0;
  if (const auto it = metrics.histograms.find("repair.mttr");
      it != metrics.histograms.end()) {
    mttr_p50 = it->second.p50;
    mttr_p95 = it->second.p95;
    mttr_count = it->second.count;
  }

  // Foreground throughput hit: min over paired trials, so scheduler noise
  // on a shared CI runner can only make the reported hit pessimistic in a
  // single trial, not across all of them.
  double hit = 1e9;
  for (int trial = 0; trial < kFgTrials; ++trial) {
    const double off_s = foreground_seconds(false, 88000 + trial);
    const double on_s = foreground_seconds(true, 88000 + trial);
    hit = std::min(hit, (on_s - off_s) / off_s);
  }

  // Hard gates (acceptance criteria of the repair subsystem).
  const GroundTruth& final_on = curve_on.back();
  const GroundTruth& final_off = curve_off.back();
  bool dominates = true;
  for (std::size_t i = 0; i < curve_on.size(); ++i) {
    if (curve_on[i].min_surviving < curve_off[i].min_surviving) {
      dominates = false;
    }
  }
  const bool gate_dominates =
      dominates && final_on.min_surviving > final_off.min_surviving;
  const bool gate_healed = final_on.min_surviving == full.min_surviving &&
                           final_on.unrecoverable == 0 &&
                           on->client->durability()->backlog() == 0 &&
                           restore_on && blocks_healed >= 1;
  const bool gate_foreground = hit <= 0.10;
  const bool ok = gate_dominates && gate_healed && gate_foreground;

  std::printf("\ninjected: %zu drops + %zu rots | healed: %.0f blocks | "
              "MTTR p50/p95: %.1fs/%.1fs (%zu samples)\n",
              injected_drops, injected_rots, blocks_healed, mttr_p50, mttr_p95,
              mttr_count);
  std::printf("restore from empty folder: ON %s, OFF %s | foreground hit: "
              "%+.1f%% (gate <= +10%%)\n",
              restore_on ? "OK" : "FAILED", restore_off ? "OK" : "FAILED",
              100.0 * hit);
  std::printf("gates: dominates=%s healed=%s foreground=%s\n",
              gate_dominates ? "pass" : "FAIL", gate_healed ? "pass" : "FAIL",
              gate_foreground ? "pass" : "FAIL");

  std::string curve_on_json, curve_off_json;
  for (std::size_t i = 0; i < curve_on.size(); ++i) {
    curve_on_json += (i ? "," : "") + std::to_string(curve_on[i].min_surviving);
    curve_off_json +=
        (i ? "," : "") + std::to_string(curve_off[i].min_surviving);
  }
  if (FILE* json = std::fopen("BENCH_repair.json", "w")) {
    std::fprintf(
        json,
        "{\n"
        "  \"defect_rounds\": %d,\n"
        "  \"injected_drops\": %zu,\n"
        "  \"injected_rots\": %zu,\n"
        "  \"blocks_healed\": %.0f,\n"
        "  \"mttr_p50_s\": %.3f,\n"
        "  \"mttr_p95_s\": %.3f,\n"
        "  \"mttr_samples\": %zu,\n"
        "  \"full_min_surviving\": %zu,\n"
        "  \"min_surviving_on\": [%s],\n"
        "  \"min_surviving_off\": [%s],\n"
        "  \"unrecoverable_on\": %zu,\n"
        "  \"unrecoverable_off\": %zu,\n"
        "  \"restore_ok_on\": %s,\n"
        "  \"restore_ok_off\": %s,\n"
        "  \"foreground_hit\": %.4f,\n"
        "  \"gate_dominates\": %s,\n"
        "  \"gate_healed\": %s,\n"
        "  \"gate_foreground_hit_le_10pct\": %s\n"
        "}\n",
        kDefectRounds, injected_drops, injected_rots, blocks_healed, mttr_p50,
        mttr_p95, mttr_count, full.min_surviving, curve_on_json.c_str(),
        curve_off_json.c_str(), final_on.unrecoverable, final_off.unrecoverable,
        restore_on ? "true" : "false", restore_off ? "true" : "false", hit,
        gate_dominates ? "true" : "false", gate_healed ? "true" : "false",
        gate_foreground ? "true" : "false");
    std::fclose(json);
  }
  return ok;
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return unidrive::bench::run_repair_curve() ? 0 : 1;
}
