// Table 1 — correlation between failed Web API requests among the three
// U.S. CCSs. The paper reports NEGATIVE correlations (clouds rarely have
// trouble at the same time), the statistical basis for multi-cloud
// redundancy. Upper triangle: upload; lower triangle (italic in the paper):
// download.
#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr std::uint64_t kBytes = 4 << 20;

void run() {
  std::printf("=== Table 1: correlation of failed requests, 3 U.S. CCSs ===\n\n");
  const auto princeton = sim::planetlab_locations()[0];
  sim::SimEnv env(66);
  // Raise trouble strength so the correlation estimate is well resolved.
  sim::CloudSet set = sim::make_cloud_set(env, princeton, 66);

  const int samples = 4000;
  // Aggregate failures per trouble-slot so the exclusive-trouble process
  // dominates the statistics, as in the paper's hourly aggregation.
  const double slot = 1800.0;
  std::vector<std::vector<double>> up_fail(3), down_fail(3);
  for (int s = 0; s < samples; ++s) {
    advance_to(env, s * slot);
    for (std::size_t c = 0; c < 3; ++c) {
      int fails = 0;
      for (int rep = 0; rep < 8; ++rep) {
        if (measure_raw(env, *set.clouds[c], kBytes, false) < 0) ++fails;
      }
      up_fail[c].push_back(fails);
      fails = 0;
      for (int rep = 0; rep < 8; ++rep) {
        if (measure_raw(env, *set.clouds[c], kBytes, true) < 0) ++fails;
      }
      down_fail[c].push_back(fails);
    }
  }

  const char* names[3] = {"Dropbox", "OneDrive", "GoogleDrive"};
  std::printf("%-14s %12s %12s %12s\n", "Up \\ Down", names[0], names[1],
              names[2]);
  print_rule(54);
  for (std::size_t r = 0; r < 3; ++r) {
    std::printf("%-14s", names[r]);
    for (std::size_t c = 0; c < 3; ++c) {
      if (r == c) {
        std::printf(" %12s", "-");
      } else if (r < c) {  // upper triangle: upload correlations
        std::printf(" %12s",
                    fmt_signed(correlation(up_fail[r], up_fail[c])).c_str());
      } else {  // lower triangle: download correlations
        std::printf(" %12s",
                    fmt_signed(correlation(down_fail[r], down_fail[c])).c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("\nPaper: all off-diagonal entries negative "
              "(-0.97 .. -0.12); failures rarely coincide.\n");
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
