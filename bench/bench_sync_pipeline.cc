// bench_sync_pipeline — monolithic vs pipelined sync round on a
// latency-skewed 4-cloud setup (real-time LatentCloud throttling, not the
// discrete-event simulator: the point is wall-clock overlap of the scan,
// encode and transfer stages, which only exists in real time).
//
// Workload: 64 files x 512 KiB, theta = 256 KiB, four clouds with
// 10/15/20/30 ms request latency and 400/300/200/100 MB/s uplinks. The
// monolithic round (pipeline.enabled = false) must finish the full scan
// before the first byte is uploaded; the pipelined round streams segments
// into encode/transfer while later files are still being hashed.
//
// Emits BENCH_pipeline.json (CI artifact). Exit code 1 only if the
// pipelined round's peak in-flight bytes exceeded the configured cap —
// the bounded-memory guarantee; the speedup itself is reported, not gated,
// so a loaded CI runner cannot turn a perf report into a flaky failure.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "cloud/latent_cloud.h"
#include "cloud/memory_cloud.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/local_fs.h"

namespace unidrive::bench {
namespace {

constexpr int kFiles = 64;
constexpr std::size_t kFileBytes = 512 << 10;
constexpr std::size_t kTheta = 256 << 10;
constexpr std::size_t kInflightCap = 16u << 20;

struct RoundResult {
  double seconds = 0;
  std::size_t segments = 0;
  double inflight_peak = 0;
  double inflight_final = 0;
};

RoundResult run_round(bool pipelined) {
  // Skewed links: the fastest cloud is 3x quicker per request and 4x wider
  // than the slowest, so the availability-first scheduler has real choices.
  const double latency[] = {0.003, 0.004, 0.006, 0.009};
  const double up_bw[] = {800e6, 600e6, 400e6, 200e6};
  cloud::MultiCloud clouds;
  for (int i = 0; i < 4; ++i) {
    cloud::LinkProfile link;
    link.request_latency_sec = latency[i];
    link.up_bytes_per_sec = up_bw[i];
    link.down_bytes_per_sec = up_bw[i];
    clouds.push_back(std::make_shared<cloud::LatentCloud>(
        std::make_shared<cloud::MemoryCloud>(static_cast<cloud::CloudId>(i),
                                             "cloud" + std::to_string(i)),
        link));
  }

  auto fs = std::make_shared<core::MemoryLocalFs>();
  core::ClientConfig cfg;
  cfg.device = "bench";
  cfg.theta = kTheta;
  cfg.pipeline.enabled = pipelined;
  cfg.pipeline.max_inflight_bytes = kInflightCap;
  core::UniDriveClient client(clouds, fs, cfg);

  Rng rng(42);
  for (int i = 0; i < kFiles; ++i) {
    const std::string path =
        "/data/file" + std::to_string(i / 10) + std::to_string(i % 10);
    if (!fs->write(path, ByteSpan(rng.bytes(kFileBytes))).is_ok()) {
      std::fprintf(stderr, "local write failed\n");
      std::exit(2);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const auto report = client.sync();
  const auto stop = std::chrono::steady_clock::now();
  if (!report.is_ok() || !report.value().committed) {
    std::fprintf(stderr, "sync round failed: %s\n",
                 report.status().to_string().c_str());
    std::exit(2);
  }

  RoundResult out;
  out.seconds = std::chrono::duration<double>(stop - start).count();
  out.segments = report.value().segments_uploaded;
  out.inflight_peak =
      report.value().metrics.gauge_value("pipeline.inflight_bytes_peak");
  out.inflight_final =
      report.value().metrics.gauge_value("pipeline.inflight_bytes");
  return out;
}

int run() {
  std::printf("bench_sync_pipeline: %d files x %zu KiB, theta %zu KiB, "
              "4 skewed clouds\n",
              kFiles, kFileBytes >> 10, kTheta >> 10);

  const RoundResult mono = run_round(/*pipelined=*/false);
  std::printf("  monolithic : %6.3f s  (%zu segments)\n", mono.seconds,
              mono.segments);
  const RoundResult pipe = run_round(/*pipelined=*/true);
  std::printf("  pipelined  : %6.3f s  (%zu segments, peak in-flight "
              "%.1f MiB, cap %.1f MiB)\n",
              pipe.seconds, pipe.segments,
              pipe.inflight_peak / (1 << 20),
              static_cast<double>(kInflightCap) / (1 << 20));

  const double speedup = pipe.seconds > 0 ? mono.seconds / pipe.seconds : 0;
  std::printf("  speedup    : %.2fx\n", speedup);

  FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"files\": %d,\n"
                 "  \"file_bytes\": %zu,\n"
                 "  \"segments\": %zu,\n"
                 "  \"monolithic_s\": %.4f,\n"
                 "  \"pipelined_s\": %.4f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"inflight_peak_bytes\": %.0f,\n"
                 "  \"inflight_final_bytes\": %.0f,\n"
                 "  \"inflight_cap_bytes\": %zu\n"
                 "}\n",
                 kFiles, kFileBytes, pipe.segments, mono.seconds,
                 pipe.seconds, speedup, pipe.inflight_peak,
                 pipe.inflight_final, kInflightCap);
    std::fclose(json);
  }

  // Hard gate: bounded memory. The pipelined round must never hold more
  // than the configured cap, and everything must drain by the end.
  if (pipe.inflight_peak > static_cast<double>(kInflightCap) ||
      pipe.inflight_final != 0) {
    std::fprintf(stderr,
                 "FAIL: in-flight bytes out of bounds (peak %.0f, cap %zu, "
                 "final %.0f)\n",
                 pipe.inflight_peak, kInflightCap, pipe.inflight_final);
    return 1;
  }
  if (speedup < 1.3) {
    std::printf("  note: speedup below the 1.3x target on this run\n");
  }
  return 0;
}

}  // namespace
}  // namespace unidrive::bench

int main() { return unidrive::bench::run(); }
