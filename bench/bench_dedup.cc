// bench_dedup — content-addressed segment pool with convergent dispersal
// (DESIGN.md §13): cross-folder dedup before encode and upload.
//
// Two sync folders carry overlapping content. The baseline ("dedup off")
// is the vanilla deployment: each folder on its own cloud accounts, no
// shared pool — folder B encodes and uploads every byte it has, identical
// or not. The treatment ("dedup on") lands both folders' block namespace
// on one shared data plane with a SegmentPoolIndex: folder B's upload
// pipeline probes the pool per segment and a hit skips encode + transfer,
// committing only a file→segment reference.
//
// Sweeps whole-file duplication ratios 0/25/50/75% (B repeats that exact
// fraction of folder A's files) and measures, for folder B's sync round:
//   - block bytes uploaded (the /data traffic B actually sent)
//   - blocks added to the cloud (physical pool growth attributable to B)
//   - wall-clock seconds (best-of-N at ratio 0, where timing is the gate)
//
// Emits BENCH_dedup.json. Hard gates (exit 1):
//   - at 50% duplication, dedup-on cuts BOTH uploaded block bytes and
//     added blocks by >= 40% vs dedup-off;
//   - savings scale with the ratio (monotone within a small tolerance);
//   - at 0% duplication the pool costs <= 3% sync wall-clock vs dedup-off
//     (pure index-probe overhead; compared best-of-N to suppress runner
//     noise, with a small absolute floor so a sub-millisecond jitter on a
//     fast run cannot fail the relative gate).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cloud/memory_cloud.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/local_fs.h"
#include "dedup/pool_index.h"

namespace unidrive::bench {
namespace {

constexpr int kFiles = 20;                      // per folder
constexpr std::size_t kFileBytes = 384 << 10;   // 3 segments per file
constexpr std::size_t kTheta = 128 << 10;
constexpr int kClouds = 4;
constexpr int kTimingReps = 5;  // best-of reps for the ratio-0 timing gate

// Counts block-namespace upload traffic through an enrollment.
class CountingCloud final : public cloud::CloudProvider {
 public:
  CountingCloud(cloud::CloudPtr inner, std::atomic<std::uint64_t>* data_up)
      : inner_(std::move(inner)), data_up_(data_up) {}

  [[nodiscard]] cloud::CloudId id() const noexcept override {
    return inner_->id();
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override {
    if (path.rfind("/data", 0) == 0) {
      data_up_->fetch_add(data.size(), std::memory_order_relaxed);
    }
    return inner_->upload(path, data);
  }
  Result<Bytes> download(const std::string& path) override {
    return inner_->download(path);
  }
  Status create_dir(const std::string& path) override {
    return inner_->create_dir(path);
  }
  Result<std::vector<cloud::FileInfo>> list(const std::string& dir) override {
    return inner_->list(dir);
  }
  Status remove(const std::string& path) override {
    return inner_->remove(path);
  }

 private:
  cloud::CloudPtr inner_;
  std::atomic<std::uint64_t>* data_up_;
};

// Routes /data to a shared backing cloud, everything else (metadata, locks)
// to a folder-private one — the shared-pool deployment shape.
class SplitNamespaceCloud final : public cloud::CloudProvider {
 public:
  SplitNamespaceCloud(cloud::CloudPtr shared_data, cloud::CloudPtr priv)
      : data_(std::move(shared_data)), private_(std::move(priv)) {}

  [[nodiscard]] cloud::CloudId id() const noexcept override {
    return data_->id();
  }
  [[nodiscard]] std::string name() const override { return data_->name(); }

  Status upload(const std::string& path, ByteSpan data) override {
    return route(path)->upload(path, data);
  }
  Result<Bytes> download(const std::string& path) override {
    return route(path)->download(path);
  }
  Status create_dir(const std::string& path) override {
    return route(path)->create_dir(path);
  }
  Result<std::vector<cloud::FileInfo>> list(const std::string& dir) override {
    return route(dir)->list(dir);
  }
  Status remove(const std::string& path) override {
    return route(path)->remove(path);
  }

 private:
  cloud::CloudProvider* route(const std::string& path) {
    return path == "/data" || path.rfind("/data/", 0) == 0 ? data_.get()
                                                           : private_.get();
  }
  cloud::CloudPtr data_;
  cloud::CloudPtr private_;
};

core::ClientConfig client_config(const std::string& device) {
  core::ClientConfig cfg;
  cfg.device = device;
  cfg.theta = kTheta;
  cfg.lock.retry.backoff_base = 0.001;
  cfg.lock.retry.backoff_cap = 0.01;
  return cfg;
}

// Folder contents: A gets kFiles fresh files; B repeats the first
// `dup_count` of A's files byte-for-byte and is otherwise fresh. Seeds are
// per-rep so timing repetitions never collide in the shared pool.
std::vector<Bytes> folder_a_files(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> files;
  for (int i = 0; i < kFiles; ++i) files.push_back(rng.bytes(kFileBytes));
  return files;
}

std::vector<Bytes> folder_b_files(const std::vector<Bytes>& a_files,
                                  int dup_count, std::uint64_t seed) {
  Rng rng(seed ^ 0xb0b);
  std::vector<Bytes> files;
  for (int i = 0; i < kFiles; ++i) {
    files.push_back(i < dup_count ? a_files[i] : rng.bytes(kFileBytes));
  }
  return files;
}

struct RunResult {
  std::uint64_t b_data_bytes_up = 0;  // /data traffic of B's sync
  std::uint64_t b_blocks_added = 0;   // physical pool growth from B's sync
  std::size_t b_segments_deduped = 0;
  double b_seconds = 0;
};

std::uint64_t data_file_count(const cloud::MultiCloud& clouds) {
  std::uint64_t n = 0;
  for (const auto& c : clouds) {
    auto listing = c->list("/data");
    if (listing.is_ok()) n += listing.value().size();
  }
  return n;
}

void sync_folder(const cloud::MultiCloud& clouds,
                 const std::vector<Bytes>& files, const std::string& folder,
                 dedup::PoolIndexPtr pool, RunResult* timed) {
  auto fs = std::make_shared<core::MemoryLocalFs>();
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!fs->write("/f" + std::to_string(i), ByteSpan(files[i])).is_ok()) {
      std::fprintf(stderr, "local write failed\n");
      std::exit(2);
    }
  }
  core::ClientConfig cfg = client_config(folder + "_dev");
  cfg.pool = std::move(pool);
  cfg.folder_id = folder;
  core::UniDriveClient client(clouds, fs, cfg);
  const auto start = std::chrono::steady_clock::now();
  const auto report = client.sync();
  const auto stop = std::chrono::steady_clock::now();
  if (!report.is_ok() || !report.value().committed) {
    std::fprintf(stderr, "sync failed: %s\n",
                 report.status().to_string().c_str());
    std::exit(2);
  }
  if (timed != nullptr) {
    timed->b_seconds = std::chrono::duration<double>(stop - start).count();
    timed->b_segments_deduped = report.value().segments_deduped;
  }
}

// One A-then-B round. dedup_on: shared data plane + shared pool index.
// dedup off: disjoint cloud accounts per folder, no pool.
RunResult run_round(int dup_count, bool dedup_on, std::uint64_t seed) {
  const auto a_files = folder_a_files(seed);
  const auto b_files = folder_b_files(a_files, dup_count, seed);
  RunResult out;
  std::atomic<std::uint64_t> b_data_up{0};

  if (dedup_on) {
    std::vector<cloud::CloudPtr> shared;
    for (int i = 0; i < kClouds; ++i) {
      shared.push_back(std::make_shared<cloud::MemoryCloud>(
          static_cast<cloud::CloudId>(i), "shared" + std::to_string(i)));
    }
    auto enroll = [&shared](const std::string& folder) {
      cloud::MultiCloud clouds;
      for (int i = 0; i < kClouds; ++i) {
        clouds.push_back(std::make_shared<SplitNamespaceCloud>(
            shared[i], std::make_shared<cloud::MemoryCloud>(
                           static_cast<cloud::CloudId>(i),
                           folder + "_priv" + std::to_string(i))));
      }
      return clouds;
    };
    auto pool = std::make_shared<dedup::SegmentPoolIndex>();
    sync_folder(enroll("folderA"), a_files, "folderA", pool, nullptr);
    const std::uint64_t blocks_before = data_file_count(shared);
    cloud::MultiCloud b_clouds;
    for (auto& c : enroll("folderB")) {
      b_clouds.push_back(std::make_shared<CountingCloud>(c, &b_data_up));
    }
    sync_folder(b_clouds, b_files, "folderB", pool, &out);
    out.b_blocks_added = data_file_count(shared) - blocks_before;
  } else {
    auto own_stack = [](const std::string& tag) {
      cloud::MultiCloud clouds;
      for (int i = 0; i < kClouds; ++i) {
        clouds.push_back(std::make_shared<cloud::MemoryCloud>(
            static_cast<cloud::CloudId>(i), tag + std::to_string(i)));
      }
      return clouds;
    };
    sync_folder(own_stack("a"), a_files, "folderA", nullptr, nullptr);
    const cloud::MultiCloud b_inner = own_stack("b");
    cloud::MultiCloud b_clouds;
    for (const auto& c : b_inner) {
      b_clouds.push_back(std::make_shared<CountingCloud>(c, &b_data_up));
    }
    sync_folder(b_clouds, b_files, "folderB", nullptr, &out);
    out.b_blocks_added = data_file_count(b_inner);
  }
  out.b_data_bytes_up = b_data_up.load();
  return out;
}

struct RatioResult {
  int dup_percent = 0;
  RunResult on;
  RunResult off;
  double traffic_savings = 0;
  double storage_savings = 0;
};

int run() {
  std::printf("bench_dedup: %d files x %zu KiB per folder, theta %zu KiB, "
              "%d clouds; folder B repeats a fraction of folder A\n\n",
              kFiles, kFileBytes >> 10, kTheta >> 10, kClouds);
  std::printf("%-6s %14s %14s %10s %10s %9s %9s\n", "dup%", "up_off(KiB)",
              "up_on(KiB)", "blk_off", "blk_on", "traffic", "storage");
  print_rule(78);

  std::vector<RatioResult> results;
  for (const int pct : {0, 25, 50, 75}) {
    RatioResult r;
    r.dup_percent = pct;
    const int dup_count = kFiles * pct / 100;
    // Best-of-N timing at every ratio; byte accounting is deterministic so
    // the first rep's counters are representative (asserted below).
    const int reps = pct == 0 ? kTimingReps : 1;
    for (int rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = 1000 + 17 * static_cast<std::uint64_t>(rep);
      const RunResult on = run_round(dup_count, /*dedup_on=*/true, seed);
      const RunResult off = run_round(dup_count, /*dedup_on=*/false, seed);
      if (rep == 0) {
        r.on = on;
        r.off = off;
      } else {
        r.on.b_seconds = std::min(r.on.b_seconds, on.b_seconds);
        r.off.b_seconds = std::min(r.off.b_seconds, off.b_seconds);
      }
    }
    r.traffic_savings =
        r.off.b_data_bytes_up == 0
            ? 0
            : 1.0 - static_cast<double>(r.on.b_data_bytes_up) /
                        static_cast<double>(r.off.b_data_bytes_up);
    r.storage_savings =
        r.off.b_blocks_added == 0
            ? 0
            : 1.0 - static_cast<double>(r.on.b_blocks_added) /
                        static_cast<double>(r.off.b_blocks_added);
    std::printf("%-6d %14llu %14llu %10llu %10llu %8.1f%% %8.1f%%\n", pct,
                static_cast<unsigned long long>(r.off.b_data_bytes_up >> 10),
                static_cast<unsigned long long>(r.on.b_data_bytes_up >> 10),
                static_cast<unsigned long long>(r.off.b_blocks_added),
                static_cast<unsigned long long>(r.on.b_blocks_added),
                100 * r.traffic_savings, 100 * r.storage_savings);
    results.push_back(r);
  }

  const RatioResult& zero = results[0];
  const RatioResult& fifty = results[2];
  const double overhead =
      zero.off.b_seconds > 0
          ? zero.on.b_seconds / zero.off.b_seconds - 1.0
          : 0;
  std::printf("\nzero-dup sync (best of %d): dedup-off %.4f s, dedup-on "
              "%.4f s, overhead %+.2f%%\n",
              kTimingReps, zero.off.b_seconds, zero.on.b_seconds,
              100 * overhead);

  FILE* json = std::fopen("BENCH_dedup.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"ratios\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RatioResult& r = results[i];
      std::fprintf(
          json,
          "    {\"dup_percent\": %d, \"uploaded_off\": %llu, "
          "\"uploaded_on\": %llu, \"blocks_off\": %llu, \"blocks_on\": %llu, "
          "\"segments_deduped\": %zu, \"traffic_savings\": %.4f, "
          "\"storage_savings\": %.4f}%s\n",
          r.dup_percent,
          static_cast<unsigned long long>(r.off.b_data_bytes_up),
          static_cast<unsigned long long>(r.on.b_data_bytes_up),
          static_cast<unsigned long long>(r.off.b_blocks_added),
          static_cast<unsigned long long>(r.on.b_blocks_added),
          r.on.b_segments_deduped, r.traffic_savings, r.storage_savings,
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"zero_dup_off_s\": %.5f,\n"
                 "  \"zero_dup_on_s\": %.5f,\n"
                 "  \"zero_dup_overhead\": %.4f\n"
                 "}\n",
                 zero.off.b_seconds, zero.on.b_seconds, overhead);
    std::fclose(json);
  }

  int failures = 0;
  // Gate 1: >= 40% savings at 50% duplication, traffic AND storage.
  if (fifty.traffic_savings < 0.40) {
    std::fprintf(stderr, "FAIL: traffic savings at 50%% dup = %.1f%% (< 40%%)\n",
                 100 * fifty.traffic_savings);
    ++failures;
  }
  if (fifty.storage_savings < 0.40) {
    std::fprintf(stderr, "FAIL: storage savings at 50%% dup = %.1f%% (< 40%%)\n",
                 100 * fifty.storage_savings);
    ++failures;
  }
  // Gate 2: savings scale with the duplication ratio.
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].traffic_savings < results[i - 1].traffic_savings - 0.02) {
      std::fprintf(stderr,
                   "FAIL: traffic savings not monotone (%d%%: %.1f%% after "
                   "%d%%: %.1f%%)\n",
                   results[i].dup_percent, 100 * results[i].traffic_savings,
                   results[i - 1].dup_percent,
                   100 * results[i - 1].traffic_savings);
      ++failures;
    }
  }
  // Gate 3: the pool must be ~free when nothing duplicates. Best-of-N sync
  // time within 3%, with a 5 ms absolute floor so sub-millisecond runner
  // jitter on a fast round cannot flip the relative gate.
  const double abs_delta = zero.on.b_seconds - zero.off.b_seconds;
  if (overhead > 0.03 && abs_delta > 0.005) {
    std::fprintf(stderr,
                 "FAIL: zero-dup overhead %.2f%% (+%.1f ms) exceeds 3%%\n",
                 100 * overhead, 1000 * abs_delta);
    ++failures;
  }
  // Sanity: at 0% duplication the pool must not suppress anything.
  if (zero.on.b_segments_deduped != 0) {
    std::fprintf(stderr, "FAIL: %zu segments deduped at 0%% duplication\n",
                 zero.on.b_segments_deduped);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace unidrive::bench

int main() { return unidrive::bench::run(); }
