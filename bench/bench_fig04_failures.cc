// Figure 4 — impact of file size on the transient-failure rate (Princeton):
// the paper plots the share of each file size among all failed Web API
// requests, observing that larger files fail more and that below ~2 MB
// there is no obvious increase.
#include "bench_util.h"

namespace unidrive::bench {
namespace {

void run() {
  std::printf("=== Figure 4: failure rate vs file size, Princeton ===\n\n");
  const std::vector<std::uint64_t> sizes = {0,        512 << 10, 1 << 20,
                                            2 << 20, 4 << 20,   8 << 20};
  const auto princeton = sim::planetlab_locations()[0];

  std::vector<std::size_t> failures(sizes.size(), 0);
  std::vector<std::size_t> attempts(sizes.size(), 0);

  sim::SimEnv env(55);
  sim::CloudSet set = sim::make_cloud_set(env, princeton, 55);
  const int rounds = 800;
  for (int r = 0; r < rounds; ++r) {
    advance_to(env, r * 900.0);
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      for (std::size_t c = 0; c < sim::kNumClouds; ++c) {
        ++attempts[s];
        if (measure_raw(env, *set.clouds[c], sizes[s], false) < 0) {
          ++failures[s];
        }
      }
    }
  }

  std::size_t total_failures = 0;
  for (const std::size_t f : failures) total_failures += f;

  std::printf("%-10s %12s %14s %22s\n", "size", "failure %",
              "failures", "% of all failures");
  print_rule(62);
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const double rate =
        100.0 * static_cast<double>(failures[s]) / attempts[s];
    const double share =
        100.0 * static_cast<double>(failures[s]) / total_failures;
    std::printf("%6.1f MB  %11s%% %14zu %21s%%\n",
                static_cast<double>(sizes[s]) / (1 << 20),
                fmt(rate, 2).c_str(), failures[s], fmt(share, 1).c_str());
  }

  std::printf("\nPaper-shape checks:\n");
  const double small_rate =
      static_cast<double>(failures[0] + failures[1] + failures[2]) /
      (attempts[0] + attempts[1] + attempts[2]);
  const double large_rate = static_cast<double>(failures[5]) / attempts[5];
  std::printf("  8 MB failure rate / <=1 MB failure rate: %s "
              "(paper: larger files fail clearly more)\n",
              fmt(large_rate / small_rate, 2).c_str());
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
