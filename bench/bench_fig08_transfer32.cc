// Figure 8 — the headline micro-benchmark: average (min/max) time to upload
// and download a 32 MB file on the 7 EC2 nodes, for the five native CCS
// apps, the intuitive multi-cloud, the multi-cloud benchmark
// (RACS/DepSky-style), and UniDrive. Paper: UniDrive improves the
// best-per-location CCS by ~2.64x (upload) and ~1.49x (download), and
// beats the benchmark by ~1.5x.
#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr std::uint64_t kBytes = 32 << 20;
constexpr int kReps = 16;

struct Row {
  Summary up;
  Summary down;
};

void run() {
  std::printf("=== Figure 8: 32 MB transfer time on EC2 nodes "
              "(avg[min..max] seconds, %d reps) ===\n", kReps);
  const auto locations = sim::ec2_locations();
  const std::size_t num_approaches = sim::kNumClouds + 3;
  auto label = [&](std::size_t a) -> std::string {
    if (a < sim::kNumClouds) {
      return sim::cloud_name(static_cast<sim::CloudKind>(a));
    }
    if (a == sim::kNumClouds) return "Intuitive";
    if (a == sim::kNumClouds + 1) return "Benchmark";
    return "UniDrive";
  };

  double speedup_up_sum = 0, speedup_down_sum = 0, bench_gap_sum = 0;
  std::size_t speedup_count = 0;

  for (std::size_t li = 0; li < locations.size(); ++li) {
    std::vector<Row> rows(num_approaches);
    for (int rep = 0; rep < kReps; ++rep) {
      const std::uint64_t seed = 9000 + li * 100 + rep;
      // Each approach gets an identical fresh network (same seed).
      for (std::size_t a = 0; a < num_approaches; ++a) {
        sim::SimEnv env(seed);
        sim::CloudSet set = sim::make_cloud_set(env, locations[li], seed);
        advance_to(env, rep * 5400.0);  // spread reps across the day
        UpDown r;
        if (a < sim::kNumClouds) {
          r = native_updown(env, set, a, kBytes);
        } else if (a == sim::kNumClouds) {
          r = intuitive_updown(env, set, kBytes);
        } else if (a == sim::kNumClouds + 1) {
          r = unidrive_updown(env, set, kBytes, benchmark_options());
        } else {
          r = unidrive_updown(env, set, kBytes, UniDriveRunOptions{});
        }
        rows[a].up.add(r.up);
        rows[a].down.add(r.down);
      }
    }

    std::printf("\n--- %s ---\n", locations[li].name.c_str());
    std::printf("%-14s %28s %28s\n", "approach", "upload", "download");
    print_rule(72);
    double best_native_up = -1, best_native_down = -1;
    for (std::size_t a = 0; a < num_approaches; ++a) {
      std::printf("%-14s %10s[%7s..%7s] %10s[%7s..%7s]\n", label(a).c_str(),
                  fmt(rows[a].up.avg()).c_str(), fmt(rows[a].up.min()).c_str(),
                  fmt(rows[a].up.max()).c_str(), fmt(rows[a].down.avg()).c_str(),
                  fmt(rows[a].down.min()).c_str(),
                  fmt(rows[a].down.max()).c_str());
      if (a < sim::kNumClouds && rows[a].up.count() > 0) {
        if (best_native_up < 0 || rows[a].up.avg() < best_native_up) {
          best_native_up = rows[a].up.avg();
        }
        if (best_native_down < 0 || rows[a].down.avg() < best_native_down) {
          best_native_down = rows[a].down.avg();
        }
      }
    }
    const double uni_up = rows[num_approaches - 1].up.avg();
    const double uni_down = rows[num_approaches - 1].down.avg();
    const double bench_up = rows[num_approaches - 2].up.avg();
    if (uni_up > 0 && best_native_up > 0) {
      std::printf("UniDrive speedup vs best CCS here: upload %sx, "
                  "download %sx; vs benchmark: %sx\n",
                  fmt(best_native_up / uni_up, 2).c_str(),
                  fmt(best_native_down / uni_down, 2).c_str(),
                  fmt(bench_up / uni_up, 2).c_str());
      speedup_up_sum += best_native_up / uni_up;
      speedup_down_sum += best_native_down / uni_down;
      bench_gap_sum += bench_up / uni_up;
      ++speedup_count;
    }
  }

  std::printf("\n=== Summary (averaged over locations) ===\n");
  std::printf("UniDrive vs best CCS:   upload %sx (paper ~2.64x), "
              "download %sx (paper ~1.49x)\n",
              fmt(speedup_up_sum / speedup_count, 2).c_str(),
              fmt(speedup_down_sum / speedup_count, 2).c_str());
  std::printf("UniDrive vs benchmark:  upload %sx (paper ~1.5x)\n",
              fmt(bench_gap_sum / speedup_count, 2).c_str());
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
