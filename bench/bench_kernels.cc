// Consolidated data-plane kernel benchmark: scalar reference vs dispatched
// (SIMD) throughput for every hot byte-crunching kernel, in MB/s.
//
//   - RS (10, 3) encode inner loop: the fused GF(2^8) dot product per coded
//     row, dispatched vs the scalar reference twins (and the old
//     mul_add-sweep formulation for context).
//   - RS decode inner loop (k fused dot products over the inverse matrix).
//   - CRC32C: hardware (sse4.2) vs slicing-by-8 software.
//   - Ciphers: AES-128-CTR (dispatched vs scalar reference), ChaCha20, and
//     the paper's DES-CBC baseline.
//
// Emits BENCH_kernels.json (CI artifact). Hard gates (exit 1):
//   - SIMD RS encode >= 3x the scalar reference when the CPU has SSSE3/AVX2.
//   - Hardware CRC32C >= 5x software when the CPU has SSE4.2.
//   - On hosts without the ISA (or under UNIDRIVE_FORCE_SCALAR=1) the gates
//     auto-relax to parity (ratio >= 0.9: dispatch overhead must be nil).
// Correctness is asserted inline (encode output vs scalar twin) so a fast
// but wrong kernel cannot pass.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/crc32.h"
#include "crypto/des.h"
#include "erasure/gf256.h"
#include "erasure/matrix.h"

namespace unidrive {
namespace {

using erasure::Gf256;

constexpr std::size_t kShardBytes = 1 << 20;  // 1 MiB per data shard
constexpr std::size_t kN = 10, kK = 3;        // UniDrive's default code
constexpr int kReps = 8;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measured {
  double mbps = 0;
};

// Runs fn() kReps times over `bytes_per_rep` payload bytes, returns MB/s of
// the best rep (min-time: least scheduler noise on a 1-core CI box).
template <typename Fn>
Measured measure(std::size_t bytes_per_rep, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < kReps; ++r) {
    const double t0 = now_seconds();
    fn();
    const double dt = now_seconds() - t0;
    if (dt < best) best = dt;
  }
  Measured m;
  m.mbps = static_cast<double>(bytes_per_rep) / 1e6 / best;
  return m;
}

struct EncodeFixture {
  std::vector<AlignedBytes> data;
  std::vector<const std::uint8_t*> srcs;
  erasure::GfMatrix matrix;
  std::vector<Bytes> out;

  EncodeFixture() : matrix(erasure::GfMatrix::cauchy(kN, kK)), out(kN) {
    Rng rng(0x5eed);
    data.resize(kK);
    srcs.resize(kK);
    for (std::size_t c = 0; c < kK; ++c) {
      const Bytes fill = rng.bytes(kShardBytes);
      data[c].assign(fill.begin(), fill.end());
      srcs[c] = data[c].data();
    }
    for (auto& row : out) row.resize(kShardBytes);
  }

  // One full encode of all n coded rows with explicit kernel choice.
  template <bool Scalar>
  void encode_dot() {
    std::uint8_t coeffs[kK];
    for (std::size_t r = 0; r < kN; ++r) {
      for (std::size_t c = 0; c < kK; ++c) coeffs[c] = matrix.at(r, c);
      if constexpr (Scalar) {
        Gf256::dot_slice_scalar(out[r].data(), srcs.data(), coeffs, kK,
                                kShardBytes);
      } else {
        Gf256::dot_slice(out[r].data(), srcs.data(), coeffs, kK, kShardBytes);
      }
    }
  }

  // The pre-fusion formulation: k separate read-modify-write sweeps per row.
  void encode_mul_add_sweeps() {
    for (std::size_t r = 0; r < kN; ++r) {
      std::fill(out[r].begin(), out[r].end(), 0);
      for (std::size_t c = 0; c < kK; ++c) {
        Gf256::mul_add_slice(out[r].data(), srcs[c], kShardBytes,
                             matrix.at(r, c));
      }
    }
  }
};

int fail(const char* what, double got, double want) {
  std::fprintf(stderr, "GATE FAILED: %s — got %.2f, need >= %.2f\n", what,
               got, want);
  return 1;
}

int run() {
  const CpuFeatures& f = cpu_features();
  const bool gf_simd = !f.force_scalar && (f.avx2 || f.ssse3);
  const bool crc_hw = !f.force_scalar && f.sse42;

  std::printf("bench_kernels: gf=%s crc32c=%s aes=%s chacha20=%s%s\n",
              Gf256::kernel_name(), crypto::crc32c_kernel_name(),
              crypto::Aes128::kernel_name(), crypto::ChaCha20::kernel_name(),
              f.force_scalar ? " (UNIDRIVE_FORCE_SCALAR)" : "");

  EncodeFixture fx;
  const std::size_t encode_bytes = kN * kShardBytes;  // rows written per pass

  // Correctness pin before timing: dispatched encode == scalar encode.
  fx.encode_dot</*Scalar=*/false>();
  std::vector<Bytes> simd_out = fx.out;
  fx.encode_dot</*Scalar=*/true>();
  if (simd_out != fx.out) {
    std::fprintf(stderr, "FATAL: dispatched encode != scalar encode\n");
    return 1;
  }

  const Measured enc_simd =
      measure(encode_bytes, [&] { fx.encode_dot<false>(); });
  const Measured enc_scalar =
      measure(encode_bytes, [&] { fx.encode_dot<true>(); });
  const Measured enc_sweeps =
      measure(encode_bytes, [&] { fx.encode_mul_add_sweeps(); });
  const double enc_ratio = enc_simd.mbps / enc_scalar.mbps;

  // Decode inner loop: k dot products over k source rows (same kernel,
  // different shape — k outputs instead of n).
  const Measured dec_simd = measure(kK * kShardBytes, [&] {
    std::uint8_t coeffs[kK];
    for (std::size_t r = 0; r < kK; ++r) {
      for (std::size_t c = 0; c < kK; ++c) coeffs[c] = fx.matrix.at(r, c);
      Gf256::dot_slice(fx.out[r].data(), fx.srcs.data(), coeffs, kK,
                       kShardBytes);
    }
  });

  Rng rng(0xc3c);
  const Bytes crc_buf = rng.bytes(512 << 10);  // L2-resident: measures the
                                               // kernel, not memory bandwidth
  volatile std::uint32_t sink = 0;
  const Measured crc_fast = measure(crc_buf.size(), [&] {
    sink = crypto::crc32c(ByteSpan(crc_buf));
  });
  const Measured crc_soft = measure(crc_buf.size(), [&] {
    sink = crypto::crc32c_sw(ByteSpan(crc_buf));
  });
  (void)sink;
  const double crc_ratio = crc_fast.mbps / crc_soft.mbps;

  const Bytes cipher_buf = rng.bytes(4 << 20);
  Bytes cipher_out(cipher_buf.size());
  const crypto::Aes128 aes(crypto::aes128_key_from_passphrase("bench"));
  const crypto::Aes128::Nonce aes_nonce{};
  const Measured aes_fast = measure(cipher_buf.size(), [&] {
    aes.ctr_xor(aes_nonce, 0, ByteSpan(cipher_buf), cipher_out.data());
  });
  const Measured aes_scalar = measure(cipher_buf.size(), [&] {
    aes.ctr_xor_scalar(aes_nonce, 0, ByteSpan(cipher_buf), cipher_out.data());
  });
  const crypto::ChaCha20 chacha(crypto::chacha20_key_from_passphrase("bench"));
  const crypto::ChaCha20::Nonce cc_nonce{};
  const Measured chacha_m = measure(cipher_buf.size(), [&] {
    chacha.xor_stream(cc_nonce, 0, ByteSpan(cipher_buf), cipher_out.data());
  });
  // DES baseline on a smaller buffer (it is ~three orders slower).
  const Bytes des_buf = rng.bytes(256 << 10);
  const auto des_key = crypto::des_key_from_passphrase("bench");
  const crypto::Des::Block iv{};
  const Measured des_m = measure(des_buf.size(), [&] {
    volatile std::size_t s =
        crypto::des_cbc_encrypt(des_key, ByteSpan(des_buf), iv).size();
    (void)s;
  });

  std::printf("  %-28s %10s\n", "kernel", "MB/s");
  std::printf("  %-28s %10.0f\n", "rs_encode(10,3) dispatched", enc_simd.mbps);
  std::printf("  %-28s %10.0f\n", "rs_encode(10,3) scalar", enc_scalar.mbps);
  std::printf("  %-28s %10.0f\n", "rs_encode mul_add sweeps", enc_sweeps.mbps);
  std::printf("  %-28s %10.0f\n", "rs_decode(k=3) dispatched", dec_simd.mbps);
  std::printf("  %-28s %10.0f\n", "crc32c dispatched", crc_fast.mbps);
  std::printf("  %-28s %10.0f\n", "crc32c software", crc_soft.mbps);
  std::printf("  %-28s %10.0f\n", "aes128ctr dispatched", aes_fast.mbps);
  std::printf("  %-28s %10.0f\n", "aes128ctr scalar", aes_scalar.mbps);
  std::printf("  %-28s %10.0f\n", "chacha20", chacha_m.mbps);
  std::printf("  %-28s %10.0f\n", "des-cbc (paper baseline)", des_m.mbps);
  std::printf("  encode ratio %.2fx (gate %s), crc ratio %.2fx (gate %s)\n",
              enc_ratio, gf_simd ? ">=3" : ">=0.9 (parity)", crc_ratio,
              crc_hw ? ">=5" : ">=0.9 (parity)");

  const double enc_gate = gf_simd ? 3.0 : 0.9;
  const double crc_gate = crc_hw ? 5.0 : 0.9;
  const bool enc_pass = enc_ratio >= enc_gate;
  const bool crc_pass = crc_ratio >= crc_gate;

  if (FILE* json = std::fopen("BENCH_kernels.json", "w")) {
    std::fprintf(
        json,
        "{\n"
        "  \"cpu\": {\"ssse3\": %s, \"sse42\": %s, \"avx2\": %s, "
        "\"aesni\": %s, \"force_scalar\": %s},\n"
        "  \"impl\": {\"gf\": \"%s\", \"crc32c\": \"%s\", \"aes\": \"%s\", "
        "\"chacha20\": \"%s\"},\n"
        "  \"mbps\": {\n"
        "    \"rs_encode_dispatched\": %.1f,\n"
        "    \"rs_encode_scalar\": %.1f,\n"
        "    \"rs_encode_mul_add_sweeps\": %.1f,\n"
        "    \"rs_decode_dispatched\": %.1f,\n"
        "    \"crc32c_dispatched\": %.1f,\n"
        "    \"crc32c_software\": %.1f,\n"
        "    \"aes128ctr_dispatched\": %.1f,\n"
        "    \"aes128ctr_scalar\": %.1f,\n"
        "    \"chacha20\": %.1f,\n"
        "    \"des_cbc\": %.1f\n"
        "  },\n"
        "  \"gates\": {\n"
        "    \"encode_ratio\": %.3f, \"encode_gate\": %.2f, "
        "\"encode_pass\": %s,\n"
        "    \"crc_ratio\": %.3f, \"crc_gate\": %.2f, \"crc_pass\": %s\n"
        "  }\n"
        "}\n",
        f.ssse3 ? "true" : "false", f.sse42 ? "true" : "false",
        f.avx2 ? "true" : "false", f.aesni ? "true" : "false",
        f.force_scalar ? "true" : "false", Gf256::kernel_name(),
        crypto::crc32c_kernel_name(), crypto::Aes128::kernel_name(),
        crypto::ChaCha20::kernel_name(), enc_simd.mbps, enc_scalar.mbps,
        enc_sweeps.mbps, dec_simd.mbps, crc_fast.mbps, crc_soft.mbps,
        aes_fast.mbps, aes_scalar.mbps, chacha_m.mbps, des_m.mbps, enc_ratio,
        enc_gate, enc_pass ? "true" : "false", crc_ratio, crc_gate,
        crc_pass ? "true" : "false");
    std::fclose(json);
  }

  if (!enc_pass) return fail("rs encode SIMD/scalar ratio", enc_ratio, enc_gate);
  if (!crc_pass) return fail("crc32c hw/sw ratio", crc_ratio, crc_gate);
  std::printf("  all gates passed\n");
  return 0;
}

}  // namespace
}  // namespace unidrive

int main() { return unidrive::run(); }
