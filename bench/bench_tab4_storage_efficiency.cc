// Storage-efficiency analysis (Section 1's motivating example): with
// 100 GB on each of three vendors and the requirement of tolerating one
// vendor outage, UniDrive's erasure coding yields 200 GB of usable space
// while replication yields at most 150 GB. This bench sweeps (N, Kr, Ks)
// and prints usable capacity for coding vs replication.
#include "bench_util.h"

namespace unidrive::bench {
namespace {

// Usable data per 1 unit of per-cloud quota with simple replication that
// tolerates (N - Kr) cloud outages: each byte must exist on N - Kr + 1
// clouds, so capacity = N / (N - Kr + 1) units... bounded by placement
// granularity; the paper's "at most 150 GB" for N=3, one outage, means
// 2 copies of everything: 300/2 = 150.
double replication_capacity(std::size_t n, std::size_t kr) {
  const double copies = static_cast<double>(n - kr + 1);
  return static_cast<double>(n) / copies;
}

void run() {
  std::printf("=== Storage efficiency: erasure coding vs replication "
              "(usable GB per 100 GB/cloud) ===\n\n");
  std::printf("%-4s %-4s %-4s %16s %18s %14s\n", "N", "Kr", "Ks",
              "UniDrive (GB)", "replication (GB)", "advantage");
  print_rule(68);

  struct Case {
    std::size_t n, kr, ks, k;
  };
  const std::vector<Case> cases = {
      {3, 2, 1, 2},   // the paper's example
      {5, 3, 2, 3},   // the evaluation default
      {5, 4, 2, 4},
      {5, 2, 2, 2},
      {7, 4, 2, 4},
      {4, 3, 2, 3},
  };
  for (const Case& c : cases) {
    sched::CodeParams params;
    params.num_clouds = c.n;
    params.kr = c.kr;
    params.ks = c.ks;
    params.k = c.k;
    if (!params.validate().is_ok()) continue;
    const double unidrive =
        params.storage_efficiency() * 100.0 * static_cast<double>(c.n);
    const double replication = replication_capacity(c.n, c.kr) * 100.0;
    std::printf("%-4zu %-4zu %-4zu %16s %18s %13sx\n", c.n, c.kr, c.ks,
                fmt(unidrive, 0).c_str(), fmt(replication, 0).c_str(),
                fmt(unidrive / replication, 2).c_str());
  }

  std::printf("\nPaper example (N=3, tolerate 1 outage): UniDrive 200 GB vs "
              "replication 150 GB from 3 x 100 GB of quota.\n");

  // Content-addressed dedup multiplies the USABLE capacity further: with a
  // cross-user duplicate fraction d, only (1 - d) of the logical bytes
  // consume physical pool space (convergent dispersal makes the duplicate
  // blocks byte-identical, so the pool stores them once; DESIGN.md §13).
  std::printf("\n=== Effective capacity with segment-pool dedup "
              "(N=5, Kr=3, Ks=2, k=3) ===\n\n");
  std::printf("%-12s %22s %18s\n", "dup frac", "effective logical (GB)",
              "vs no-dedup");
  print_rule(56);
  sched::CodeParams base;
  base.num_clouds = 5;
  base.kr = 3;
  base.ks = 2;
  base.k = 3;
  const double physical = base.storage_efficiency() * 100.0 * 5.0;
  for (const double d : {0.0, 0.25, 0.50, 0.75}) {
    const double logical = physical / (1.0 - d);
    std::printf("%-12s %22s %17sx\n", fmt(d, 2).c_str(),
                fmt(logical, 0).c_str(), fmt(logical / physical, 2).c_str());
  }
  std::printf("\nAt the 50%% duplication measured in shared-folder fleets, "
              "dedup doubles the usable capacity the coding layer "
              "provides.\n");
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
