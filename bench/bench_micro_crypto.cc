// Microbenchmarks: hashing and encryption primitives on the metadata path.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/crc32.h"
#include "crypto/des.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace {

using namespace unidrive;

void BM_Sha1(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::hash(ByteSpan(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(1 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_Sha256(benchmark::State& state) {
  Rng rng(2);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(ByteSpan(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64 << 10)->Arg(1 << 20);

void BM_Crc32c(benchmark::State& state) {
  Rng rng(3);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::crc32c(ByteSpan(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64 << 10)->Arg(1 << 20);

void BM_Crc32cSoftware(benchmark::State& state) {
  Rng rng(3);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::crc32c_sw(ByteSpan(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32cSoftware)->Arg(64 << 10)->Arg(1 << 20);

void BM_Aes128Ctr(benchmark::State& state) {
  Rng rng(5);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto key = crypto::aes128_key_from_passphrase("bench");
  const crypto::Aes128 aes(key);
  const crypto::Aes128::Nonce nonce{};
  Bytes out(data.size());
  for (auto _ : state) {
    aes.ctr_xor(nonce, 0, ByteSpan(data), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(64 << 10)->Arg(1 << 20);

void BM_ChaCha20(benchmark::State& state) {
  Rng rng(6);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto key = crypto::chacha20_key_from_passphrase("bench");
  const crypto::ChaCha20 chacha(key);
  const crypto::ChaCha20::Nonce nonce{};
  Bytes out(data.size());
  for (auto _ : state) {
    chacha.xor_stream(nonce, 0, ByteSpan(data), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64 << 10)->Arg(1 << 20);

void BM_DesCbcEncrypt(benchmark::State& state) {
  Rng rng(4);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto key = crypto::des_key_from_passphrase("bench");
  crypto::Des::Block iv{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::des_cbc_encrypt(key, ByteSpan(data), iv));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DesCbcEncrypt)->Arg(4 << 10)->Arg(64 << 10);

void BM_DesCbcDecrypt(benchmark::State& state) {
  Rng rng(5);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto key = crypto::des_key_from_passphrase("bench");
  crypto::Des::Block iv{};
  const Bytes cipher = crypto::des_cbc_encrypt(key, ByteSpan(data), iv);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::des_cbc_decrypt(key, ByteSpan(cipher)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DesCbcDecrypt)->Arg(4 << 10)->Arg(64 << 10);

}  // namespace
