// Figure 15 — real-world trial, spatial view: average upload throughput of
// UniDrive per location, grouped by file-size class. Paper: throughputs at
// different locations are close within each size class (consistent access
// experience), larger files achieve higher throughput (>10 Mbps above
// 1 MB), small files suffer from per-request latency.
#include <map>

#include "bench_util.h"
#include "workload/trial.h"

namespace unidrive::bench {
namespace {

constexpr std::size_t kSampledEvents = 1500;

void run() {
  std::printf("=== Figure 15: trial avg upload throughput by site region "
              "and size class (Mbps) ===\n\n");
  workload::TrialConfig config;
  config.num_files = 20000;
  const workload::Trial trial = workload::generate_trial(config, 27001);

  // Sample events evenly and replay each as a UniDrive upload at its site.
  const auto& classes = workload::trial_size_classes();
  // region -> size class -> throughput summary
  std::map<std::string, std::vector<Summary>> by_region;

  const std::size_t stride = trial.events.size() / kSampledEvents;
  for (std::size_t e = 0; e < trial.events.size(); e += stride) {
    const auto& event = trial.events[e];
    const auto& site = trial.sites[event.site];

    const double mbps = replay_trial_upload(trial, e, 27100 + e);
    if (mbps < 0) continue;

    const char* region_name = [&] {
      switch (site.region) {
        case sim::Region::kUsEast:
        case sim::Region::kUsWest: return "US";
        case sim::Region::kCanada: return "Canada";
        case sim::Region::kEurope: return "Europe";
        case sim::Region::kChina: return "China";
        case sim::Region::kAsia: return "Asia";
        case sim::Region::kOceania: return "Australia";
        case sim::Region::kSouthAmerica: return "S.America";
      }
      return "?";
    }();
    auto& rows = by_region[region_name];
    if (rows.empty()) rows.resize(classes.size());
    rows[static_cast<std::size_t>(workload::size_class_of(event.bytes))].add(
        mbps);
  }

  std::printf("%-12s", "region");
  for (const auto& cls : classes) std::printf(" %12s", cls.label);
  std::printf("\n");
  print_rule(12 + 13 * classes.size());
  std::vector<Summary> per_class(classes.size());
  for (const auto& [region, rows] : by_region) {
    std::printf("%-12s", region.c_str());
    for (std::size_t cl = 0; cl < classes.size(); ++cl) {
      std::printf(" %12s", fmt(rows[cl].avg(), 2).c_str());
      if (rows[cl].count() > 0) per_class[cl].add(rows[cl].avg());
    }
    std::printf("\n");
  }

  std::printf("\nPaper-shape checks:\n");
  for (std::size_t cl = 0; cl < classes.size(); ++cl) {
    if (per_class[cl].count() < 2) continue;
    std::printf("  %-10s cross-region max/min ratio: %s "
                "(close to 1 = consistent experience)\n",
                classes[cl].label,
                fmt(per_class[cl].max() / per_class[cl].min(), 2).c_str());
  }
  std::printf("  throughput rises with size class; >1 MB classes should "
              "exceed ~10 Mbps at most sites.\n");
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
