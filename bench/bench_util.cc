#include "bench_util.h"

#include <cmath>

#include "workload/files.h"

namespace unidrive::bench {

double correlation(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0;
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sa += a[i];
    sb += b[i];
    saa += a[i] * a[i];
    sbb += b[i] * b[i];
    sab += a[i] * b[i];
  }
  const double dn = static_cast<double>(n);
  const double cov = sab / dn - (sa / dn) * (sb / dn);
  const double va = saa / dn - (sa / dn) * (sa / dn);
  const double vb = sbb / dn - (sb / dn) * (sb / dn);
  if (va <= 0 || vb <= 0) return 0;
  return cov / std::sqrt(va * vb);
}

void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

std::string fmt(double v, int decimals) {
  if (v < 0) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_signed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f", decimals, v);
  return buf;
}

UpDown unidrive_updown(sim::SimEnv& env, sim::CloudSet& set,
                       std::uint64_t bytes,
                       const UniDriveRunOptions& options) {
  UpDown result;
  const auto specs = workload::upload_specs({bytes}, options.theta, "bench");

  std::vector<cloud::CloudId> ids;
  for (const auto& c : set.clouds) ids.push_back(c->id());
  sched::UploadScheduler up_sched(options.code, ids, specs, options.upload);
  sched::ThroughputMonitor up_monitor;
  sim::RunConfig run;
  run.connections_per_cloud = options.connections_per_cloud;
  run.dynamic_polling = options.dynamic_polling;

  const double up_start = env.now();
  const auto up = run_upload_job(env, set.ptrs(), up_sched, up_monitor, run);
  if (!up.all_available) return result;
  result.up = up.available_time - up_start;

  // Download the same file from the layout the upload produced.
  std::vector<sched::DownloadFileSpec> down_specs;
  sched::DownloadFileSpec file;
  file.path = specs[0].path;
  for (const auto& seg : specs[0].segments) {
    file.segments.push_back({seg.id, seg.size, up_sched.locations(seg.id)});
  }
  down_specs.push_back(std::move(file));
  sched::DownloadScheduler down_sched(options.code.k, down_specs);
  sched::ThroughputMonitor down_monitor;
  const double down_start = env.now();
  const auto down =
      run_download_job(env, set.ptrs(), down_sched, down_monitor, run);
  if (down.all_complete) result.down = down.finish_time - down_start;
  return result;
}

UpDown native_updown(sim::SimEnv& env, sim::CloudSet& set,
                     std::size_t cloud_index, std::uint64_t bytes) {
  UpDown result;
  const auto kind = static_cast<sim::CloudKind>(cloud_index);
  result.up = baselines::native_upload_time(env, *set.clouds[cloud_index],
                                            kind, bytes);
  result.down = baselines::native_download_time(env, *set.clouds[cloud_index],
                                                kind, bytes);
  return result;
}

UpDown intuitive_updown(sim::SimEnv& env, sim::CloudSet& set,
                        std::uint64_t bytes) {
  UpDown result;
  result.up = baselines::intuitive_upload_time(env, set, bytes);
  result.down = baselines::intuitive_download_time(env, set, bytes);
  return result;
}

double measure_raw(sim::SimEnv& env, sim::SimCloud& cloud,
                   std::uint64_t bytes, bool download) {
  const double start = env.now();
  bool done = false;
  bool ok = false;
  auto cb = [&](bool success) {
    ok = success;
    done = true;
  };
  if (download) {
    cloud.download(static_cast<double>(bytes), cb);
  } else {
    cloud.upload(static_cast<double>(bytes), cb);
  }
  while (!done && env.step()) {
  }
  return ok ? env.now() - start : -1.0;
}

void advance_to(sim::SimEnv& env, double t) { env.run_until(t); }

double replay_trial_upload(const workload::Trial& trial,
                           std::size_t event_index, std::uint64_t seed,
                           const UniDriveRunOptions& options) {
  const workload::UploadEvent& event = trial.events[event_index];
  const workload::TrialSite& site = trial.sites[event.site];
  sim::LocationProfile location{site.name, site.region, 0};

  sim::SimEnv env(seed);
  sim::CloudSet set = sim::make_cloud_set(env, location, seed);
  advance_to(env, event.time);

  const UpDown r = unidrive_updown(env, set, event.bytes, options);
  if (r.up <= 0) return -1.0;
  return static_cast<double>(event.bytes) * 8 / r.up / 1e6;
}

std::size_t fastest_native_cloud(const sim::LocationProfile& location) {
  std::size_t best = 0;
  double best_rate = 0;
  for (std::size_t c = 0; c < sim::kNumClouds; ++c) {
    const double up =
        sim::link_spec(static_cast<sim::CloudKind>(c), location.region).up_bps;
    if (up > best_rate) {
      best_rate = up;
      best = c;
    }
  }
  return best;
}

}  // namespace unidrive::bench
