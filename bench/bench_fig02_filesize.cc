// Figure 2 — impact of file size on throughput (Princeton vantage point):
// average throughput for 0.5/1/2/4/8 MB transfers, per cloud, both
// directions. The paper's observation: throughput rises with file size
// (per-request latency amortizes) and the gain diminishes beyond ~4 MB.
#include "bench_util.h"

namespace unidrive::bench {
namespace {

void run() {
  std::printf("=== Figure 2: throughput vs file size, Princeton (Mbps) ===\n");
  const std::vector<std::uint64_t> sizes = {512 << 10, 1 << 20, 2 << 20,
                                            4 << 20, 8 << 20};
  const auto princeton = sim::planetlab_locations()[0];

  for (const bool download : {false, true}) {
    std::printf("\n--- %s ---\n", download ? "DOWNLOAD" : "UPLOAD");
    std::printf("%-10s", "size");
    for (std::size_t c = 0; c < sim::kNumClouds; ++c) {
      std::printf(" %12s", sim::cloud_name(static_cast<sim::CloudKind>(c)));
    }
    std::printf("\n");
    print_rule(10 + 13 * 5);

    for (const std::uint64_t bytes : sizes) {
      std::printf("%6.1f MB ", static_cast<double>(bytes) / (1 << 20));
      for (std::size_t c = 0; c < sim::kNumClouds; ++c) {
        sim::SimEnv env(20 + c);
        sim::CloudSet set = sim::make_cloud_set(env, princeton, 20 + c);
        Summary throughput;
        for (int s = 0; s < 120; ++s) {
          advance_to(env, s * 1800.0);
          const double t = measure_raw(env, *set.clouds[c], bytes, download);
          if (t > 0) {
            throughput.add(static_cast<double>(bytes) * 8 / t / 1e6);
          }
        }
        std::printf(" %12s", fmt(throughput.avg(), 2).c_str());
      }
      std::printf("\n");
    }
  }

  // Shape check: throughput at 8 MB should exceed 0.5 MB but by less than
  // the size ratio (diminishing returns past 4 MB).
  sim::SimEnv env(33);
  sim::CloudSet set = sim::make_cloud_set(env, princeton, 33,
                                          /*with_failures=*/false);
  Summary small, large;
  for (int s = 0; s < 60; ++s) {
    advance_to(env, s * 1800.0);
    const double ts = measure_raw(env, *set.clouds[0], 512 << 10, false);
    if (ts > 0) small.add(static_cast<double>(512 << 10) * 8 / ts / 1e6);
    const double tl = measure_raw(env, *set.clouds[0], 8 << 20, false);
    if (tl > 0) large.add(static_cast<double>(8 << 20) * 8 / tl / 1e6);
  }
  std::printf("\nPaper-shape check: Dropbox 8MB/0.5MB throughput ratio %s "
              "(should be > 1 but << 16)\n",
              fmt(large.avg() / small.avg(), 2).c_str());
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
