// Microbenchmarks: metadata serialization, encryption, delta replay, and
// the three-way merge — the control-plane hot paths.
#include <benchmark/benchmark.h>

#include "metadata/codec.h"
#include "metadata/delta.h"
#include "metadata/diff.h"
#include "metadata/image.h"

namespace {

using namespace unidrive;
using metadata::Change;
using metadata::SyncFolderImage;

SyncFolderImage image_with_files(std::size_t count) {
  SyncFolderImage image;
  for (std::size_t i = 0; i < count; ++i) {
    metadata::SegmentInfo seg;
    seg.id = "seg" + std::to_string(i);
    seg.size = 1 << 20;
    for (std::uint32_t b = 0; b < 5; ++b) seg.blocks.push_back({b, b});
    image.upsert_segment(seg);

    metadata::FileSnapshot snap;
    snap.path = "/dir" + std::to_string(i % 20) + "/file" + std::to_string(i);
    snap.size = 1 << 20;
    snap.content_hash = "0123456789abcdef0123456789abcdef01234567";
    snap.segment_ids = {seg.id};
    snap.origin_device = "bench";
    image.upsert_file(snap);
  }
  return image;
}

void BM_ImageSerialize(benchmark::State& state) {
  const auto image = image_with_files(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(image.serialize());
  }
  state.counters["files"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ImageSerialize)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ImageDeserialize(benchmark::State& state) {
  const auto image = image_with_files(static_cast<std::size_t>(state.range(0)));
  const Bytes data = image.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SyncFolderImage::deserialize(ByteSpan(data)));
  }
}
BENCHMARK(BM_ImageDeserialize)->Arg(1000)->Arg(10000);

void BM_ImageEncryptedRoundTrip(benchmark::State& state) {
  const metadata::MetadataCodec codec("bench");
  const auto image = image_with_files(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const Bytes cipher = codec.encode_image(image);
    benchmark::DoNotOptimize(codec.decode_image(ByteSpan(cipher)));
  }
}
BENCHMARK(BM_ImageEncryptedRoundTrip)->Arg(1000);

void BM_DeltaReplay(benchmark::State& state) {
  metadata::DeltaLog log;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    metadata::CommitRecord record;
    record.version = {"bench", i + 1, 0.0};
    metadata::FileSnapshot snap;
    snap.path = "/f" + std::to_string(i);
    snap.size = 1000;
    record.changes.push_back(Change::upsert_file(snap));
    log.append(std::move(record));
  }
  const Bytes data = log.serialize();
  for (auto _ : state) {
    auto restored = metadata::DeltaLog::deserialize(ByteSpan(data));
    SyncFolderImage image;
    metadata::apply_delta(image, restored.value());
    benchmark::DoNotOptimize(image);
  }
  state.counters["commits"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DeltaReplay)->Arg(100)->Arg(1000);

void BM_ThreeWayMerge(benchmark::State& state) {
  const auto base = image_with_files(static_cast<std::size_t>(state.range(0)));
  SyncFolderImage local = base;
  SyncFolderImage cloud = base;
  // Touch 5% of files on each side (disjoint halves).
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n / 20; ++i) {
    metadata::FileSnapshot snap = *base.find_file(
        "/dir" + std::to_string(i % 20) + "/file" + std::to_string(i));
    snap.content_hash = "local";
    local.upsert_file(snap);
    metadata::FileSnapshot snap2 = *base.find_file(
        "/dir" + std::to_string((i + n / 2) % 20) + "/file" +
        std::to_string(i + n / 2));
    snap2.content_hash = "cloud";
    cloud.upsert_file(snap2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metadata::merge_images(base, local, cloud, "bench"));
  }
}
BENCHMARK(BM_ThreeWayMerge)->Arg(1000)->Arg(5000);

}  // namespace
