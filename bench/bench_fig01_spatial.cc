// Figure 1 — spatial dimension of the measurement study: average / min /
// max time to upload and download an 8 MB file to each of the five CCSs
// from 13 geographically distributed vantage points, sampled every 30
// minutes for a (simulated) month.
#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr std::uint64_t kBytes = 8 << 20;
constexpr double kSampleInterval = 1800;
constexpr int kDays = 30;

void run() {
  std::printf("=== Figure 1: 8 MB upload/download time across locations "
              "(avg/min/max seconds, 1 month @ 30 min) ===\n");
  const auto locations = sim::planetlab_locations();

  for (const bool download : {false, true}) {
    std::printf("\n--- %s ---\n", download ? "DOWNLOAD" : "UPLOAD");
    std::printf("%-12s", "location");
    for (std::size_t c = 0; c < sim::kNumClouds; ++c) {
      std::printf(" %22s", sim::cloud_name(static_cast<sim::CloudKind>(c)));
    }
    std::printf("\n");
    print_rule(12 + 23 * 5);

    for (std::size_t li = 0; li < locations.size(); ++li) {
      sim::SimEnv env(1000 + li);
      sim::CloudSet set = sim::make_cloud_set(env, locations[li], 1000 + li);
      std::vector<Summary> stats(sim::kNumClouds);

      const int samples = kDays * 86400 / static_cast<int>(kSampleInterval);
      for (int s = 0; s < samples; ++s) {
        advance_to(env, s * kSampleInterval);
        // Back-to-back measurements per cloud, like the measurement client.
        for (std::size_t c = 0; c < sim::kNumClouds; ++c) {
          stats[c].add(measure_raw(env, *set.clouds[c], kBytes, download));
        }
      }

      std::printf("%-12s", locations[li].name.c_str());
      for (std::size_t c = 0; c < sim::kNumClouds; ++c) {
        std::printf(" %6s/%6s/%8s", fmt(stats[c].avg()).c_str(),
                    fmt(stats[c].min()).c_str(), fmt(stats[c].max()).c_str());
      }
      std::printf("\n");
    }
  }

  // Headline checks from the paper's text.
  std::printf("\nPaper-shape checks:\n");
  {
    // Dropbox upload: Los Angeles vs Princeton ~2.76x.
    Summary princeton, la;
    for (const auto& [idx, out] :
         std::vector<std::pair<std::size_t, Summary*>>{{0, &princeton},
                                                       {1, &la}}) {
      sim::SimEnv env(7 + idx);
      sim::CloudSet set =
          sim::make_cloud_set(env, sim::planetlab_locations()[idx], 7 + idx);
      for (int s = 0; s < 200; ++s) {
        advance_to(env, s * kSampleInterval);
        out->add(measure_raw(env, *set.clouds[0], kBytes, false));
      }
    }
    std::printf("  Dropbox 8MB upload LosAngeles/Princeton ratio: %s "
                "(paper: ~2.76x)\n",
                fmt(la.avg() / princeton.avg(), 2).c_str());
  }
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
