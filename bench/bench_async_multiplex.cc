// bench_async_multiplex — the async completion layer's core claim: a fixed
// small thread pool multiplexes many more in-flight RPCs than it has
// threads, because requests park on the timer wheel / completion chain
// instead of pinning an executor thread for the round trip.
//
// Setup: 8 simulated high-latency clouds (LatentCloud, 40 ms per request,
// unlimited bandwidth — latency-bound on purpose), 16 files x 64 KiB at
// theta = 64 KiB, connections_per_cloud = 4. For each pool width in the
// UNIDRIVE_PIPELINE_THREADS sweep {1, 2, 4} the same sync round runs twice:
// blocking (one thread per RPC, pipeline.async_transfers = false) and
// async (completion-based, the default). Per round we record wall-clock
// time and the driver's peak in-flight RPC gauge.
//
// Emits BENCH_async.json (CI artifact). Hard gates, both on the 2-thread
// row: peak in-flight async RPCs must be >= 4x the pool width (the
// multiplexing claim), and the async round must be no slower than 1.10x
// the blocking round (in practice it is several times faster — the
// blocking path serializes 40 ms round trips over 2 threads).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cloud/latent_cloud.h"
#include "cloud/memory_cloud.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/local_fs.h"

namespace unidrive::bench {
namespace {

constexpr int kClouds = 8;
constexpr int kFiles = 16;
constexpr std::size_t kFileBytes = 64 << 10;
constexpr std::size_t kTheta = 64 << 10;
constexpr double kLatencySec = 0.040;
constexpr std::size_t kConnectionsPerCloud = 4;

struct RoundResult {
  double seconds = 0;
  std::size_t segments = 0;
  double rpcs_inflight_peak = 0;
};

RoundResult run_round(std::size_t threads, bool async) {
  // The sweep drives the real knob: the environment variable overrides
  // every configured pool width.
  setenv("UNIDRIVE_PIPELINE_THREADS", std::to_string(threads).c_str(), 1);

  cloud::MultiCloud clouds;
  for (int i = 0; i < kClouds; ++i) {
    cloud::LinkProfile link;
    link.request_latency_sec = kLatencySec;
    clouds.push_back(std::make_shared<cloud::LatentCloud>(
        std::make_shared<cloud::MemoryCloud>(static_cast<cloud::CloudId>(i),
                                             "cloud" + std::to_string(i)),
        link));
  }

  auto fs = std::make_shared<core::MemoryLocalFs>();
  core::ClientConfig cfg;
  cfg.device = "bench";
  cfg.theta = kTheta;
  cfg.driver.connections_per_cloud = kConnectionsPerCloud;
  cfg.pipeline.async_transfers = async;
  core::UniDriveClient client(clouds, fs, cfg);

  Rng rng(7);
  for (int i = 0; i < kFiles; ++i) {
    const std::string path =
        "/data/file" + std::to_string(i / 10) + std::to_string(i % 10);
    if (!fs->write(path, ByteSpan(rng.bytes(kFileBytes))).is_ok()) {
      std::fprintf(stderr, "local write failed\n");
      std::exit(2);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const auto report = client.sync();
  const auto stop = std::chrono::steady_clock::now();
  unsetenv("UNIDRIVE_PIPELINE_THREADS");
  if (!report.is_ok() || !report.value().committed) {
    std::fprintf(stderr, "sync round failed: %s\n",
                 report.status().to_string().c_str());
    std::exit(2);
  }

  RoundResult out;
  out.seconds = std::chrono::duration<double>(stop - start).count();
  out.segments = report.value().segments_uploaded;
  out.rpcs_inflight_peak =
      report.value().metrics.gauge_value("driver.up.rpcs_inflight_peak");
  return out;
}

int run() {
  std::printf(
      "bench_async_multiplex: %d clouds @ %.0f ms latency, %d files x "
      "%zu KiB, %zu connections/cloud\n",
      kClouds, kLatencySec * 1e3, kFiles, kFileBytes >> 10,
      kConnectionsPerCloud);
  std::printf("  %-8s %-10s %10s %16s\n", "threads", "mode", "time (s)",
              "peak inflight");

  const std::vector<std::size_t> sweep = {1, 2, 4};
  std::vector<RoundResult> blocking(sweep.size());
  std::vector<RoundResult> async_r(sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    blocking[i] = run_round(sweep[i], /*async=*/false);
    std::printf("  %-8zu %-10s %10.3f %16.0f\n", sweep[i], "blocking",
                blocking[i].seconds, blocking[i].rpcs_inflight_peak);
    async_r[i] = run_round(sweep[i], /*async=*/true);
    std::printf("  %-8zu %-10s %10.3f %16.0f\n", sweep[i], "async",
                async_r[i].seconds, async_r[i].rpcs_inflight_peak);
  }

  FILE* json = std::fopen("BENCH_async.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"clouds\": %d,\n"
                 "  \"latency_ms\": %.0f,\n"
                 "  \"files\": %d,\n"
                 "  \"file_bytes\": %zu,\n"
                 "  \"connections_per_cloud\": %zu,\n"
                 "  \"sweep\": [\n",
                 kClouds, kLatencySec * 1e3, kFiles, kFileBytes,
                 kConnectionsPerCloud);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      std::fprintf(json,
                   "    {\"threads\": %zu, \"blocking_s\": %.4f, "
                   "\"async_s\": %.4f, \"blocking_inflight_peak\": %.0f, "
                   "\"async_inflight_peak\": %.0f, \"speedup\": %.3f}%s\n",
                   sweep[i], blocking[i].seconds, async_r[i].seconds,
                   blocking[i].rpcs_inflight_peak,
                   async_r[i].rpcs_inflight_peak,
                   async_r[i].seconds > 0
                       ? blocking[i].seconds / async_r[i].seconds
                       : 0.0,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
  }

  // Hard gates on the 2-thread row (sweep index 1).
  const std::size_t threads = sweep[1];
  const RoundResult& a2 = async_r[1];
  const RoundResult& b2 = blocking[1];
  int failures = 0;
  if (a2.rpcs_inflight_peak < 4.0 * static_cast<double>(threads)) {
    std::fprintf(stderr,
                 "FAIL: async peak in-flight RPCs %.0f < 4x pool width %zu — "
                 "the completion layer is not multiplexing\n",
                 a2.rpcs_inflight_peak, threads);
    ++failures;
  }
  if (a2.seconds > b2.seconds * 1.10) {
    std::fprintf(stderr,
                 "FAIL: async round %.3fs slower than blocking %.3fs x1.10\n",
                 a2.seconds, b2.seconds);
    ++failures;
  }
  if (failures == 0) {
    std::printf(
        "  gates: async peak inflight %.0f >= %zu (4x threads), "
        "async %.3fs <= blocking %.3fs (%.1fx faster)\n",
        a2.rpcs_inflight_peak, 4 * threads, a2.seconds, b2.seconds,
        a2.seconds > 0 ? b2.seconds / a2.seconds : 0.0);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace unidrive::bench

int main() { return unidrive::bench::run(); }
