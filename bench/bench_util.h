// Shared helpers for the figure/table reproduction benches: summary
// statistics, table printing, and one-shot transfer measurements for every
// approach (UniDrive, the multi-cloud benchmark, the intuitive multi-cloud,
// and the native per-cloud apps), all in virtual time.
#pragma once

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "baselines/e2e_baselines.h"
#include "baselines/intuitive.h"
#include "baselines/native_app.h"
#include "sched/plan.h"
#include "sim/e2e.h"
#include "sim/profiles.h"
#include "sim/transfer_run.h"
#include "workload/trial.h"

namespace unidrive::bench {

// --- statistics ---------------------------------------------------------------

class Summary {
 public:
  void add(double v) {
    if (v < 0) return;  // failed measurements are skipped, like the paper
    sum_ += v;
    sq_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    ++n_;
  }
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double avg() const noexcept { return n_ ? sum_ / n_ : -1; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : -1; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : -1; }
  [[nodiscard]] double variance() const noexcept {
    if (n_ < 2) return 0;
    const double mean = avg();
    return sq_ / n_ - mean * mean;
  }

 private:
  double sum_ = 0;
  double sq_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = 0;
  std::size_t n_ = 0;
};

// Pearson correlation of two equal-length series.
double correlation(const std::vector<double>& a, const std::vector<double>& b);

// --- formatting ---------------------------------------------------------------

void print_rule(int width = 96);
// Formats a non-negative quantity; negative means "measurement failed".
std::string fmt(double v, int decimals = 1);
// Formats any value (correlations etc. may legitimately be negative).
std::string fmt_signed(double v, int decimals = 2);

// --- single-transfer measurements (virtual time) -------------------------------
//
// Every function measures one operation starting at the environment's
// current virtual time and returns the duration in seconds (negative on
// failure). `theta` is the segment size (paper: 4 MB).

struct UpDown {
  double up = -1;
  double down = -1;
};

struct UniDriveRunOptions {
  sched::CodeParams code;                // paper defaults
  sched::UploadOptions upload{};         // both true = UniDrive
  bool dynamic_polling = true;
  std::uint64_t theta = 4 << 20;
  std::size_t connections_per_cloud = 5;
};

// Uploads `bytes` then downloads it again (download uses the block layout
// the upload actually produced, including over-provisioned blocks).
UpDown unidrive_updown(sim::SimEnv& env, sim::CloudSet& set,
                       std::uint64_t bytes, const UniDriveRunOptions& options);

inline UniDriveRunOptions benchmark_options() {
  UniDriveRunOptions options;
  options.upload.overprovision = false;
  options.upload.availability_first = false;
  options.dynamic_polling = false;
  return options;
}

UpDown native_updown(sim::SimEnv& env, sim::CloudSet& set,
                     std::size_t cloud_index, std::uint64_t bytes);

UpDown intuitive_updown(sim::SimEnv& env, sim::CloudSet& set,
                        std::uint64_t bytes);

// Fastest native cloud at this location for the given direction, by the
// static profile (used for "best CCS at each location" speedups).
std::size_t fastest_native_cloud(const sim::LocationProfile& location);

// --- trial replay (Figures 15/16) ----------------------------------------
//
// Replays one trial upload event as a UniDrive upload at its originating
// site, in a fresh virtual-time environment seeded with `seed` and advanced
// to the event's timestamp. Returns the achieved upload throughput in Mbps,
// or a negative value if the transfer failed.
double replay_trial_upload(const workload::Trial& trial,
                           std::size_t event_index, std::uint64_t seed,
                           const UniDriveRunOptions& options = {});

// Raw Web-API request measurement (the Section 3.2 measurement client):
// one upload or download of `bytes` to one cloud, starting now. Returns the
// duration, or a negative value if the request failed.
double measure_raw(sim::SimEnv& env, sim::SimCloud& cloud,
                   std::uint64_t bytes, bool download);

// Advance virtual time to `t` (processing any due events).
void advance_to(sim::SimEnv& env, double t);

}  // namespace unidrive::bench
