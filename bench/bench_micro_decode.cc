// Microbenchmarks for the restore pipeline's decode stage: serial
// RsCode::decode vs the row-parallel decode_shards_parallel, and the
// verified k-subset search that heals a corrupt shard.
#include <benchmark/benchmark.h>

#include "common/executor.h"
#include "common/rng.h"
#include "core/download_pipeline.h"
#include "crypto/sha1.h"
#include "erasure/rs.h"

namespace {

using namespace unidrive;
using erasure::RsCode;

void BM_RsDecodeSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const RsCode code(n, k);
  Rng rng(11);
  const Bytes segment = rng.bytes(4 << 20);
  const auto all = code.encode(ByteSpan(segment));
  // Decode from the "worst" subset (all parity, no low indices).
  const std::vector<erasure::Shard> subset(all.end() - k, all.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(subset, segment.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_RsDecodeSerial)->Args({10, 3})->Args({14, 10})->Args({20, 4});

void BM_RsDecodeParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  const RsCode code(n, k);
  Executor executor(threads);
  Rng rng(11);
  const Bytes segment = rng.bytes(4 << 20);
  const auto all = code.encode(ByteSpan(segment));
  const std::vector<erasure::Shard> subset(all.end() - k, all.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        code.decode_shards_parallel(subset, segment.size(), executor));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_RsDecodeParallel)
    ->Args({10, 3, 1})
    ->Args({10, 3, 4})
    ->Args({14, 10, 4})
    ->Args({20, 4, 4});

// The corrupt-shard search: k+1 shards, one silently corrupted, so the
// verified decode must try subsets until a clean one hashes correctly.
void BM_DecodeVerifiedCorruptSearch(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 3;
  const RsCode code(10, k);
  Executor executor(threads == 0 ? 1 : threads);
  Rng rng(12);
  const Bytes segment = rng.bytes(1 << 20);
  metadata::SegmentInfo info;
  info.id = crypto::Sha1::hex(ByteSpan(segment));
  info.size = segment.size();
  std::vector<erasure::Shard> shards =
      code.encode_shards(ByteSpan(segment), {0, 1, 2, 3});
  shards[0].data[99] ^= 0xA5;  // first subset tried is dirty
  Executor* exec = threads == 0 ? nullptr : &executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::decode_verified(code, shards, info, k, exec));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_DecodeVerifiedCorruptSearch)->Arg(0)->Arg(4);

}  // namespace
