// Ablation: the Delta-sync merge threshold lambda (Section 5.2). The delta
// log is folded into a new base when its size exceeds
// max(merge_ratio * base, merge_floor). Small thresholds re-upload the base
// constantly (no savings); huge thresholds make every reader replay a long
// log and the delta itself grows past the base. The paper's
// lambda = max(0.25 * base, 10 KB) sits at the flat bottom.
#include "bench_util.h"
#include "metadata/codec.h"
#include "metadata/delta.h"

namespace unidrive::bench {
namespace {

constexpr std::size_t kNumFiles = 512;
constexpr std::uint64_t kFileSize = 100 << 10;

struct Outcome {
  double avg_traffic = 0;   // bytes uploaded per sync (to ONE cloud)
  double avg_replay = 0;    // delta records a fresh reader must replay
  std::size_t folds = 0;
};

Outcome run_policy(const metadata::DeltaPolicy& policy) {
  const metadata::MetadataCodec codec("bench");
  metadata::SyncFolderImage image;
  metadata::DeltaLog delta;
  Outcome out;
  double base_size = 0;
  double total_traffic = 0;
  double total_replay = 0;

  for (std::size_t i = 0; i < kNumFiles; ++i) {
    metadata::CommitRecord record;
    record.version = {"dev", i + 1, static_cast<double>(i)};
    metadata::SegmentInfo seg;
    seg.id = "seg" + std::to_string(i);
    seg.size = kFileSize;
    for (std::uint32_t b = 0; b < 5; ++b) seg.blocks.push_back({b, b % 5});
    record.changes.push_back(metadata::Change::upsert_segment(seg));
    metadata::FileSnapshot snap;
    snap.path = "/f" + std::to_string(i);
    snap.size = kFileSize;
    snap.content_hash = "h" + std::to_string(i);
    snap.segment_ids = {seg.id};
    record.changes.push_back(metadata::Change::upsert_file(snap));

    for (const auto& change : record.changes) {
      metadata::apply_change(image, change);
    }
    image.set_version(record.version);
    delta.append(record);

    const double delta_bytes =
        static_cast<double>(codec.encode_delta(delta).size());
    if (policy.should_merge(static_cast<std::size_t>(base_size),
                            static_cast<std::size_t>(delta_bytes)) ||
        base_size == 0) {
      base_size = static_cast<double>(codec.encode_image(image).size());
      total_traffic += base_size;
      delta.clear();
      ++out.folds;
    } else {
      total_traffic += delta_bytes;
    }
    total_replay += static_cast<double>(delta.size());
  }
  out.avg_traffic = total_traffic / kNumFiles;
  out.avg_replay = total_replay / kNumFiles;
  return out;
}

void run() {
  std::printf("=== Ablation: Delta-sync merge threshold lambda "
              "(%zu sequential syncs) ===\n\n", kNumFiles);
  std::printf("%-26s %16s %14s %8s\n", "policy",
              "avg KB/sync/cloud", "avg replay len", "folds");
  print_rule(68);

  struct Case {
    const char* name;
    double ratio;
    std::size_t floor;
  };
  const Case cases[] = {
      {"fold always (no delta)", 0.0, 0},
      {"ratio 0.05, floor 1KB", 0.05, 1 << 10},
      {"ratio 0.25, floor 10KB*", 0.25, 10 << 10},  // the paper's default
      {"ratio 1.0, floor 10KB", 1.0, 10 << 10},
      {"ratio 4.0, floor 64KB", 4.0, 64 << 10},
      {"never fold", 1e9, std::size_t(1) << 40},
  };
  for (const Case& c : cases) {
    metadata::DeltaPolicy policy;
    policy.merge_ratio = c.ratio;
    policy.merge_floor = c.floor;
    const Outcome out = run_policy(policy);
    std::printf("%-26s %16.1f %14.1f %8zu\n", c.name,
                out.avg_traffic / 1024.0, out.avg_replay, out.folds);
  }
  std::printf("\n(*) the paper's default. Left column is upload traffic per\n"
              "sync; replay length is what a catching-up device processes.\n"
              "Aggressive folding wastes upload; never folding bloats both\n"
              "the per-sync delta and reader replay.\n");
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
