// Ablation: which of UniDrive's scheduling ingredients buys what?
//
// Sweeps the three mechanisms independently on the same simulated networks:
//   OP  = data-block over-provisioning (extra parity to fast clouds)
//   DYN = dynamic scheduling (fastest-first polling + straggler hedging)
//   AF  = availability-first two-phase batch ordering
// "none of the three" is exactly the paper's multi-cloud benchmark; "all
// three" is UniDrive. Metrics: single 32 MB upload availability time and
// download time (Virginia), and 50 x 1 MB end-to-end batch sync time
// (Oregon -> Virginia).
#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr std::uint64_t kBytes = 32 << 20;
constexpr int kReps = 10;

struct Config {
  const char* name;
  bool overprovision;
  bool dynamic;
  bool availability_first;
};

const Config kConfigs[] = {
    {"none (benchmark)", false, false, false},
    {"+OP only", true, false, false},
    {"+DYN only", false, true, false},
    {"+AF only", false, false, true},
    {"+OP +DYN", true, true, false},
    {"all (UniDrive)", true, true, true},
};

void run() {
  std::printf("=== Ablation: over-provisioning / dynamic scheduling / "
              "availability-first ===\n\n");
  const auto virginia = sim::ec2_locations()[0];
  const auto oregon = sim::ec2_locations()[1];

  std::printf("%-18s %14s %14s %16s\n", "configuration", "32MB up (s)",
              "32MB down (s)", "batch sync (s)");
  print_rule(66);

  for (const Config& config : kConfigs) {
    Summary up, down, batch;
    for (int rep = 0; rep < kReps; ++rep) {
      const std::uint64_t seed = 31000 + rep;
      {
        sim::SimEnv env(seed);
        sim::CloudSet set = sim::make_cloud_set(env, virginia, seed);
        UniDriveRunOptions options;
        options.upload.overprovision = config.overprovision;
        options.upload.availability_first = config.availability_first;
        options.dynamic_polling = config.dynamic;
        const UpDown r = unidrive_updown(env, set, kBytes, options);
        up.add(r.up);
        down.add(r.down);
      }
      if (rep < 3) {  // the e2e runs are heavier; fewer reps suffice
        sim::SimEnv env(seed);
        sim::CloudSet up_set = sim::make_cloud_set(env, oregon, seed);
        sim::CloudSet down_set = sim::make_cloud_set(env, virginia, seed + 1);
        sim::E2EConfig e2e;
        e2e.num_files = 50;
        e2e.file_size = 1 << 20;
        e2e.upload_options.overprovision = config.overprovision;
        e2e.upload_options.availability_first = config.availability_first;
        e2e.run.dynamic_polling = config.dynamic;
        const auto result = sim::run_unidrive_e2e(env, up_set, {&down_set}, e2e);
        batch.add(result.batch_sync_time);
      }
    }
    std::printf("%-18s %14s %14s %16s\n", config.name,
                fmt(up.avg()).c_str(), fmt(down.avg()).c_str(),
                fmt(batch.avg(), 0).c_str());
  }

  std::printf("\nReading: OP accelerates uploads (fast clouds absorb surplus "
              "parity); DYN dominates downloads (fastest-first routing + "
              "straggler hedging); AF reorders batches for early "
              "availability. The knobs interact: AF publishes leaner block "
              "maps at commit time, which only DYN-enabled downloaders "
              "exploit well — neither mechanism is a free win alone, which "
              "is the paper's point in shipping them as a suite.\n");
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
