// Figure 13 — effectiveness of Delta-sync: sync 1024 x 100 KB files one
// after another and compare the gross metadata size (what a naive design
// would re-upload per sync) against the actual Delta-sync traffic (delta
// log appends, with the base re-uploaded only when the delta outgrows
// lambda). Paper: average metadata per sync drops 74.7 KB -> 5.7 KB, a
// 13.1x reduction, with sparse peaks at base folds.
//
// This bench uses the REAL metadata structures (SyncFolderImage, DeltaLog,
// MetadataCodec) — no simulation.
#include "bench_util.h"
#include "metadata/codec.h"
#include "metadata/delta.h"

namespace unidrive::bench {
namespace {

constexpr std::size_t kNumFiles = 1024;
constexpr std::uint64_t kFileSize = 100 << 10;

metadata::FileSnapshot snapshot_for(std::size_t i) {
  metadata::FileSnapshot snap;
  snap.path = "/trial/file" + std::to_string(i);
  snap.size = kFileSize;
  snap.mtime = static_cast<double>(i) * 60;
  snap.content_hash = "hash" + std::to_string(i);
  snap.segment_ids = {"seg" + std::to_string(i)};
  snap.origin_device = "oregon-node";
  return snap;
}

metadata::SegmentInfo segment_for(std::size_t i) {
  metadata::SegmentInfo seg;
  seg.id = "seg" + std::to_string(i);
  seg.size = kFileSize;
  for (std::uint32_t b = 0; b < 5; ++b) {
    seg.blocks.push_back({b, b % 5});
  }
  return seg;
}

void run() {
  std::printf("=== Figure 13: Delta-sync metadata traffic, "
              "1024 x 100 KB sequential syncs ===\n\n");
  const metadata::MetadataCodec codec("bench-passphrase");
  metadata::SyncFolderImage image;
  metadata::DeltaLog delta;
  metadata::DeltaPolicy policy;  // lambda = max(0.25 * base, 10 KB)

  double gross_total = 0;     // naive: full metadata re-upload per sync
  double delta_total = 0;     // Delta-sync: delta (or folded base) per sync
  std::size_t folds = 0;
  double base_size = 0;       // current encrypted base size
  Summary gross_per_sync, delta_per_sync;
  double peak_traffic = 0;

  for (std::size_t i = 0; i < kNumFiles; ++i) {
    // Apply the i-th file's commit.
    metadata::CommitRecord record;
    record.version = {"oregon-node", i + 1, static_cast<double>(i) * 60};
    record.changes.push_back(
        metadata::Change::upsert_segment(segment_for(i)));
    record.changes.push_back(
        metadata::Change::upsert_file(snapshot_for(i)));
    for (const auto& change : record.changes) {
      metadata::apply_change(image, change);
    }
    image.set_version(record.version);
    delta.append(record);

    const double gross =
        static_cast<double>(codec.encode_image(image).size());
    const double delta_bytes =
        static_cast<double>(codec.encode_delta(delta).size());

    double traffic;
    if (policy.should_merge(static_cast<std::size_t>(base_size),
                            static_cast<std::size_t>(delta_bytes)) ||
        base_size == 0) {
      // Fold: upload the new base, clear the delta (the sparse peaks).
      traffic = gross;
      base_size = gross;
      delta.clear();
      ++folds;
    } else {
      traffic = delta_bytes;
    }
    gross_total += gross;
    delta_total += traffic;
    gross_per_sync.add(gross);
    delta_per_sync.add(traffic);
    peak_traffic = std::max(peak_traffic, traffic);

    if ((i + 1) % 128 == 0) {
      std::printf("after %4zu files: metadata size %7.1f KB, "
                  "this sync's traffic %7.1f KB\n",
                  i + 1, gross / 1024.0, traffic / 1024.0);
    }
  }

  std::printf("\n%-34s %14s\n", "metric", "value");
  print_rule(50);
  std::printf("%-34s %11.1f KB\n", "avg gross metadata per sync",
              gross_per_sync.avg() / 1024.0);
  std::printf("%-34s %11.1f KB\n", "avg Delta-sync traffic per sync",
              delta_per_sync.avg() / 1024.0);
  std::printf("%-34s %13.1fx\n", "reduction factor",
              gross_per_sync.avg() / delta_per_sync.avg());
  std::printf("%-34s %14zu\n", "base folds (sparse peaks)", folds);
  std::printf("%-34s %11.1f KB\n", "largest single sync (peak)",
              peak_traffic / 1024.0);
  std::printf("\nPaper: 74.7 KB -> 5.7 KB per sync, 13.1x reduction, with "
              "sparse peaks at base folds.\n");
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
