// Microbenchmarks: quorum-lock acquisition cost in Web API round trips —
// the latency-free in-memory clouds expose the pure protocol cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "cloud/memory_cloud.h"
#include "cloud/stats_cloud.h"
#include "common/clock.h"
#include "lock/quorum_lock.h"

namespace {

using namespace unidrive;

cloud::MultiCloud make_clouds(int n) {
  cloud::MultiCloud clouds;
  for (int i = 0; i < n; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "c" + std::to_string(i)));
  }
  return clouds;
}

void BM_LockAcquireRelease(benchmark::State& state) {
  auto clouds = make_clouds(static_cast<int>(state.range(0)));
  ManualClock clock;
  lock::LockConfig config;
  lock::QuorumLock lock(clouds, "bench", config, clock, Rng(1),
                        [&clock](Duration d) { clock.advance(d); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.acquire());
    lock.release();
  }
}
BENCHMARK(BM_LockAcquireRelease)->Arg(3)->Arg(5)->Arg(9);

void BM_LockApiRequestCount(benchmark::State& state) {
  // Counts the Web API calls of one uncontended acquire+release cycle.
  auto raw = make_clouds(5);
  cloud::MultiCloud clouds;
  std::vector<std::shared_ptr<cloud::StatsCloud>> stats;
  for (const auto& c : raw) {
    auto s = std::make_shared<cloud::StatsCloud>(c);
    stats.push_back(s);
    clouds.push_back(s);
  }
  ManualClock clock;
  lock::QuorumLock lock(clouds, "bench", lock::LockConfig{}, clock, Rng(1),
                        [&clock](Duration d) { clock.advance(d); });
  std::uint64_t requests = 0;
  for (auto _ : state) {
    for (const auto& s : stats) s->reset_stats();
    benchmark::DoNotOptimize(lock.acquire());
    lock.release();
    for (const auto& s : stats) requests += s->stats().requests;
  }
  state.counters["api_calls_per_cycle"] = static_cast<double>(requests) /
                                          static_cast<double>(state.iterations());
}
BENCHMARK(BM_LockApiRequestCount);

void BM_LockRefresh(benchmark::State& state) {
  auto clouds = make_clouds(5);
  ManualClock clock;
  lock::QuorumLock lock(clouds, "bench", lock::LockConfig{}, clock, Rng(1),
                        [&clock](Duration d) { clock.advance(d); });
  benchmark::DoNotOptimize(lock.acquire());
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.refresh());
  }
  lock.release();
}
BENCHMARK(BM_LockRefresh);

}  // namespace
