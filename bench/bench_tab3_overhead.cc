// Table 3 — overall sync overhead: additional network traffic divided by
// the actually synced data, for every approach, measured on the 100 x 1 MB
// batch-sync workload. Paper: native apps 0.70%-7.07%; intuitive 14.93%
// (every file involves all five CCSs); benchmark 1.01%; UniDrive 1.04%
// (Delta-sync + tiny version file keep five-cloud metadata cheap).
#include "bench_util.h"

namespace unidrive::bench {
namespace {

constexpr std::size_t kNumFiles = 100;
constexpr std::uint64_t kFileSize = 1 << 20;
constexpr double kPerRequestOverhead = 820;  // HTTP headers per API call

void run() {
  std::printf("=== Table 3: overall sync overhead "
              "(extra traffic / synced data, 100 x 1 MB batch) ===\n\n");
  const auto oregon = sim::ec2_locations()[1];
  const auto virginia = sim::ec2_locations()[0];
  const double payload = static_cast<double>(kNumFiles) * kFileSize;

  std::printf("%-14s %12s %14s\n", "approach", "overhead %", "paper %");
  print_rule(44);

  // Native apps: measured from the model (fixed per-file + proportional).
  const double paper_native[5] = {7.07, 2.04, 1.89, 0.70, 0.96};
  for (std::size_t c = 0; c < sim::kNumClouds; ++c) {
    const auto spec = native_app_spec(static_cast<sim::CloudKind>(c));
    const double overhead =
        100.0 * spec.overhead_fraction(static_cast<double>(kFileSize));
    std::printf("%-14s %11s%% %13.2f%%\n",
                sim::cloud_name(static_cast<sim::CloudKind>(c)),
                fmt(overhead, 2).c_str(), paper_native[c]);
  }

  // Intuitive: every file pays all five apps' fixed costs on 1/5 payloads.
  {
    double extra = 0;
    for (std::size_t c = 0; c < sim::kNumClouds; ++c) {
      const auto spec = native_app_spec(static_cast<sim::CloudKind>(c));
      extra += spec.per_file_fixed_bytes +
               spec.protocol_overhead * kFileSize / sim::kNumClouds;
    }
    std::printf("%-14s %11s%% %13.2f%%\n", "Intuitive",
                fmt(100.0 * extra / kFileSize, 2).c_str(), 14.93);
  }

  // UniDrive and the benchmark: measured from the end-to-end simulation
  // (metadata replication + per-request HTTP overhead; parity redundancy is
  // storage, not sync overhead, matching the paper's accounting).
  for (const bool is_unidrive : {false, true}) {
    sim::SimEnv env(23001);
    sim::CloudSet up = sim::make_cloud_set(env, oregon, 23001);
    sim::CloudSet down = sim::make_cloud_set(env, virginia, 23002);
    sim::E2EConfig config;
    config.num_files = kNumFiles;
    config.file_size = kFileSize;
    if (!is_unidrive) {
      config.upload_options.overprovision = false;
      config.upload_options.availability_first = false;
      config.run.dynamic_polling = false;
      // The benchmark has no Delta-sync: it re-replicates the whole
      // (growing) metadata file on every commit. Model via a fatter
      // per-file metadata record.
      config.metadata_bytes_per_file = 180 * 4;
    }
    const auto result = sim::run_unidrive_e2e(env, up, {&down}, config);
    const double extra =
        result.metadata_bytes +
        static_cast<double>(result.api_requests) * kPerRequestOverhead;
    std::printf("%-14s %11s%% %13.2f%%\n",
                is_unidrive ? "UniDrive" : "Benchmark",
                fmt(100.0 * extra / payload, 2).c_str(),
                is_unidrive ? 1.04 : 1.01);
  }

  std::printf("\nPaper shape: intuitive worst by far; UniDrive ~1%% despite "
              "involving all 5 clouds.\n");
}

}  // namespace
}  // namespace unidrive::bench

int main() {
  unidrive::bench::run();
  return 0;
}
