// Microbenchmarks: Reed-Solomon coding throughput for UniDrive's default
// (10, 3) code and some alternatives, plus the GF(256) slice kernel.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "erasure/gf256.h"
#include "erasure/rs.h"

namespace {

using namespace unidrive;
using erasure::RsCode;
using erasure::RsVariant;

void BM_GfMulAddSlice(benchmark::State& state) {
  Rng rng(1);
  const Bytes src = rng.bytes(static_cast<std::size_t>(state.range(0)));
  Bytes dst = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    erasure::Gf256::mul_add_slice(dst.data(), src.data(), src.size(), 0x57);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GfMulAddSlice)->Arg(64 << 10)->Arg(1 << 20);

void BM_RsEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const RsCode code(n, k, RsVariant::kNonSystematic);
  Rng rng(2);
  const Bytes segment = rng.bytes(4 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(ByteSpan(segment)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_RsEncode)->Args({10, 3})->Args({14, 10})->Args({20, 4});

void BM_RsEncodeSingleShard(benchmark::State& state) {
  // On-demand generation of one over-provisioned parity block.
  const RsCode code(10, 3);
  Rng rng(3);
  const Bytes segment = rng.bytes(4 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode_shards(ByteSpan(segment), {7}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_RsEncodeSingleShard);

void BM_RsDecode(benchmark::State& state) {
  const RsCode code(10, 3);
  Rng rng(4);
  const Bytes segment = rng.bytes(4 << 20);
  auto shards = code.encode(ByteSpan(segment));
  // Decode from the "worst" subset (all parity, no low indices).
  const std::vector<erasure::Shard> subset = {shards[7], shards[8], shards[9]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(subset, segment.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_RsDecode);

void BM_RsSystematicVsNot(benchmark::State& state) {
  const bool systematic = state.range(0) != 0;
  const RsCode code(10, 3, systematic ? RsVariant::kSystematic
                                      : RsVariant::kNonSystematic);
  Rng rng(5);
  const Bytes segment = rng.bytes(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(ByteSpan(segment)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_RsSystematicVsNot)->Arg(0)->Arg(1);

}  // namespace
