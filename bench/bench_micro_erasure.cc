// Microbenchmarks: Reed-Solomon coding throughput for UniDrive's default
// (10, 3) code and some alternatives, plus the GF(256) slice kernel.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "erasure/gf256.h"
#include "erasure/rs.h"

namespace {

using namespace unidrive;
using erasure::RsCode;
using erasure::RsVariant;

void BM_GfMulAddSlice(benchmark::State& state) {
  Rng rng(1);
  const Bytes src = rng.bytes(static_cast<std::size_t>(state.range(0)));
  Bytes dst = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    erasure::Gf256::mul_add_slice(dst.data(), src.data(), src.size(), 0x57);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GfMulAddSlice)->Arg(64 << 10)->Arg(1 << 20);

// Reference scalar kernel (byte-at-a-time read-modify-write of dst) so the
// blocked 8-byte production kernel above has an in-tree baseline.
void bytewise_mul_add(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n, std::uint8_t coeff) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] ^= erasure::Gf256::mul(coeff, src[i]);
  }
}

void BM_GfMulAddSliceBytewise(benchmark::State& state) {
  Rng rng(1);
  const Bytes src = rng.bytes(static_cast<std::size_t>(state.range(0)));
  Bytes dst = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bytewise_mul_add(dst.data(), src.data(), src.size(), 0x57);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GfMulAddSliceBytewise)->Arg(64 << 10)->Arg(1 << 20);

void BM_GfMulAddSliceScalar(benchmark::State& state) {
  Rng rng(1);
  const Bytes src = rng.bytes(static_cast<std::size_t>(state.range(0)));
  Bytes dst = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    erasure::Gf256::mul_add_slice_scalar(dst.data(), src.data(), src.size(),
                                         0x57);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GfMulAddSliceScalar)->Arg(64 << 10)->Arg(1 << 20);

// The fused encode kernel: one dst pass over k source rows, as rs.cc uses it.
void BM_GfDotSlice(benchmark::State& state) {
  Rng rng(2);
  constexpr std::size_t kRows = 3;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Bytes> srcs(kRows);
  std::vector<const std::uint8_t*> ptrs(kRows);
  std::uint8_t coeffs[kRows] = {0x57, 0x13, 0xC9};
  for (std::size_t r = 0; r < kRows; ++r) {
    srcs[r] = rng.bytes(n);
    ptrs[r] = srcs[r].data();
  }
  Bytes dst(n);
  for (auto _ : state) {
    erasure::Gf256::dot_slice(dst.data(), ptrs.data(), coeffs, kRows, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * kRows);
}
BENCHMARK(BM_GfDotSlice)->Arg(64 << 10)->Arg(1 << 20);

void BM_RsEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const RsCode code(n, k, RsVariant::kNonSystematic);
  Rng rng(2);
  const Bytes segment = rng.bytes(4 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(ByteSpan(segment)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_RsEncode)->Args({10, 3})->Args({14, 10})->Args({20, 4});

void BM_RsEncodeParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  const RsCode code(n, k, RsVariant::kNonSystematic);
  Executor executor(threads);
  std::vector<std::uint32_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<std::uint32_t>(i);
  Rng rng(2);
  const Bytes segment = rng.bytes(4 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        code.encode_shards_parallel(ByteSpan(segment), all, executor));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_RsEncodeParallel)
    ->Args({10, 3, 1})
    ->Args({10, 3, 4})
    ->Args({20, 4, 4});

void BM_RsEncodeSingleShard(benchmark::State& state) {
  // On-demand generation of one over-provisioned parity block.
  const RsCode code(10, 3);
  Rng rng(3);
  const Bytes segment = rng.bytes(4 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode_shards(ByteSpan(segment), {7}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_RsEncodeSingleShard);

void BM_RsDecode(benchmark::State& state) {
  const RsCode code(10, 3);
  Rng rng(4);
  const Bytes segment = rng.bytes(4 << 20);
  auto shards = code.encode(ByteSpan(segment));
  // Decode from the "worst" subset (all parity, no low indices).
  const std::vector<erasure::Shard> subset = {shards[7], shards[8], shards[9]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(subset, segment.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_RsDecode);

void BM_RsSystematicVsNot(benchmark::State& state) {
  const bool systematic = state.range(0) != 0;
  const RsCode code(10, 3, systematic ? RsVariant::kSystematic
                                      : RsVariant::kNonSystematic);
  Rng rng(5);
  const Bytes segment = rng.bytes(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(ByteSpan(segment)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(segment.size()));
}
BENCHMARK(BM_RsSystematicVsNot)->Arg(0)->Arg(1);

}  // namespace
