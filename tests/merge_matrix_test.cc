// Three-way merge conflict matrix: every (local op) × (cloud op) pair over
// the same base image, checked against Algorithm 1's keep-both guarantee —
// a merge may create conflict copies, but it must never silently lose
// content that either side still referenced.
//
// Ops: none, add (both sides add the SAME new path, with different
// content), modify, delete, rename (delete + re-add under a side-specific
// name, same content). 5 × 5 = 25 combinations, each checked for:
//   1. No silent loss: a file present on one side survives the merge
//      (somewhere — original path or conflict copy) unless the other side
//      cleanly deleted it while this side left it untouched.
//   2. Conflicts are reported exactly when both sides changed the same
//      path to different outcomes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "metadata/diff.h"
#include "metadata/image.h"

namespace unidrive::metadata {
namespace {

enum class Op { kNone, kAdd, kModify, kDelete, kRename };

const char* op_name(Op op) {
  switch (op) {
    case Op::kNone:
      return "none";
    case Op::kAdd:
      return "add";
    case Op::kModify:
      return "modify";
    case Op::kDelete:
      return "delete";
    case Op::kRename:
      return "rename";
  }
  return "?";
}

FileSnapshot snap(const std::string& path, const std::string& hash) {
  FileSnapshot s;
  s.path = path;
  s.size = 100;
  s.content_hash = hash;
  s.origin_device = "dev";
  return s;
}

SyncFolderImage make_base() {
  SyncFolderImage base;
  base.upsert_file(snap("/f", "v0"));
  base.set_version(VersionStamp{"base", 1, 0});
  return base;
}

// Applies `op` to a copy of the base, acting as side `who` ("local" or
// "cloud"); side-specific suffixes make concurrent edits genuinely differ.
SyncFolderImage apply_op(const SyncFolderImage& base, Op op,
                         const std::string& who) {
  SyncFolderImage image = base;
  switch (op) {
    case Op::kNone:
      break;
    case Op::kAdd:
      image.upsert_file(snap("/n", "added_" + who));
      break;
    case Op::kModify:
      image.upsert_file(snap("/f", "modified_" + who));
      break;
    case Op::kDelete:
      image.delete_file("/f");
      break;
    case Op::kRename:
      image.delete_file("/f");
      image.upsert_file(snap("/f_renamed_" + who, "v0"));
      break;
  }
  image.set_version(VersionStamp{who, 2, 0});
  return image;
}

bool merged_contains_hash(const SyncFolderImage& merged,
                          const std::string& hash) {
  for (const auto& [path, s] : merged.files()) {
    if (s.content_hash == hash) return true;
  }
  return false;
}

// The no-silent-loss invariant. For every file a side currently holds, the
// merged image must retain its content — at the original path or in a
// conflict copy — UNLESS this side left the path untouched and the other
// side cleanly changed it (an uncontested modify/delete is allowed to win;
// that is a sync, not a loss).
void check_no_silent_loss(const SyncFolderImage& base,
                          const SyncFolderImage& side,
                          const SyncFolderImage& other,
                          const SyncFolderImage& merged,
                          const std::string& side_name) {
  for (const auto& [path, s] : side.files()) {
    const FileSnapshot* in_base = base.find_file(path);
    const FileSnapshot* in_other = other.find_file(path);
    const bool side_changed = in_base == nullptr || !(*in_base == s);
    const bool other_changed =
        in_base != nullptr && (in_other == nullptr || !(*in_other == *in_base));
    if (!side_changed && other_changed) continue;  // uncontested change wins
    EXPECT_TRUE(merged_contains_hash(merged, s.content_hash))
        << side_name << " content " << s.content_hash << " at " << path
        << " was silently lost";
  }
}

// Whether the pair of ops constitutes a real concurrent conflict on some
// path: both sides changed the same path relative to base, with differing
// outcomes. (Rename only touches /f by deleting it; the re-added file is
// under a side-unique name and cannot collide.)
bool expect_conflict(Op local, Op cloud) {
  const auto touches_f = [](Op op) {
    return op == Op::kModify || op == Op::kDelete || op == Op::kRename;
  };
  if (local == Op::kAdd && cloud == Op::kAdd) return true;  // same new path
  if (!touches_f(local) || !touches_f(cloud)) return false;
  const auto deletes_f = [](Op op) {
    return op == Op::kDelete || op == Op::kRename;
  };
  if (deletes_f(local) && deletes_f(cloud)) return false;  // same outcome
  if (local == Op::kModify && cloud == Op::kModify) return true;  // differ
  return true;  // modify vs delete (either direction)
}

TEST(MergeMatrixTest, AllOpPairsPreserveContentAndReportConflicts) {
  const Op kOps[] = {Op::kNone, Op::kAdd, Op::kModify, Op::kDelete,
                     Op::kRename};
  for (const Op local_op : kOps) {
    for (const Op cloud_op : kOps) {
      SCOPED_TRACE(std::string("local=") + op_name(local_op) +
                   " cloud=" + op_name(cloud_op));
      const SyncFolderImage base = make_base();
      const SyncFolderImage local = apply_op(base, local_op, "local");
      const SyncFolderImage cloud = apply_op(base, cloud_op, "cloud");

      const MergeResult result = merge_images(base, local, cloud, "deviceA");

      check_no_silent_loss(base, local, cloud, result.merged, "local");
      check_no_silent_loss(base, cloud, local, result.merged, "cloud");

      if (expect_conflict(local_op, cloud_op)) {
        EXPECT_FALSE(result.conflicts.empty())
            << "concurrent divergent ops must be reported as a conflict";
      } else {
        EXPECT_TRUE(result.conflicts.empty())
            << "non-conflicting ops must merge cleanly, got conflict at "
            << (result.conflicts.empty() ? ""
                                         : result.conflicts.front().path);
      }

      // Spot-check the keep-both mechanics for the double-edit cell: cloud
      // wins the original path, local survives in the conflict copy.
      if (local_op == Op::kModify && cloud_op == Op::kModify) {
        const FileSnapshot* at_original = result.merged.find_file("/f");
        ASSERT_NE(at_original, nullptr);
        EXPECT_EQ(at_original->content_hash, "modified_cloud");
        ASSERT_EQ(result.conflicts.size(), 1u);
        EXPECT_EQ(result.conflicts[0].path, "/f");
        const FileSnapshot* copy =
            result.merged.find_file(result.conflicts[0].conflict_copy);
        ASSERT_NE(copy, nullptr);
        EXPECT_EQ(copy->content_hash, "modified_local");
      }
    }
  }
}

// Delete vs modify: the edit survives at the original path (a deletion must
// not destroy a concurrent edit), and no conflict copy is needed.
TEST(MergeMatrixTest, DeleteVersusModifyKeepsTheEdit) {
  const SyncFolderImage base = make_base();

  // Local deletes, cloud modifies.
  {
    const SyncFolderImage local = apply_op(base, Op::kDelete, "local");
    const SyncFolderImage cloud = apply_op(base, Op::kModify, "cloud");
    const MergeResult result = merge_images(base, local, cloud, "deviceA");
    const FileSnapshot* f = result.merged.find_file("/f");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->content_hash, "modified_cloud");
  }
  // Cloud deletes, local modifies.
  {
    const SyncFolderImage local = apply_op(base, Op::kModify, "local");
    const SyncFolderImage cloud = apply_op(base, Op::kDelete, "cloud");
    const MergeResult result = merge_images(base, local, cloud, "deviceA");
    EXPECT_TRUE(merged_contains_hash(result.merged, "modified_local"));
  }
}

// Rename vs rename: both renamed copies survive under their new names and
// the old path is gone — nothing lost, nothing resurrected.
TEST(MergeMatrixTest, ConcurrentRenamesKeepBothNames) {
  const SyncFolderImage base = make_base();
  const SyncFolderImage local = apply_op(base, Op::kRename, "local");
  const SyncFolderImage cloud = apply_op(base, Op::kRename, "cloud");
  const MergeResult result = merge_images(base, local, cloud, "deviceA");
  EXPECT_EQ(result.merged.find_file("/f"), nullptr);
  EXPECT_NE(result.merged.find_file("/f_renamed_local"), nullptr);
  EXPECT_NE(result.merged.find_file("/f_renamed_cloud"), nullptr);
}

}  // namespace
}  // namespace unidrive::metadata
