#include <gtest/gtest.h>

#include <set>

#include "chunker/cdc.h"
#include "chunker/segmenter.h"
#include "common/rng.h"
#include "crypto/convergent.h"
#include "crypto/sha256.h"

namespace unidrive::chunker {
namespace {

CdcParams small_params() {
  CdcParams p;
  p.min_size = 256;
  p.target_size = 1024;
  p.max_size = 4096;
  return p;
}

TEST(CdcTest, EmptyInput) {
  EXPECT_TRUE(cdc_split(ByteSpan{}, small_params()).empty());
}

TEST(CdcTest, ChunksCoverInputContiguously) {
  Rng rng(1);
  const Bytes data = rng.bytes(100000);
  const auto chunks = cdc_split(ByteSpan(data), small_params());
  ASSERT_FALSE(chunks.empty());
  std::size_t expect_offset = 0;
  for (const ChunkRef& c : chunks) {
    EXPECT_EQ(c.offset, expect_offset);
    EXPECT_GT(c.length, 0u);
    expect_offset += c.length;
  }
  EXPECT_EQ(expect_offset, data.size());
}

TEST(CdcTest, RespectsMinAndMax) {
  Rng rng(2);
  const Bytes data = rng.bytes(200000);
  const auto params = small_params();
  const auto chunks = cdc_split(ByteSpan(data), params);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_LE(chunks[i].length, params.max_size);
    if (i + 1 < chunks.size()) {  // final chunk may be short
      EXPECT_GT(chunks[i].length, params.min_size);
    }
  }
}

TEST(CdcTest, AverageNearTarget) {
  Rng rng(3);
  const Bytes data = rng.bytes(2 << 20);
  const auto params = small_params();
  const auto chunks = cdc_split(ByteSpan(data), params);
  const double avg = static_cast<double>(data.size()) / chunks.size();
  // Gear CDC typically lands within ~2x of the target mask size.
  EXPECT_GT(avg, params.target_size * 0.4);
  EXPECT_LT(avg, params.target_size * 3.0);
}

TEST(CdcTest, Deterministic) {
  Rng rng(4);
  const Bytes data = rng.bytes(50000);
  const auto a = cdc_split(ByteSpan(data), small_params());
  const auto b = cdc_split(ByteSpan(data), small_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].length, b[i].length);
  }
}

TEST(CdcTest, EditLocality) {
  // The property UniDrive depends on: editing bytes in the middle must not
  // move chunk boundaries far from the edit.
  Rng rng(5);
  Bytes data = rng.bytes(500000);
  const auto before = cdc_split(ByteSpan(data), small_params());
  // Flip 10 bytes in the middle.
  for (std::size_t i = 250000; i < 250010; ++i) data[i] ^= 0xFF;
  const auto after = cdc_split(ByteSpan(data), small_params());

  // Compare boundary sets; they may differ only near the edit.
  std::set<std::size_t> b1, b2;
  for (const auto& c : before) b1.insert(c.offset);
  for (const auto& c : after) b2.insert(c.offset);
  std::size_t differing = 0;
  for (const std::size_t off : b1) {
    if (b2.count(off) == 0) ++differing;
  }
  for (const std::size_t off : b2) {
    if (b1.count(off) == 0) ++differing;
  }
  // A localized edit may disturb at most a couple of boundaries.
  EXPECT_LE(differing, 4u);
}

TEST(CdcTest, ShortInputSingleChunk) {
  Rng rng(6);
  const Bytes data = rng.bytes(100);  // < min_size
  const auto chunks = cdc_split(ByteSpan(data), small_params());
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].length, 100u);
}

// --- segmenter ----------------------------------------------------------------

SegmenterParams seg_params(std::size_t theta = 64 << 10) {
  SegmenterParams p;
  p.theta = theta;
  return p;
}

TEST(SegmenterTest, EmptyFile) {
  EXPECT_TRUE(segment_file(ByteSpan{}, seg_params()).empty());
}

TEST(SegmenterTest, SegmentsCoverFile) {
  Rng rng(7);
  const Bytes data = rng.bytes(1 << 20);
  const auto segments = segment_file(ByteSpan(data), seg_params());
  std::size_t offset = 0;
  for (const Segment& s : segments) {
    EXPECT_EQ(s.offset, offset);
    offset += s.length;
  }
  EXPECT_EQ(offset, data.size());
}

TEST(SegmenterTest, SizeClampRespected) {
  Rng rng(8);
  const Bytes data = rng.bytes(4 << 20);
  const auto params = seg_params();
  const auto segments = segment_file(ByteSpan(data), params);
  ASSERT_GT(segments.size(), 2u);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_LE(segments[i].length, params.max_size());
    if (i + 1 < segments.size()) {
      EXPECT_GE(segments[i].length, params.min_size());
    }
  }
}

TEST(SegmenterTest, IdIsSha256OfContent) {
  Rng rng(9);
  const Bytes data = rng.bytes(300000);
  const auto segments = segment_file(ByteSpan(data), seg_params());
  for (const Segment& s : segments) {
    EXPECT_EQ(s.id,
              crypto::Sha256::hex(ByteSpan(data).subspan(s.offset, s.length)));
    EXPECT_TRUE(crypto::verify_segment_id(
        s.id, ByteSpan(data).subspan(s.offset, s.length)));
  }
}

TEST(SegmenterTest, IdenticalContentSameIds) {
  Rng rng(10);
  const Bytes data = rng.bytes(500000);
  const auto a = segment_file(ByteSpan(data), seg_params());
  const auto b = segment_file(ByteSpan(data), seg_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

TEST(SegmenterTest, AppendPreservesEarlySegments) {
  // Dedup across versions: appending to a file must keep the ids of all but
  // the last segment(s) unchanged.
  Rng rng(11);
  Bytes data = rng.bytes(1 << 20);
  const auto before = segment_file(ByteSpan(data), seg_params());
  const Bytes tail = rng.bytes(100000);
  data.insert(data.end(), tail.begin(), tail.end());
  const auto after = segment_file(ByteSpan(data), seg_params());

  std::set<std::string> after_ids;
  for (const Segment& s : after) after_ids.insert(s.id);
  std::size_t reused = 0;
  for (const Segment& s : before) {
    if (after_ids.count(s.id) != 0) ++reused;
  }
  // All but the final couple of segments should be reused.
  EXPECT_GE(reused + 3, before.size());
  EXPECT_GE(reused, before.size() / 2);
}

TEST(SegmenterTest, SmallFileSingleSegment) {
  Rng rng(12);
  const Bytes data = rng.bytes(1000);
  const auto segments = segment_file(ByteSpan(data), seg_params());
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].length, data.size());
}

// --- parameterized property sweeps ------------------------------------------

struct SegmenterCase {
  std::size_t theta;
  std::size_t file_size;
  std::uint64_t seed;
};

class SegmenterProperty : public ::testing::TestWithParam<SegmenterCase> {};

TEST_P(SegmenterProperty, CoverageAndClampHoldForAllParams) {
  const SegmenterCase c = GetParam();
  Rng rng(c.seed);
  const Bytes data = rng.bytes(c.file_size);
  SegmenterParams params;
  params.theta = c.theta;
  const auto segments = segment_file(ByteSpan(data), params);

  if (data.empty()) {
    EXPECT_TRUE(segments.empty());
    return;
  }
  std::size_t offset = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].offset, offset);
    EXPECT_LE(segments[i].length, params.max_size());
    if (segments.size() > 1 && i + 1 < segments.size()) {
      EXPECT_GE(segments[i].length, params.min_size());
    }
    offset += segments[i].length;
  }
  EXPECT_EQ(offset, data.size());
}

TEST_P(SegmenterProperty, PrefixEditOnlyDisturbsNearbySegments) {
  const SegmenterCase c = GetParam();
  if (c.file_size < 4 * c.theta) return;  // needs several segments
  Rng rng(c.seed);
  Bytes data = rng.bytes(c.file_size);
  SegmenterParams params;
  params.theta = c.theta;
  const auto before = segment_file(ByteSpan(data), params);

  // Edit a few bytes near the START; the TAIL segment ids must survive.
  for (std::size_t i = 10; i < 20 && i < data.size(); ++i) data[i] ^= 0x5A;
  const auto after = segment_file(ByteSpan(data), params);

  std::set<std::string> after_ids;
  for (const Segment& s : after) after_ids.insert(s.id);
  std::size_t tail_reused = 0;
  const std::size_t tail_start = before.size() / 2;
  for (std::size_t i = tail_start; i < before.size(); ++i) {
    if (after_ids.count(before[i].id) != 0) ++tail_reused;
  }
  // Everything in the second half of the file is untouched content.
  EXPECT_EQ(tail_reused, before.size() - tail_start);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegmenterProperty,
    ::testing::Values(SegmenterCase{16 << 10, 0, 1},
                      SegmenterCase{16 << 10, 1, 2},
                      SegmenterCase{16 << 10, 500 << 10, 3},
                      SegmenterCase{64 << 10, 1 << 20, 4},
                      SegmenterCase{64 << 10, (1 << 20) + 7, 5},
                      SegmenterCase{256 << 10, 4 << 20, 6},
                      SegmenterCase{1 << 20, 10 << 20, 7},
                      SegmenterCase{4 << 20, 3 << 20, 8},   // sub-theta file
                      SegmenterCase{4 << 20, 33 << 20, 9}));

TEST(SegmenterTest, SegmentBytesExtracts) {
  Rng rng(13);
  const Bytes data = rng.bytes(200000);
  const auto segments = segment_file(ByteSpan(data), seg_params());
  ASSERT_FALSE(segments.empty());
  const Bytes piece = segment_bytes(ByteSpan(data), segments[0]);
  EXPECT_EQ(piece.size(), segments[0].length);
  EXPECT_TRUE(std::equal(piece.begin(), piece.end(), data.begin()));
}

}  // namespace
}  // namespace unidrive::chunker
