#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/status.h"

namespace unidrive {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = make_error(ErrorCode::kNotFound, "missing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "missing");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: missing");
}

TEST(StatusTest, TransientClassification) {
  EXPECT_TRUE(make_error(ErrorCode::kUnavailable, "").is_transient());
  EXPECT_TRUE(make_error(ErrorCode::kTimeout, "").is_transient());
  EXPECT_FALSE(make_error(ErrorCode::kNotFound, "").is_transient());
  EXPECT_FALSE(make_error(ErrorCode::kQuotaExceeded, "").is_transient());
}

TEST(StatusTest, EveryCodeHasName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_STRNE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = make_error(ErrorCode::kCorrupt, "bad");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), ErrorCode::kCorrupt);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string(1000, 'x'));
  const std::string moved = std::move(r).take();
  EXPECT_EQ(moved.size(), 1000u);
}

// --- bytes -------------------------------------------------------------------

TEST(BytesTest, StringRoundTrip) {
  const Bytes b = bytes_from_string("hello");
  EXPECT_EQ(string_from_bytes(ByteSpan(b)), "hello");
}

TEST(BytesTest, HexRoundTrip) {
  const Bytes b = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(ByteSpan(b)), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), b);
  EXPECT_EQ(from_hex("0001ABFF"), b);
}

TEST(BytesTest, FromHexRejectsMalformed) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd length
  EXPECT_TRUE(from_hex("zz").empty());    // non-hex
}

TEST(BytesTest, Fnv1aDistinguishes) {
  const Bytes a = bytes_from_string("a");
  const Bytes b = bytes_from_string("b");
  EXPECT_NE(fnv1a(ByteSpan(a)), fnv1a(ByteSpan(b)));
}

// --- rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(3.0, 5.0);
    EXPECT_GE(d, 3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMeanApproximate) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(RngTest, LognormalMedianApproximate) {
  Rng rng(17);
  std::vector<double> xs(10001);
  for (double& x : xs) x = rng.lognormal(5.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 5000, xs.end());
  EXPECT_NEAR(xs[5000], 5.0, 0.25);
}

TEST(RngTest, BytesLengthAndDeterminism) {
  Rng a(19), b(19);
  EXPECT_EQ(a.bytes(17), b.bytes(17));
  EXPECT_EQ(a.bytes(0).size(), 0u);
  EXPECT_EQ(a.bytes(100).size(), 100u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

// --- clock -------------------------------------------------------------------

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  clock.advance(5.5);
  EXPECT_DOUBLE_EQ(clock.now(), 15.5);
  clock.set(100.0);
  EXPECT_DOUBLE_EQ(clock.now(), 100.0);
}

TEST(ClockTest, RealClockMonotone) {
  RealClock& clock = RealClock::instance();
  const TimePoint a = clock.now();
  const TimePoint b = clock.now();
  EXPECT_LE(a, b);
}

// --- serialization -----------------------------------------------------------

TEST(SerialTest, FixedWidthRoundTrip) {
  BinaryWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_double(3.25);
  BinaryReader r{ByteSpan(w.data())};
  EXPECT_EQ(r.get_u8().value(), 0xAB);
  EXPECT_EQ(r.get_u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.get_double().value(), 3.25);
  EXPECT_TRUE(r.at_end());
}

TEST(SerialTest, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {0,    1,        127,        128,
                                  255,  16383,    16384,      (1ULL << 32),
                                  ~0ULL};
  for (const std::uint64_t v : values) {
    BinaryWriter w;
    w.put_varint(v);
    BinaryReader r{ByteSpan(w.data())};
    EXPECT_EQ(r.get_varint().value(), v) << v;
  }
}

TEST(SerialTest, VarintSmallValuesAreOneByte) {
  BinaryWriter w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SerialTest, StringAndBytesRoundTrip) {
  BinaryWriter w;
  w.put_string("héllo wörld");
  w.put_bytes(Bytes{1, 2, 3});
  BinaryReader r{ByteSpan(w.data())};
  EXPECT_EQ(r.get_string().value(), "héllo wörld");
  EXPECT_EQ(r.get_bytes().value(), (Bytes{1, 2, 3}));
}

TEST(SerialTest, TruncationDetected) {
  BinaryWriter w;
  w.put_string("hello");
  Bytes data = w.data();
  data.resize(data.size() - 2);
  BinaryReader r{ByteSpan(data)};
  EXPECT_EQ(r.get_string().code(), ErrorCode::kCorrupt);
}

TEST(SerialTest, VarintOverflowDetected) {
  Bytes data(11, 0xFF);  // endless continuation bits
  BinaryReader r{ByteSpan(data)};
  EXPECT_FALSE(r.get_varint().is_ok());
}

TEST(SerialTest, EmptyString) {
  BinaryWriter w;
  w.put_string("");
  BinaryReader r{ByteSpan(w.data())};
  EXPECT_EQ(r.get_string().value(), "");
}

}  // namespace
}  // namespace unidrive
