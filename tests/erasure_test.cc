#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "test_seed.h"
#include "erasure/gf256.h"
#include "erasure/matrix.h"
#include "erasure/rs.h"
#include "sched/plan.h"

UNIDRIVE_REGISTER_SEED_LISTENER()

namespace unidrive::erasure {
namespace {

using unidrive::testing::test_seed;

// --- GF(256) ------------------------------------------------------------------

TEST(Gf256Test, AddIsXor) {
  EXPECT_EQ(Gf256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(Gf256::add(0, 0), 0);
}

TEST(Gf256Test, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256Test, KnownProduct) {
  // 0x53 * 0xCA = 0x01 in GF(2^8) with the AES polynomial (they are
  // multiplicative inverses).
  EXPECT_EQ(Gf256::mul(0x53, 0xCA), 0x01);
}

TEST(Gf256Test, MulCommutativeAssociativeSample) {
  Rng rng(test_seed(1));
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next());
    const auto b = static_cast<std::uint8_t>(rng.next());
    const auto c = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(Gf256::mul(a, b), Gf256::mul(b, a));
    EXPECT_EQ(Gf256::mul(a, Gf256::mul(b, c)),
              Gf256::mul(Gf256::mul(a, b), c));
    // Distributivity over addition.
    EXPECT_EQ(Gf256::mul(a, Gf256::add(b, c)),
              Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c)));
  }
}

TEST(Gf256Test, InverseProperty) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = Gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256Test, DivMatchesMulByInverse) {
  Rng rng(test_seed(2));
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next());
    auto b = static_cast<std::uint8_t>(rng.next());
    if (b == 0) b = 1;
    EXPECT_EQ(Gf256::div(a, b), Gf256::mul(a, Gf256::inv(b)));
  }
}

TEST(Gf256Test, ExpGeneratorCycle) {
  EXPECT_EQ(Gf256::exp(0), 1);
  EXPECT_EQ(Gf256::exp(255), 1);   // order of the multiplicative group
  EXPECT_EQ(Gf256::exp(-1), Gf256::exp(254));
}

TEST(Gf256Test, MulAddSliceMatchesScalarLoop) {
  Rng rng(test_seed(3));
  const Bytes src = rng.bytes(1000);
  Bytes dst = rng.bytes(1000);
  Bytes expected = dst;
  const std::uint8_t coeff = 0x7D;
  for (std::size_t i = 0; i < src.size(); ++i) {
    expected[i] ^= Gf256::mul(coeff, src[i]);
  }
  Gf256::mul_add_slice(dst.data(), src.data(), src.size(), coeff);
  EXPECT_EQ(dst, expected);
}

TEST(Gf256Test, MulAddSliceCoeffZeroIsNoop) {
  Rng rng(test_seed(4));
  const Bytes src = rng.bytes(100);
  Bytes dst = rng.bytes(100);
  const Bytes before = dst;
  Gf256::mul_add_slice(dst.data(), src.data(), src.size(), 0);
  EXPECT_EQ(dst, before);
}

TEST(Gf256Test, ScaleSlice) {
  Bytes dst = {1, 2, 3};
  Gf256::scale_slice(dst.data(), dst.size(), 2);
  EXPECT_EQ(dst[0], Gf256::mul(1, 2));
  EXPECT_EQ(dst[1], Gf256::mul(2, 2));
  EXPECT_EQ(dst[2], Gf256::mul(3, 2));
}

// --- matrices -----------------------------------------------------------------

TEST(MatrixTest, IdentityMultiplication) {
  const GfMatrix id = GfMatrix::identity(4);
  GfMatrix m(4, 4);
  Rng rng(test_seed(5));
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      m.at(r, c) = static_cast<std::uint8_t>(rng.next());
    }
  }
  EXPECT_EQ(m.multiply(id), m);
  EXPECT_EQ(id.multiply(m), m);
}

TEST(MatrixTest, InverseTimesSelfIsIdentity) {
  Rng rng(test_seed(6));
  for (int trial = 0; trial < 20; ++trial) {
    GfMatrix m(5, 5);
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t c = 0; c < 5; ++c) {
        m.at(r, c) = static_cast<std::uint8_t>(rng.next());
      }
    }
    auto inv = m.inverted();
    if (!inv.is_ok()) continue;  // singular random matrix: skip
    EXPECT_EQ(m.multiply(inv.value()), GfMatrix::identity(5));
  }
}

TEST(MatrixTest, SingularMatrixRejected) {
  GfMatrix m(3, 3);  // all zeros
  EXPECT_EQ(m.inverted().code(), ErrorCode::kCorrupt);
}

TEST(MatrixTest, NonSquareInverseRejected) {
  GfMatrix m(2, 3);
  EXPECT_EQ(m.inverted().code(), ErrorCode::kInvalidArgument);
}

TEST(MatrixTest, CauchyEverySquareSubmatrixInvertible) {
  const std::size_t n = 10, k = 3;
  const GfMatrix m = GfMatrix::cauchy(n, k);
  // Exhaustively test all C(10,3) row subsets.
  std::vector<std::size_t> idx(k);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (std::size_t c = b + 1; c < n; ++c) {
        idx = {a, b, c};
        EXPECT_TRUE(m.select_rows(idx).inverted().is_ok())
            << a << "," << b << "," << c;
      }
    }
  }
}

TEST(MatrixTest, VandermondeFirstKRowsInvertible) {
  const GfMatrix m = GfMatrix::vandermonde(8, 4);
  std::vector<std::size_t> idx = {0, 1, 2, 3};
  EXPECT_TRUE(m.select_rows(idx).inverted().is_ok());
}

// --- Reed-Solomon -------------------------------------------------------------

struct RsCase {
  std::size_t n;
  std::size_t k;
  RsVariant variant;
  std::size_t payload;
};

class RsRoundTrip : public ::testing::TestWithParam<RsCase> {};

TEST_P(RsRoundTrip, AnyKShardsDecode) {
  const RsCase c = GetParam();
  const RsCode code(c.n, c.k, c.variant);
  Rng rng(test_seed(42 + c.n * 100 + c.k));
  const Bytes segment = rng.bytes(c.payload);
  const std::vector<Shard> shards = code.encode(ByteSpan(segment));
  ASSERT_EQ(shards.size(), c.n);

  // Try several random k-subsets.
  std::vector<std::size_t> order(c.n);
  std::iota(order.begin(), order.end(), 0);
  for (int trial = 0; trial < 12; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    std::vector<Shard> subset;
    for (std::size_t i = 0; i < c.k; ++i) subset.push_back(shards[order[i]]);
    auto decoded = code.decode(subset, segment.size());
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value(), segment);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RsRoundTrip,
    ::testing::Values(
        // UniDrive default (10, 3), non-systematic.
        RsCase{10, 3, RsVariant::kNonSystematic, 4096},
        RsCase{10, 3, RsVariant::kNonSystematic, 4097},  // padding path
        RsCase{10, 3, RsVariant::kNonSystematic, 1},
        RsCase{10, 3, RsVariant::kSystematic, 4096},
        RsCase{5, 5, RsVariant::kNonSystematic, 1000},   // no redundancy
        RsCase{6, 1, RsVariant::kNonSystematic, 333},    // replication-ish
        RsCase{14, 10, RsVariant::kSystematic, 10000},
        RsCase{20, 4, RsVariant::kNonSystematic, 64},
        RsCase{100, 30, RsVariant::kNonSystematic, 3000}));

// Randomized sweep over UniDrive placement parameters: draw (N, k, Ks, Kr)
// at random, keep the combinations CodeParams::validate() accepts, and check
// the erasure-code contract the placement math relies on — the derived
// (code_n, k) code must decode from ANY k of its shards, and the security
// ceiling must make Ks-1 colluding clouds arithmetically unable to gather k.
TEST(RsPropertyTest, RandomCodeParamsRoundTripFromAnyKSubset) {
  Rng rng(test_seed(0xC0DE));
  int tested = 0;
  int drawn = 0;
  while (tested < 40) {
    ASSERT_LT(++drawn, 4000) << "parameter space too hard to sample";
    sched::CodeParams params;
    params.num_clouds = 2 + rng.next_below(8);  // N in [2, 9]
    params.k = 1 + rng.next_below(10);          // k in [1, 10]
    params.ks = 1 + rng.next_below(4);          // Ks in [1, 4]
    params.kr = 1 + rng.next_below(params.num_clouds);  // Kr in [1, N]
    if (!params.validate().is_ok()) continue;  // infeasible combination
    ++tested;
    SCOPED_TRACE("N=" + std::to_string(params.num_clouds) +
                 " k=" + std::to_string(params.k) +
                 " Ks=" + std::to_string(params.ks) +
                 " Kr=" + std::to_string(params.kr));

    // Security arithmetic: at the per-cloud cap, Ks-1 breached clouds hold
    // strictly fewer than k blocks — reconstruction is impossible.
    if (params.ks > 1) {
      EXPECT_LT((params.ks - 1) * params.max_per_cloud(), params.k);
    }
    // Reliability arithmetic: any Kr clouds at the fair-share floor hold at
    // least k blocks — reconstruction is guaranteed.
    EXPECT_GE(params.kr * params.fair_share(), params.k);

    const RsCode code(params.code_n(), params.k, RsVariant::kNonSystematic);
    const Bytes segment = rng.bytes(64 + rng.next_below(2048));
    const std::vector<Shard> shards = code.encode(ByteSpan(segment));
    ASSERT_EQ(shards.size(), params.code_n());

    std::vector<std::size_t> order(params.code_n());
    std::iota(order.begin(), order.end(), 0);
    for (int trial = 0; trial < 6; ++trial) {
      std::shuffle(order.begin(), order.end(), rng);
      std::vector<Shard> subset;
      for (std::size_t i = 0; i < params.k; ++i) {
        subset.push_back(shards[order[i]]);
      }
      auto decoded = code.decode(subset, segment.size());
      ASSERT_TRUE(decoded.is_ok());
      EXPECT_EQ(decoded.value(), segment);
    }
    // And k-1 shards must never suffice.
    if (params.k > 1) {
      std::vector<Shard> short_subset(shards.begin(),
                                      shards.begin() + (params.k - 1));
      EXPECT_FALSE(code.decode(short_subset, segment.size()).is_ok());
    }
  }
}

TEST(RsCodeTest, EmptySegment) {
  const RsCode code(10, 3);
  const auto shards = code.encode(ByteSpan{});
  auto decoded = code.decode(shards, 0);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(RsCodeTest, SystematicFirstKShardsAreData) {
  const RsCode code(8, 4, RsVariant::kSystematic);
  Rng rng(test_seed(7));
  const Bytes segment = rng.bytes(400);
  const auto shards = code.encode(ByteSpan(segment));
  const std::size_t shard_size = code.shard_size(segment.size());
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < shard_size; ++j) {
      const std::size_t pos = i * shard_size + j;
      const std::uint8_t expected = pos < segment.size() ? segment[pos] : 0;
      ASSERT_EQ(shards[i].data[j], expected) << i << ":" << j;
    }
  }
}

TEST(RsCodeTest, NonSystematicShardsAreNotData) {
  // The security rationale: no stored block may equal a verbatim slice of
  // the file. With a Cauchy matrix no row is a unit vector, so every shard
  // mixes all k data shards.
  const RsCode code(10, 3);
  Rng rng(test_seed(8));
  const Bytes segment = rng.bytes(3000);
  const auto shards = code.encode(ByteSpan(segment));
  const std::size_t shard_size = code.shard_size(segment.size());
  for (const Shard& s : shards) {
    for (std::size_t d = 0; d < 3; ++d) {
      const bool equals_data_shard = std::equal(
          s.data.begin(), s.data.end(), segment.begin() + d * shard_size);
      EXPECT_FALSE(equals_data_shard);
    }
  }
}

TEST(RsCodeTest, SystematicIsProvablyMdsExhaustive) {
  // Every C(10,3) subset of the systematic code's shards must decode —
  // guaranteed by the [I ; Cauchy] construction (a reduced-Vandermonde
  // systematic matrix would NOT pass this exhaustively in general).
  const RsCode code(10, 3, RsVariant::kSystematic);
  Rng rng(test_seed(99));
  const Bytes segment = rng.bytes(1500);
  const auto shards = code.encode(ByteSpan(segment));
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      for (std::size_t c = b + 1; c < 10; ++c) {
        const std::vector<Shard> subset = {shards[a], shards[b], shards[c]};
        auto decoded = code.decode(subset, segment.size());
        ASSERT_TRUE(decoded.is_ok()) << a << "," << b << "," << c;
        EXPECT_EQ(decoded.value(), segment);
      }
    }
  }
}

TEST(RsCodeTest, NonSystematicIsProvablyMdsExhaustive) {
  const RsCode code(10, 3, RsVariant::kNonSystematic);
  Rng rng(test_seed(100));
  const Bytes segment = rng.bytes(1500);
  const auto shards = code.encode(ByteSpan(segment));
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      for (std::size_t c = b + 1; c < 10; ++c) {
        const std::vector<Shard> subset = {shards[a], shards[b], shards[c]};
        auto decoded = code.decode(subset, segment.size());
        ASSERT_TRUE(decoded.is_ok()) << a << "," << b << "," << c;
        EXPECT_EQ(decoded.value(), segment);
      }
    }
  }
}

TEST(RsCodeTest, FewerThanKShardsFails) {
  const RsCode code(10, 3);
  Rng rng(test_seed(9));
  const Bytes segment = rng.bytes(100);
  auto shards = code.encode(ByteSpan(segment));
  shards.resize(2);
  EXPECT_EQ(code.decode(shards, segment.size()).code(), ErrorCode::kCorrupt);
}

TEST(RsCodeTest, DuplicateShardIndicesDontCount) {
  const RsCode code(10, 3);
  Rng rng(test_seed(10));
  const Bytes segment = rng.bytes(100);
  const auto shards = code.encode(ByteSpan(segment));
  const std::vector<Shard> dupes = {shards[0], shards[0], shards[0]};
  EXPECT_FALSE(code.decode(dupes, segment.size()).is_ok());
}

TEST(RsCodeTest, ExtraShardsIgnored) {
  const RsCode code(10, 3);
  Rng rng(test_seed(11));
  const Bytes segment = rng.bytes(777);
  const auto shards = code.encode(ByteSpan(segment));
  auto decoded = code.decode(shards, segment.size());  // all 10 given
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), segment);
}

TEST(RsCodeTest, MismatchedShardSizeRejected) {
  const RsCode code(10, 3);
  Rng rng(test_seed(12));
  const Bytes segment = rng.bytes(300);
  auto shards = code.encode(ByteSpan(segment));
  shards[1].data.pop_back();
  const std::vector<Shard> subset = {shards[0], shards[1], shards[2]};
  EXPECT_EQ(code.decode(subset, segment.size()).code(), ErrorCode::kCorrupt);
}

TEST(RsCodeTest, EncodeShardsSubsetMatchesFullEncode) {
  const RsCode code(10, 3);
  Rng rng(test_seed(13));
  const Bytes segment = rng.bytes(999);
  const auto all = code.encode(ByteSpan(segment));
  const auto some = code.encode_shards(ByteSpan(segment), {7, 2, 9});
  ASSERT_EQ(some.size(), 3u);
  EXPECT_EQ(some[0].data, all[7].data);
  EXPECT_EQ(some[1].data, all[2].data);
  EXPECT_EQ(some[2].data, all[9].data);
}

TEST(RsCodeTest, InvalidParamsThrow) {
  EXPECT_THROW(RsCode(3, 5), std::invalid_argument);       // k > n
  EXPECT_THROW(RsCode(0, 0), std::invalid_argument);
  EXPECT_THROW(RsCode(200, 100), std::invalid_argument);   // n + k > 256
}

TEST(RsCodeTest, ShardSizeCeiling) {
  const RsCode code(10, 3);
  EXPECT_EQ(code.shard_size(9), 3u);
  EXPECT_EQ(code.shard_size(10), 4u);
  EXPECT_EQ(code.shard_size(0), 0u);
}

}  // namespace
}  // namespace unidrive::erasure
