#include <gtest/gtest.h>

#include "workload/files.h"
#include "workload/trial.h"

namespace unidrive::workload {
namespace {

TEST(FilesTest, UniformBatch) {
  const auto batch = uniform_batch(100, 1 << 20);
  EXPECT_EQ(batch.size(), 100u);
  for (const auto s : batch) EXPECT_EQ(s, 1u << 20);
}

TEST(FilesTest, UploadSpecsSplitLargeFiles) {
  const auto specs = upload_specs({10 << 20}, 4 << 20, "f");
  ASSERT_EQ(specs.size(), 1u);
  // 10 MB with theta = 4 MB: 4 + 6 (tail absorbed) or 4 + 4 + 2-merged.
  std::uint64_t total = 0;
  for (const auto& seg : specs[0].segments) {
    total += seg.size;
    EXPECT_LE(seg.size, 6u << 20);  // never beyond 1.5 theta
  }
  EXPECT_EQ(total, 10u << 20);
  EXPECT_GE(specs[0].segments.size(), 2u);
}

TEST(FilesTest, UploadSpecsSmallFileSingleSegment) {
  const auto specs = upload_specs({100 << 10}, 4 << 20, "f");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].segments.size(), 1u);
  EXPECT_EQ(specs[0].segments[0].size, 100u << 10);
}

TEST(FilesTest, SegmentIdsUnique) {
  const auto specs = upload_specs({8 << 20, 8 << 20}, 4 << 20, "f");
  std::set<std::string> ids;
  for (const auto& spec : specs) {
    for (const auto& seg : spec.segments) {
      EXPECT_TRUE(ids.insert(seg.id).second) << seg.id;
    }
  }
}

TEST(FilesTest, RandomFileIncompressibleAndDeterministic) {
  Rng a(1), b(1);
  const Bytes x = random_file(a, 10000);
  const Bytes y = random_file(b, 10000);
  EXPECT_EQ(x, y);
  // Rough incompressibility check: byte histogram close to uniform.
  std::array<int, 256> histogram{};
  for (const std::uint8_t v : x) ++histogram[v];
  for (const int count : histogram) EXPECT_LT(count, 200);
}

TEST(TrialTest, PopulationMatchesConfig) {
  TrialConfig config;
  config.num_files = 5000;  // smaller for test speed
  const Trial trial = generate_trial(config, 1);
  EXPECT_EQ(trial.sites.size(), 21u);
  EXPECT_EQ(trial.events.size(), 5000u);
  std::size_t total_users = 0;
  for (const auto& site : trial.sites) total_users += site.users;
  EXPECT_EQ(total_users, 272u);
}

TEST(TrialTest, EventsSortedAndInWindow) {
  TrialConfig config;
  config.num_files = 3000;
  const Trial trial = generate_trial(config, 2);
  double last = 0;
  for (const auto& ev : trial.events) {
    EXPECT_GE(ev.time, last);
    EXPECT_LE(ev.time, config.duration_days * 86400.0);
    EXPECT_LT(ev.site, trial.sites.size());
    EXPECT_GT(ev.bytes, 0u);
    last = ev.time;
  }
}

TEST(TrialTest, CategoryMixMatchesPaperShares) {
  TrialConfig config;
  config.num_files = 30000;
  const Trial trial = generate_trial(config, 3);
  std::size_t docs = 0, media = 0;
  for (const auto& ev : trial.events) {
    if (ev.kind == UploadEvent::Kind::kDocument) ++docs;
    if (ev.kind == UploadEvent::Kind::kMultimedia) ++media;
  }
  EXPECT_NEAR(static_cast<double>(docs) / 30000, 0.283, 0.02);
  EXPECT_NEAR(static_cast<double>(media) / 30000, 0.305, 0.02);
}

TEST(TrialTest, VolumeOrderOfMagnitude) {
  // ~97k files -> ~500 GB in the paper, i.e. ~5 MB mean. Accept 1-15 MB.
  TrialConfig config;
  config.num_files = 20000;
  const Trial trial = generate_trial(config, 4);
  const double mean =
      static_cast<double>(trial.total_bytes) / config.num_files;
  EXPECT_GT(mean, 0.5e6);
  EXPECT_LT(mean, 20e6);
}

TEST(TrialTest, SizeClassesPartition) {
  EXPECT_EQ(size_class_of(1), 0);
  EXPECT_EQ(size_class_of(100 << 10), 1);
  EXPECT_EQ(size_class_of(1 << 20), 2);
  EXPECT_EQ(size_class_of(50 << 20), 3);
  EXPECT_EQ(trial_size_classes().size(), 4u);
}

TEST(TrialTest, DeterministicUnderSeed) {
  TrialConfig config;
  config.num_files = 1000;
  const Trial a = generate_trial(config, 9);
  const Trial b = generate_trial(config, 9);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].bytes, b.events[i].bytes);
    EXPECT_DOUBLE_EQ(a.events[i].time, b.events[i].time);
  }
}

}  // namespace
}  // namespace unidrive::workload
