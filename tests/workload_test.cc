#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>

#include "test_seed.h"
#include "workload/files.h"
#include "workload/trial.h"

UNIDRIVE_REGISTER_SEED_LISTENER()

namespace unidrive::workload {
namespace {

using unidrive::testing::test_seed;

TEST(FilesTest, UniformBatch) {
  const auto batch = uniform_batch(100, 1 << 20);
  EXPECT_EQ(batch.size(), 100u);
  for (const auto s : batch) EXPECT_EQ(s, 1u << 20);
}

TEST(FilesTest, UploadSpecsSplitLargeFiles) {
  const auto specs = upload_specs({10 << 20}, 4 << 20, "f");
  ASSERT_EQ(specs.size(), 1u);
  // 10 MB with theta = 4 MB: 4 + 6 (tail absorbed) or 4 + 4 + 2-merged.
  std::uint64_t total = 0;
  for (const auto& seg : specs[0].segments) {
    total += seg.size;
    EXPECT_LE(seg.size, 6u << 20);  // never beyond 1.5 theta
  }
  EXPECT_EQ(total, 10u << 20);
  EXPECT_GE(specs[0].segments.size(), 2u);
}

TEST(FilesTest, UploadSpecsSmallFileSingleSegment) {
  const auto specs = upload_specs({100 << 10}, 4 << 20, "f");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].segments.size(), 1u);
  EXPECT_EQ(specs[0].segments[0].size, 100u << 10);
}

TEST(FilesTest, SegmentIdsUnique) {
  const auto specs = upload_specs({8 << 20, 8 << 20}, 4 << 20, "f");
  std::set<std::string> ids;
  for (const auto& spec : specs) {
    for (const auto& seg : spec.segments) {
      EXPECT_TRUE(ids.insert(seg.id).second) << seg.id;
    }
  }
}

TEST(FilesTest, RandomFileIncompressibleAndDeterministic) {
  Rng a(1), b(1);
  const Bytes x = random_file(a, 10000);
  const Bytes y = random_file(b, 10000);
  EXPECT_EQ(x, y);
  // Rough incompressibility check: byte histogram close to uniform.
  std::array<int, 256> histogram{};
  for (const std::uint8_t v : x) ++histogram[v];
  for (const int count : histogram) EXPECT_LT(count, 200);
}

TEST(TrialTest, PopulationMatchesConfig) {
  TrialConfig config;
  config.num_files = 5000;  // smaller for test speed
  const Trial trial = generate_trial(config, 1);
  EXPECT_EQ(trial.sites.size(), 21u);
  EXPECT_EQ(trial.events.size(), 5000u);
  std::size_t total_users = 0;
  for (const auto& site : trial.sites) total_users += site.users;
  EXPECT_EQ(total_users, 272u);
}

TEST(TrialTest, EventsSortedAndInWindow) {
  TrialConfig config;
  config.num_files = 3000;
  const Trial trial = generate_trial(config, 2);
  double last = 0;
  for (const auto& ev : trial.events) {
    EXPECT_GE(ev.time, last);
    EXPECT_LE(ev.time, config.duration_days * 86400.0);
    EXPECT_LT(ev.site, trial.sites.size());
    EXPECT_GT(ev.bytes, 0u);
    last = ev.time;
  }
}

TEST(TrialTest, CategoryMixMatchesPaperShares) {
  TrialConfig config;
  config.num_files = 30000;
  const Trial trial = generate_trial(config, 3);
  std::size_t docs = 0, media = 0;
  for (const auto& ev : trial.events) {
    if (ev.kind == UploadEvent::Kind::kDocument) ++docs;
    if (ev.kind == UploadEvent::Kind::kMultimedia) ++media;
  }
  EXPECT_NEAR(static_cast<double>(docs) / 30000, 0.283, 0.02);
  EXPECT_NEAR(static_cast<double>(media) / 30000, 0.305, 0.02);
}

TEST(TrialTest, VolumeOrderOfMagnitude) {
  // ~97k files -> ~500 GB in the paper, i.e. ~5 MB mean. Accept 1-15 MB.
  TrialConfig config;
  config.num_files = 20000;
  const Trial trial = generate_trial(config, 4);
  const double mean =
      static_cast<double>(trial.total_bytes) / config.num_files;
  EXPECT_GT(mean, 0.5e6);
  EXPECT_LT(mean, 20e6);
}

TEST(TrialTest, SizeClassesPartition) {
  EXPECT_EQ(size_class_of(1), 0);
  EXPECT_EQ(size_class_of(100 << 10), 1);
  EXPECT_EQ(size_class_of(1 << 20), 2);
  EXPECT_EQ(size_class_of(50 << 20), 3);
  EXPECT_EQ(trial_size_classes().size(), 4u);
}

// --- distribution properties, held across seeds ---------------------------
//
// The figure benches aggregate over the generated population; these pin the
// distributional invariants the aggregation relies on, for ANY seed (replay
// a different draw with UNIDRIVE_TEST_SEED).

TEST(TrialPropertyTest, CategoryAndSizeShapesHoldAcrossSeeds) {
  TrialConfig config;
  config.num_files = 12000;
  for (std::uint64_t s = 0; s < 5; ++s) {
    const Trial trial = generate_trial(config, test_seed(5000 + s));
    std::size_t docs = 0, media = 0;
    std::array<std::size_t, 4> classes{};
    for (const auto& ev : trial.events) {
      if (ev.kind == UploadEvent::Kind::kDocument) ++docs;
      if (ev.kind == UploadEvent::Kind::kMultimedia) ++media;
      ++classes[static_cast<std::size_t>(size_class_of(ev.bytes))];
    }
    const double n = static_cast<double>(trial.events.size());
    // Paper shares: 28.3% documents, 30.5% multimedia (section 7.3).
    EXPECT_NEAR(static_cast<double>(docs) / n, 0.283, 0.03) << "seed " << s;
    EXPECT_NEAR(static_cast<double>(media) / n, 0.305, 0.03) << "seed " << s;
    // Every size class is populated, and the mean stays in the ~5 MB band
    // implied by ~97k files / ~500 GB.
    for (std::size_t cl = 0; cl < classes.size(); ++cl) {
      EXPECT_GT(classes[cl], 0u) << "class " << cl << " empty, seed " << s;
    }
    const double mean = static_cast<double>(trial.total_bytes) / n;
    EXPECT_GT(mean, 0.5e6) << "seed " << s;
    EXPECT_LT(mean, 20e6) << "seed " << s;
  }
}

TEST(TrialPropertyTest, SitePopulationAndEventAttributionConsistent) {
  TrialConfig config;
  config.num_files = 6000;
  for (std::uint64_t s = 0; s < 5; ++s) {
    const Trial trial = generate_trial(config, test_seed(6000 + s));
    std::size_t total_users = 0;
    for (const auto& site : trial.sites) {
      EXPECT_GT(site.users, 0u) << "empty site, seed " << s;
      total_users += site.users;
    }
    EXPECT_EQ(total_users, config.num_users) << "seed " << s;
    // Every event names a real site and user, and a user never migrates:
    // all of one user's uploads originate from a single site.
    std::set<std::size_t> active_sites;
    std::map<std::size_t, std::size_t> user_site;
    for (const auto& ev : trial.events) {
      ASSERT_LT(ev.site, trial.sites.size());
      EXPECT_LT(ev.user, config.num_users) << "seed " << s;
      const auto [it, inserted] = user_site.emplace(ev.user, ev.site);
      if (!inserted) EXPECT_EQ(it->second, ev.site) << "seed " << s;
      active_sites.insert(ev.site);
    }
    // Uploads are not concentrated on a handful of sites.
    EXPECT_GE(active_sites.size(), trial.sites.size() / 2) << "seed " << s;
  }
}

TEST(TrialPropertyTest, EventsSpreadOverTheWholeWindow) {
  TrialConfig config;
  config.num_files = 6000;
  for (std::uint64_t s = 0; s < 5; ++s) {
    const Trial trial = generate_trial(config, test_seed(7000 + s));
    const double window = config.duration_days * 86400.0;
    std::array<std::size_t, 7> by_day{};
    for (const auto& ev : trial.events) {
      ASSERT_GE(ev.time, 0.0);
      ASSERT_LE(ev.time, window);
      const auto day = std::min<std::size_t>(
          6, static_cast<std::size_t>(ev.time / 86400.0));
      ++by_day[day];
    }
    // Figure 16 averages per day: every day must carry a usable sample.
    for (std::size_t d = 0; d < by_day.size(); ++d) {
      EXPECT_GT(by_day[d], config.num_files / 70) << "day " << d << " seed "
                                                  << s;
    }
  }
}

TEST(TrialPropertyTest, TotalBytesMatchesEventSum) {
  TrialConfig config;
  config.num_files = 3000;
  for (std::uint64_t s = 0; s < 3; ++s) {
    const Trial trial = generate_trial(config, test_seed(8000 + s));
    std::uint64_t sum = 0;
    for (const auto& ev : trial.events) sum += ev.bytes;
    EXPECT_EQ(sum, trial.total_bytes) << "seed " << s;
  }
}

TEST(TrialTest, DeterministicUnderSeed) {
  TrialConfig config;
  config.num_files = 1000;
  const Trial a = generate_trial(config, 9);
  const Trial b = generate_trial(config, 9);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].bytes, b.events[i].bytes);
    EXPECT_DOUBLE_EQ(a.events[i].time, b.events[i].time);
  }
}

}  // namespace
}  // namespace unidrive::workload
