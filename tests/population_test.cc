// Population harness tests: fleet-scale convergence, chaos soaks with
// scrub-and-repair, the invariant checker itself (including a negative
// control proving it detects real loss), light-state memory claims and
// seed-replay determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "common/clock.h"
#include "core/client.h"
#include "core/local_fs.h"
#include "metadata/types.h"
#include "repair/durability.h"
#include "sim/population/invariants.h"
#include "sim/population/population.h"
#include "sim/population/scenario.h"
#include "test_seed.h"

UNIDRIVE_REGISTER_SEED_LISTENER()

namespace unidrive::sim::population {
namespace {

using unidrive::testing::test_seed;

// A fleet small enough for a unit test but big enough that folders, polling
// wakes and audits all actually happen: ~80 sessions over the horizon.
FleetConfig small_fleet(std::uint64_t seed) {
  FleetConfig c;
  c.seed = seed;
  c.num_clients = 96;
  c.hot_folder_members = 16;
  c.clients_per_folder = 4;
  c.sessions_per_client_per_day = 30.0;  // compress days into the horizon
  c.horizon = 2400.0;
  c.mean_think = 20.0;
  c.poll_interval = 120.0;
  c.audit_interval = 600.0;
  c.audit_folders_per_tick = 2;
  c.max_live_sessions = 16;
  return c;
}

TEST(PopulationTest, SteadyFleetConvergesWithZeroLostUpdates) {
  auto scenario = make_scenario("steady");
  ASSERT_TRUE(scenario.is_ok());
  const FleetResult r = run_scenario(small_fleet(test_seed(101)),
                                     scenario.value());

  EXPECT_GT(r.sessions, 10u);
  EXPECT_GT(r.commits, 10u);
  EXPECT_GT(r.folders_touched, 2u);
  EXPECT_GT(r.audits, 0u);
  EXPECT_EQ(r.lost_updates, 0u);
  EXPECT_EQ(r.unrecoverable_segments, 0u);
  EXPECT_EQ(r.stale_devices, 0u);
  EXPECT_GT(r.cloud_stored_bytes, 0u);
  // Propagation latency flowed through the obs layer.
  const auto it = r.metrics.histograms.find("fleet.sync_latency");
  ASSERT_NE(it, r.metrics.histograms.end());
  EXPECT_GT(it->second.count, 0u);
  EXPECT_GT(it->second.p99, 0.0);
}

TEST(PopulationTest, ChaosSoakWithRepairKeepsDurabilityFlat) {
  auto scenario = make_scenario("chaos_soak");
  ASSERT_TRUE(scenario.is_ok());
  Scenario chaos = std::move(scenario).value();
  // Guarantee hot-folder traffic early so the mid-run silent-defect
  // injections find committed segments to attack.
  chaos.actions.push_back({0.05, "prime hot folder", [](PopulationHarness& h) {
                             h.flash_crowd(2 * h.config().max_live_sessions,
                                           100.0);
                           }});

  const FleetResult r = run_scenario(small_fleet(test_seed(202)), chaos);

  EXPECT_GT(r.commits, 10u);
  EXPECT_GT(r.audits, 0u);
  // The injectors really fired...
  EXPECT_GE(r.metrics.counter_value("fleet.injected_defects"), 1u);
  // ...and the fleet invariants held anyway: nothing lost, nothing below k
  // survivors, and no redundancy erosion the scrub anchors failed to ledger.
  EXPECT_EQ(r.lost_updates, 0u);
  EXPECT_EQ(r.unrecoverable_segments, 0u);
  EXPECT_EQ(r.underrep_unledgered, 0u);
  EXPECT_EQ(r.stale_devices, 0u);
}

TEST(PopulationTest, QuotaAndChurnUnderLiveTraffic) {
  auto quota = make_scenario("quota_exhaustion");
  ASSERT_TRUE(quota.is_ok());
  Scenario s = std::move(quota).value();
  auto churn = make_scenario("cloud_churn");
  ASSERT_TRUE(churn.is_ok());
  for (auto& action : churn.value().actions) s.actions.push_back(action);

  FleetConfig cfg = small_fleet(test_seed(303));
  cfg.num_clients = 64;
  const FleetResult r = run_scenario(cfg, s);

  EXPECT_GT(r.commits, 5u);
  EXPECT_GE(r.metrics.counter_value("fleet.churn_adds"), 1u);
  EXPECT_EQ(r.lost_updates, 0u);
  EXPECT_EQ(r.unrecoverable_segments, 0u);
}

TEST(PopulationTest, IdleClientsAreLightAndFoldersLazy) {
  FleetConfig c;
  c.seed = test_seed(404);
  c.num_clients = 1'000'000;
  c.clients_per_folder = 4;
  c.hot_folder_members = 64;
  PopulationHarness harness(c);

  // The O(bytes)-per-idle-client claim: the only fleet-proportional state
  // is the light records plus the (null) folder pointer table.
  EXPECT_LE(harness.idle_state_bytes(), 64u);
  EXPECT_EQ(harness.num_clients(), 1'000'000u);
  EXPECT_GT(harness.num_folders(), 200'000u);

  // Membership is a partition: every client maps into its folder's range.
  for (const std::size_t client : {0ul, 63ul, 64ul, 67ul, 68ul, 999'999ul}) {
    const std::size_t folder = harness.folder_of(client);
    ASSERT_LT(folder, harness.num_folders());
  }
  EXPECT_EQ(harness.folder_of(0), 0u);
  EXPECT_EQ(harness.folder_of(63), 0u);
  EXPECT_EQ(harness.folder_of(64), 1u);
  EXPECT_EQ(harness.folder_of(67), 1u);
  EXPECT_EQ(harness.folder_of(68), 2u);
}

TEST(PopulationTest, SameSeedReplaysIdentically) {
  auto scenario = make_scenario("steady");
  ASSERT_TRUE(scenario.is_ok());

  FleetConfig cfg = small_fleet(test_seed(505));
  cfg.num_clients = 48;
  cfg.horizon = 1200.0;
  // Single-threaded clients: thread interleaving is the one nondeterminism
  // the virtual-time design cannot absorb.
  cfg.client_threads = 1;
  cfg.connections_per_cloud = 1;

  const FleetResult a = run_scenario(cfg, scenario.value());
  const FleetResult b = run_scenario(cfg, scenario.value());
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.syncs, b.syncs);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.folders_touched, b.folders_touched);
  EXPECT_EQ(a.lost_updates, b.lost_updates);
  EXPECT_EQ(a.cloud_stored_bytes, b.cloud_stored_bytes);
}

// --- invariant checker unit tests -------------------------------------------

TEST(FolderOracleTest, LaterVersionsWinAndDeletesDoNotResurrect) {
  FolderOracle oracle;
  oracle.record_commit("/a", 1, 5);
  oracle.record_commit("/a", 2, 4);  // stale: ignored
  ASSERT_EQ(oracle.expected().at("/a").token, 1u);

  oracle.record_commit("/a", 3, 6);
  ASSERT_EQ(oracle.expected().at("/a").token, 3u);

  oracle.record_delete("/a", 7);
  EXPECT_EQ(oracle.expected().count("/a"), 0u);
  oracle.record_commit("/a", 4, 6);  // late record from before the delete
  EXPECT_EQ(oracle.expected().count("/a"), 0u);
  oracle.record_commit("/a", 5, 8);  // genuinely new edit after the delete
  ASSERT_EQ(oracle.expected().at("/a").token, 5u);
}

// Real client stack, real drops: the checker must notice when a segment
// falls below k survivors and when committed content becomes unrestorable —
// the negative control proving the soak gates can actually fail.
TEST(InvariantCheckerTest, DetectsRealLossNegativeControl) {
  ManualClock clock;
  cloud::MultiCloud clouds;
  std::vector<std::shared_ptr<cloud::MemoryCloud>> raw;
  for (int i = 0; i < 5; ++i) {
    auto memory = std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "c" + std::to_string(i));
    raw.push_back(memory);
    clouds.push_back(std::make_shared<cloud::FaultyCloud>(
        memory, cloud::FaultProfile{}, test_seed(1000) + i,
        [&clock](Duration d) { clock.advance(d); }));
  }
  core::ClientConfig cfg;
  cfg.device = "writer";
  cfg.theta = 64 << 10;
  cfg.sleep = [&clock](Duration d) { clock.advance(d); };

  auto fs = std::make_shared<core::MemoryLocalFs>();
  core::UniDriveClient writer(clouds, fs, cfg, clock, Rng(test_seed(11)));
  FolderOracle oracle;
  Rng rng(test_seed(12));
  for (int t = 1; t <= 2; ++t) {
    Bytes content = rng.bytes(400);
    const std::string marker = token_marker(static_cast<std::uint64_t>(t));
    content.insert(content.end(), marker.begin(), marker.end());
    const std::string path = "/f" + std::to_string(t);
    ASSERT_TRUE(fs->write(path, ByteSpan(content)).is_ok());
    auto report = writer.sync();
    ASSERT_TRUE(report.is_ok());
    ASSERT_TRUE(report.value().committed);
    oracle.record_commit(path, static_cast<std::uint64_t>(t),
                         report.value().version.counter);
  }

  const auto audit_with_fresh_reader = [&](const repair::DurabilityTracker*
                                               ledger) {
    auto reader_fs = std::make_shared<core::MemoryLocalFs>();
    core::ClientConfig reader_cfg = cfg;
    reader_cfg.device = "reader";
    core::UniDriveClient reader(clouds, reader_fs, reader_cfg, clock,
                                Rng(test_seed(13)));
    (void)reader.sync();  // may fail once blocks are gone; audit anyway
    AuditContext ctx;
    // The committed image is the ground truth for what SHOULD be durable;
    // the fresh reader's restored folder is what actually IS readable.
    ctx.image = &writer.image();
    ctx.fs = reader_fs.get();
    ctx.oracle = &oracle;
    for (const auto& memory : raw) ctx.raw[memory->id()] = memory.get();
    ctx.ledger = ledger;
    ctx.k = cfg.k;
    ctx.redundancy_floor = cfg.redundancy_floor;
    return audit_folder(ctx);
  };

  // Healthy baseline: everything restorable, full survivorship.
  const AuditOutcome healthy = audit_with_fresh_reader(nullptr);
  EXPECT_EQ(healthy.expected_tokens, 2u);
  EXPECT_EQ(healthy.missing_tokens, 0u);
  EXPECT_EQ(healthy.unrecoverable, 0u);
  EXPECT_GE(healthy.min_survivors, cfg.k);

  // Erode one segment down to exactly k survivors: under-replicated, and
  // unledgered until a defect entry covers one of the missing placements.
  const metadata::SyncFolderImage& image = writer.image();
  ASSERT_FALSE(image.segments().empty());
  const auto& [victim_id, victim] = *image.segments().begin();
  ASSERT_GE(victim.blocks.size(), 4u);
  repair::DurabilityTracker tracker;

  const auto survivors = [&] {
    std::size_t n = 0;
    for (const metadata::BlockLocation& loc : victim.blocks) {
      if (raw[loc.cloud]
              ->download(metadata::block_path(victim_id, loc.block_index))
              .is_ok()) {
        ++n;
      }
    }
    return n;
  };
  const auto drop_to = [&](std::size_t target) {
    std::size_t remaining = survivors();
    metadata::BlockLocation dropped;
    for (const metadata::BlockLocation& loc : victim.blocks) {
      if (remaining <= target) break;
      const std::string path =
          metadata::block_path(victim_id, loc.block_index);
      if (raw[loc.cloud]->download(path).is_ok()) {
        EXPECT_TRUE(raw[loc.cloud]->remove(path).is_ok());
        dropped = loc;
        --remaining;
      }
    }
    return dropped;
  };

  const metadata::BlockLocation first = drop_to(cfg.k);  // == k survivors
  AuditOutcome eroded = audit_with_fresh_reader(&tracker);
  EXPECT_EQ(eroded.unrecoverable, 0u);
  EXPECT_GE(eroded.under_replicated, 1u);
  EXPECT_GE(eroded.underrep_unledgered, 1u);

  repair::Defect defect;
  defect.segment_id = victim_id;
  defect.block_index = first.block_index;
  defect.cloud = first.cloud;
  tracker.record(defect);
  eroded = audit_with_fresh_reader(&tracker);
  EXPECT_EQ(eroded.underrep_unledgered, 0u);  // erosion is ledgered now

  // One more drop takes the segment below k: unrecoverable AND lost content.
  drop_to(cfg.k - 1);
  ASSERT_LT(survivors(), cfg.k);

  const AuditOutcome lost = audit_with_fresh_reader(&tracker);
  EXPECT_GE(lost.unrecoverable, 1u);
  EXPECT_GE(lost.missing_tokens, 1u);
  EXPECT_LT(lost.min_survivors, cfg.k);
}

}  // namespace
}  // namespace unidrive::sim::population
