// Differential fuzz and dispatch coverage for the hardware-speed data plane.
//
// Every SIMD kernel (GF(2^8) multiply-accumulate / scale / fused dot,
// CRC32C, AES-128-CTR) is pinned byte-for-byte against its portable scalar
// reference twin over randomized lengths (zero, odd, large) and randomized
// head alignments — including pointers deliberately offset from the 64-byte
// allocation boundary — so unaligned heads and scalar tails are exercised.
// Known-answer vectors (RFC 3720, FIPS-197, NIST SP 800-38A, RFC 8439) pin
// the absolute semantics; the differential runs then transfer that anchor to
// every dispatch variant. Under UNIDRIVE_FORCE_SCALAR=1 both sides resolve
// to the same scalar code and the suite still passes (CI's degradation run).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/bytes.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "core/kernel_gauges.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/cipher.h"
#include "crypto/crc32.h"
#include "erasure/gf256.h"
#include "metadata/codec.h"
#include "obs/obs.h"
#include "test_seed.h"

namespace unidrive {
namespace {

using erasure::Gf256;
using testing::test_seed;

UNIDRIVE_REGISTER_SEED_LISTENER();

Bytes from_hex(const std::string& hex) {
  Bytes out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

// Random length mixing tiny, odd, and multi-vector sizes, plus a random
// head offset in [0, 64) so SIMD kernels see misaligned starts.
struct Arena {
  explicit Arena(Rng& rng, std::size_t max_len = 4096) {
    len = rng.next_below(4) == 0 ? rng.next_below(67)
                                 : rng.next_below(max_len);
    offset = rng.next_below(64);
  }
  std::size_t len;
  std::size_t offset;
};

// --- GF(2^8) slice kernels ----------------------------------------------------

TEST(GfKernelTest, MulAddMatchesScalarReference) {
  Rng rng(test_seed(0x6f1));
  for (int iter = 0; iter < 200; ++iter) {
    const Arena a(rng);
    AlignedBytes dst_buf(a.offset + a.len + 64, 0);
    AlignedBytes src_buf(a.offset + a.len + 64, 0);
    const Bytes fill_dst = rng.bytes(dst_buf.size());
    const Bytes fill_src = rng.bytes(src_buf.size());
    std::copy(fill_dst.begin(), fill_dst.end(), dst_buf.begin());
    std::copy(fill_src.begin(), fill_src.end(), src_buf.begin());
    AlignedBytes expect = dst_buf;
    const std::uint8_t coeff = static_cast<std::uint8_t>(rng.next());

    Gf256::mul_add_slice(dst_buf.data() + a.offset, src_buf.data() + a.offset,
                         a.len, coeff);
    Gf256::mul_add_slice_scalar(expect.data() + a.offset,
                                src_buf.data() + a.offset, a.len, coeff);
    ASSERT_EQ(dst_buf, expect) << "len=" << a.len << " off=" << a.offset
                               << " coeff=" << int(coeff);
  }
}

TEST(GfKernelTest, ScaleMatchesScalarReference) {
  Rng rng(test_seed(0x6f2));
  for (int iter = 0; iter < 200; ++iter) {
    const Arena a(rng);
    AlignedBytes buf(a.offset + a.len + 64, 0);
    const Bytes fill = rng.bytes(buf.size());
    std::copy(fill.begin(), fill.end(), buf.begin());
    AlignedBytes expect = buf;
    const std::uint8_t coeff = static_cast<std::uint8_t>(rng.next());

    Gf256::scale_slice(buf.data() + a.offset, a.len, coeff);
    Gf256::scale_slice_scalar(expect.data() + a.offset, a.len, coeff);
    ASSERT_EQ(buf, expect) << "len=" << a.len << " off=" << a.offset
                           << " coeff=" << int(coeff);
  }
}

TEST(GfKernelTest, DotMatchesScalarReference) {
  Rng rng(test_seed(0x6f3));
  for (int iter = 0; iter < 120; ++iter) {
    const Arena a(rng, 2048);
    // 0..20 rows: covers empty (must zero dst), one (pure scale), many
    // (crosses the kernel's row-group width).
    const std::size_t rows = rng.next_below(21);
    std::vector<AlignedBytes> srcs(rows);
    std::vector<const std::uint8_t*> ptrs(rows);
    std::vector<std::uint8_t> coeffs(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      const Bytes fill = rng.bytes(a.offset + a.len);
      srcs[r].assign(fill.begin(), fill.end());
      ptrs[r] = srcs[r].data() + a.offset;
      // Bias toward zero coefficients occasionally (skipped-row paths).
      coeffs[r] = rng.next_below(5) == 0
                      ? 0
                      : static_cast<std::uint8_t>(rng.next());
    }
    Bytes dst(a.len, 0xAA), expect(a.len, 0x55);  // distinct garbage: both
                                                  // must be fully overwritten
    Gf256::dot_slice(dst.data(), ptrs.data(), coeffs.data(), rows, a.len);
    Gf256::dot_slice_scalar(expect.data(), ptrs.data(), coeffs.data(), rows,
                            a.len);
    ASSERT_EQ(dst, expect) << "len=" << a.len << " off=" << a.offset
                           << " rows=" << rows;
  }
}

TEST(GfKernelTest, DotEqualsMulAddComposition) {
  Rng rng(test_seed(0x6f4));
  for (int iter = 0; iter < 60; ++iter) {
    const std::size_t len = 1 + rng.next_below(1500);
    const std::size_t rows = 1 + rng.next_below(12);
    std::vector<Bytes> srcs(rows);
    std::vector<const std::uint8_t*> ptrs(rows);
    std::vector<std::uint8_t> coeffs(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      srcs[r] = rng.bytes(len);
      ptrs[r] = srcs[r].data();
      coeffs[r] = static_cast<std::uint8_t>(rng.next());
    }
    Bytes dot(len, 0xEE);
    Gf256::dot_slice(dot.data(), ptrs.data(), coeffs.data(), rows, len);
    Bytes acc(len, 0);
    for (std::size_t r = 0; r < rows; ++r) {
      Gf256::mul_add_slice(acc.data(), ptrs[r], len, coeffs[r]);
    }
    ASSERT_EQ(dot, acc);
  }
}

// --- CRC32C -------------------------------------------------------------------

TEST(Crc32cKernelTest, KnownVector) {
  const Bytes in = bytes_from_string("123456789");
  EXPECT_EQ(crypto::crc32c(ByteSpan(in)), 0xE3069283u);
  EXPECT_EQ(crypto::crc32c_sw(ByteSpan(in)), 0xE3069283u);
}

TEST(Crc32cKernelTest, MatchesSoftwareReference) {
  Rng rng(test_seed(0xc3c));
  for (int iter = 0; iter < 300; ++iter) {
    const Arena a(rng, 8192);
    const Bytes buf = rng.bytes(a.offset + a.len);
    const ByteSpan view = ByteSpan(buf).subspan(a.offset);
    const std::uint32_t seed = static_cast<std::uint32_t>(rng.next());
    ASSERT_EQ(crypto::crc32c(view, seed), crypto::crc32c_sw(view, seed))
        << "len=" << a.len << " off=" << a.offset;
  }
}

TEST(Crc32cKernelTest, ChainingComposesAcrossRandomSplits) {
  Rng rng(test_seed(0xc3d));
  for (int iter = 0; iter < 100; ++iter) {
    const Bytes buf = rng.bytes(1 + rng.next_below(4096));
    const ByteSpan all(buf);
    const std::size_t cut = rng.next_below(buf.size() + 1);
    const std::uint32_t whole = crypto::crc32c(all);
    const std::uint32_t chained =
        crypto::crc32c(all.subspan(cut), crypto::crc32c(all.first(cut)));
    ASSERT_EQ(whole, chained) << "cut=" << cut << " size=" << buf.size();
  }
}

// --- AES-128-CTR --------------------------------------------------------------

TEST(AesKernelTest, Fips197BlockVector) {
  // FIPS-197 Appendix C.1.
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes plain = from_hex("00112233445566778899aabbccddeeff");
  const Bytes expect = from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");
  crypto::Aes128::Key k{};
  std::memcpy(k.data(), key.data(), k.size());
  crypto::Aes128::Block p{};
  std::memcpy(p.data(), plain.data(), p.size());
  const auto c = crypto::Aes128(k).encrypt_block(p);
  EXPECT_TRUE(std::equal(expect.begin(), expect.end(), c.begin()));
}

TEST(AesKernelTest, Sp80038aCtrKeystream) {
  // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, with the 16-byte counter block
  // f0f1...ff mapped onto our (12-byte nonce, 32-bit counter) split.
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes plain = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes expect = from_hex(
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee");
  crypto::Aes128::Key k{};
  std::memcpy(k.data(), key.data(), k.size());
  crypto::Aes128::Nonce nonce;
  const Bytes nb = from_hex("f0f1f2f3f4f5f6f7f8f9fafb");
  std::memcpy(nonce.data(), nb.data(), nonce.size());
  Bytes out(plain.size());
  crypto::Aes128(k).ctr_xor(nonce, 0xfcfdfeffu, ByteSpan(plain), out.data());
  EXPECT_EQ(out, expect);
}

TEST(AesKernelTest, CtrMatchesScalarReference) {
  Rng rng(test_seed(0xae5));
  const auto key = crypto::aes128_key_from_passphrase("kernels");
  const crypto::Aes128 aes(key);
  for (int iter = 0; iter < 120; ++iter) {
    const Arena a(rng, 4096);
    const Bytes buf = rng.bytes(a.offset + a.len);
    const ByteSpan view = ByteSpan(buf).subspan(a.offset);
    crypto::Aes128::Nonce nonce;
    const Bytes nb = rng.bytes(nonce.size());
    std::memcpy(nonce.data(), nb.data(), nonce.size());
    const std::uint32_t counter0 = static_cast<std::uint32_t>(rng.next());
    Bytes got(a.len), expect(a.len);
    aes.ctr_xor(nonce, counter0, view, got.data());
    aes.ctr_xor_scalar(nonce, counter0, view, expect.data());
    ASSERT_EQ(got, expect) << "len=" << a.len << " off=" << a.offset;
  }
}

TEST(AesKernelTest, CtrRoundTripsInPlace) {
  Rng rng(test_seed(0xae6));
  const auto key = crypto::aes128_key_from_passphrase("roundtrip");
  const crypto::Aes128 aes(key);
  Bytes data = rng.bytes(3333);
  const Bytes original = data;
  crypto::Aes128::Nonce nonce{};
  aes.ctr_xor(nonce, 7, ByteSpan(data), data.data());  // encrypt in place
  EXPECT_NE(data, original);
  aes.ctr_xor(nonce, 7, ByteSpan(data), data.data());  // decrypt in place
  EXPECT_EQ(data, original);
}

// --- ChaCha20 -----------------------------------------------------------------

TEST(ChaChaKernelTest, Rfc8439Vector) {
  // RFC 8439 section 2.4.2 (counter starts at 1).
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce_b = from_hex("000000000000004a00000000");
  const std::string plain_s =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const Bytes expect = from_hex(
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b"
      "65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf"
      "500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a3"
      "5be6b40b8eedf2785e42874d");
  crypto::ChaCha20::Key k{};
  std::memcpy(k.data(), key.data(), k.size());
  crypto::ChaCha20::Nonce nonce;
  std::memcpy(nonce.data(), nonce_b.data(), nonce.size());
  const Bytes plain = bytes_from_string(plain_s);
  Bytes out(plain.size());
  crypto::ChaCha20(k).xor_stream(nonce, 1, ByteSpan(plain), out.data());
  EXPECT_EQ(out, expect);
}

TEST(ChaChaKernelTest, ChunkedEqualsOneShot) {
  Rng rng(test_seed(0xcc2));
  const auto key = crypto::chacha20_key_from_passphrase("kernels");
  const crypto::ChaCha20 chacha(key);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t len = 64 * (1 + rng.next_below(20));  // block-aligned
    const Bytes plain = rng.bytes(len);
    crypto::ChaCha20::Nonce nonce{};
    Bytes whole(len);
    chacha.xor_stream(nonce, 0, ByteSpan(plain), whole.data());
    // Same stream consumed in two block-aligned pieces with an advanced
    // counter must splice to the identical output.
    const std::size_t cut_blocks = rng.next_below(len / 64 + 1);
    const std::size_t cut = cut_blocks * 64;
    Bytes pieces(len);
    chacha.xor_stream(nonce, 0, ByteSpan(plain).first(cut), pieces.data());
    chacha.xor_stream(nonce, static_cast<std::uint32_t>(cut_blocks),
                      ByteSpan(plain).subspan(cut), pieces.data() + cut);
    ASSERT_EQ(whole, pieces) << "len=" << len << " cut=" << cut;
  }
}

// --- Cipher abstraction -------------------------------------------------------

TEST(CipherTest, AllKindsRoundTrip) {
  Rng rng(test_seed(0xc1f));
  for (const auto kind :
       {crypto::CipherKind::kDes, crypto::CipherKind::kAes128Ctr,
        crypto::CipherKind::kChaCha20}) {
    const crypto::Cipher cipher(kind, "round-trip");
    for (const std::size_t len : {std::size_t{0}, std::size_t{1},
                                  std::size_t{63}, std::size_t{1024}}) {
      const Bytes plain = rng.bytes(len);
      const Bytes frame = cipher.encrypt(ByteSpan(plain));
      ASSERT_FALSE(frame.empty());
      EXPECT_EQ(frame[0], static_cast<std::uint8_t>(kind));
      auto back = cipher.decrypt(ByteSpan(frame));
      ASSERT_TRUE(back.is_ok()) << crypto::cipher_name(kind);
      EXPECT_EQ(back.value(), plain) << crypto::cipher_name(kind);
    }
  }
}

TEST(CipherTest, DecryptDispatchesOnFrameTagAcrossKinds) {
  // A client reconfigured to a different cipher must still read frames
  // written under any other kind (same passphrase).
  Rng rng(test_seed(0xc20));
  const Bytes plain = rng.bytes(500);
  for (const auto writer :
       {crypto::CipherKind::kDes, crypto::CipherKind::kAes128Ctr,
        crypto::CipherKind::kChaCha20}) {
    const Bytes frame =
        crypto::Cipher(writer, "shared").encrypt(ByteSpan(plain));
    for (const auto reader :
         {crypto::CipherKind::kDes, crypto::CipherKind::kAes128Ctr,
          crypto::CipherKind::kChaCha20}) {
      auto back = crypto::Cipher(reader, "shared").decrypt(ByteSpan(frame));
      ASSERT_TRUE(back.is_ok());
      EXPECT_EQ(back.value(), plain);
    }
  }
}

TEST(CipherTest, DeterministicFrames) {
  const Bytes plain = bytes_from_string("same plaintext, same frame");
  for (const auto kind :
       {crypto::CipherKind::kDes, crypto::CipherKind::kAes128Ctr,
        crypto::CipherKind::kChaCha20}) {
    const crypto::Cipher cipher(kind, "determinism");
    EXPECT_EQ(cipher.encrypt(ByteSpan(plain)), cipher.encrypt(ByteSpan(plain)));
  }
}

TEST(CipherTest, NamesRoundTrip) {
  for (const auto kind :
       {crypto::CipherKind::kDes, crypto::CipherKind::kAes128Ctr,
        crypto::CipherKind::kChaCha20}) {
    auto parsed = crypto::cipher_from_name(crypto::cipher_name(kind));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(crypto::cipher_from_name("rot13").is_ok());
}

TEST(CipherTest, UnknownTagAndEmptyFrameRejected) {
  const crypto::Cipher cipher(crypto::CipherKind::kAes128Ctr, "x");
  EXPECT_FALSE(cipher.decrypt(ByteSpan{}).is_ok());
  const Bytes bogus = {0x7F, 1, 2, 3};
  EXPECT_FALSE(cipher.decrypt(ByteSpan(bogus)).is_ok());
}

TEST(CipherTest, CodecDetectsTamperUnderEveryCipher) {
  Rng rng(test_seed(0xc21));
  metadata::SyncFolderImage image;
  for (const auto kind :
       {crypto::CipherKind::kDes, crypto::CipherKind::kAes128Ctr,
        crypto::CipherKind::kChaCha20}) {
    const metadata::MetadataCodec codec("tamper", kind);
    Bytes frame = codec.encode_image(image);
    ASSERT_TRUE(codec.decode_image(ByteSpan(frame)).is_ok());
    // Flip one random ciphertext bit; the envelope (crc32c + SHA-256 inside
    // the encryption) must reject it.
    Bytes bad = frame;
    const std::size_t at = 1 + rng.next_below(bad.size() - 1);
    bad[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_FALSE(codec.decode_image(ByteSpan(bad)).is_ok())
        << crypto::cipher_name(kind) << " flip at " << at;
    // Wrong passphrase must also be rejected, not garbage-decoded.
    const metadata::MetadataCodec other("different", kind);
    EXPECT_FALSE(other.decode_image(ByteSpan(frame)).is_ok());
  }
}

// --- Dispatch layer -----------------------------------------------------------

TEST(DispatchTest, ResolvedKernelsConsistentWithCpuFeatures) {
  const CpuFeatures& f = cpu_features();
  // Touch all accessors so every kernel has resolved.
  const std::string gf = Gf256::kernel_name();
  const std::string crc = crypto::crc32c_kernel_name();
  const std::string aes = crypto::Aes128::kernel_name();
  const std::string chacha = crypto::ChaCha20::kernel_name();

  if (f.force_scalar) {
    EXPECT_EQ(gf, "scalar");
    EXPECT_EQ(crc, "scalar");
    EXPECT_EQ(aes, "scalar");
  } else {
    EXPECT_EQ(gf, f.avx2 ? "avx2" : (f.ssse3 ? "ssse3" : "scalar"));
    EXPECT_EQ(crc, f.sse42 ? "sse4.2" : "scalar");
    EXPECT_EQ(aes, f.aesni ? "aesni" : "scalar");
  }
  EXPECT_EQ(chacha, "portable");

  EXPECT_EQ(Gf256::kernel_tier() == 0, gf == "scalar");
  EXPECT_EQ(crypto::crc32c_kernel_tier() == 0, crc == "scalar");
  EXPECT_EQ(crypto::Aes128::kernel_tier() == 0, aes == "scalar");
  EXPECT_EQ(crypto::ChaCha20::kernel_tier(), 0);

  // Registry carries every kernel with the same impl names.
  bool saw_gf = false, saw_crc = false, saw_aes = false, saw_chacha = false;
  for (const ResolvedKernel& k : resolved_kernels()) {
    if (k.kernel == "gf_mul_add") { saw_gf = true; EXPECT_EQ(k.impl, gf); }
    if (k.kernel == "crc32c") { saw_crc = true; EXPECT_EQ(k.impl, crc); }
    if (k.kernel == "aes_ctr") { saw_aes = true; EXPECT_EQ(k.impl, aes); }
    if (k.kernel == "chacha20") {
      saw_chacha = true;
      EXPECT_EQ(k.impl, chacha);
    }
  }
  EXPECT_TRUE(saw_gf && saw_crc && saw_aes && saw_chacha);
}

TEST(DispatchTest, KernelGaugesExported) {
  obs::Observability obs;
  core::export_kernel_gauges(&obs);
  const auto snap = obs.metrics.snapshot();
  const std::string gf = Gf256::kernel_name();
  EXPECT_EQ(snap.gauges.at("cpu.kernel.gf_mul_add"),
            static_cast<double>(Gf256::kernel_tier()));
  EXPECT_EQ(snap.gauges.at("cpu.kernel.gf_mul_add." + gf), 1.0);
  EXPECT_EQ(snap.gauges.at("cpu.kernel.crc32c"),
            static_cast<double>(crypto::crc32c_kernel_tier()));
  EXPECT_EQ(snap.gauges.at(std::string("cpu.kernel.crc32c.") +
                           crypto::crc32c_kernel_name()),
            1.0);
  EXPECT_EQ(snap.gauges.at("cpu.kernel.chacha20.portable"), 1.0);
}

}  // namespace
}  // namespace unidrive
