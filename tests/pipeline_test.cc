// Tests for the staged sync pipeline: the Executor/BoundedQueue substrate,
// parallel erasure encode, the incremental StreamingUploadDriver, and the
// end-to-end UploadPipeline including cancellation under injected cloud
// hangs and the bounded-memory admission gate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <set>
#include <thread>

#include "cloud/async.h"
#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "common/executor.h"
#include "common/rng.h"
#include "core/change_scanner.h"
#include "core/client.h"
#include "core/local_fs.h"
#include "core/upload_pipeline.h"
#include "erasure/rs.h"
#include "sched/streaming_driver.h"

namespace unidrive::core {
namespace {

Bytes text(const std::string& s) { return bytes_from_string(s); }

cloud::MultiCloud make_clouds(int n) {
  cloud::MultiCloud clouds;
  for (int i = 0; i < n; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i)));
  }
  return clouds;
}

ClientConfig test_config(const std::string& device) {
  ClientConfig cfg;
  cfg.device = device;
  cfg.theta = 64 << 10;
  cfg.lock.retry.backoff_base = 0.001;
  cfg.lock.retry.backoff_cap = 0.01;
  cfg.driver.connections_per_cloud = 2;
  return cfg;
}

// Scoped setter for UNIDRIVE_PIPELINE_THREADS.
class ScopedPipelineThreadsEnv {
 public:
  explicit ScopedPipelineThreadsEnv(const char* value) {
    const char* old = std::getenv("UNIDRIVE_PIPELINE_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    setenv("UNIDRIVE_PIPELINE_THREADS", value, 1);
  }
  ~ScopedPipelineThreadsEnv() {
    if (had_old_) {
      setenv("UNIDRIVE_PIPELINE_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("UNIDRIVE_PIPELINE_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueueTest, FifoAndCloseDrains) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // closed + drained
}

TEST(BoundedQueueTest, PushBlocksUntilConsumerMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueueTest, CancelReleasesBlockedProducerAndDropsItems) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.cancel();
  producer.join();
  EXPECT_FALSE(q.pop().has_value());  // contents dropped
  EXPECT_EQ(q.depth(), 0u);
}

// --- Executor ---------------------------------------------------------------

TEST(ExecutorTest, ParallelApplyCoversAllIndices) {
  Executor executor(4);
  std::vector<std::atomic<int>> hits(100);
  executor.parallel_apply(hits.size(),
                          [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutorTest, ParallelApplySafeFromPoolThread) {
  // A submitted task fanning out again must not deadlock (the caller
  // participates in the fan-out).
  Executor executor(1);
  std::promise<int> done;
  executor.submit([&] {
    std::atomic<int> sum{0};
    executor.parallel_apply(10, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    done.set_value(sum.load());
  });
  auto fut = done.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(fut.get(), 45);
}

TEST(ExecutorTest, EnvVariableOverridesThreadCount) {
  ScopedPipelineThreadsEnv env("1");
  EXPECT_EQ(Executor::default_threads(8), 1u);
}

TEST(ExecutorTest, FloorAppliesWithoutEnvOverride) {
  // Whatever the hardware, the caller's floor is respected.
  ScopedPipelineThreadsEnv env("0");  // treated as unset (must be > 0)
  EXPECT_GE(Executor::default_threads(16), 16u);
}

// --- parallel encode --------------------------------------------------------

TEST(ParallelEncodeTest, MatchesSerialEncodeForEveryShard) {
  const erasure::RsCode code(16, 4);
  Rng rng(7);
  const Bytes segment = rng.bytes(200001);  // deliberately not shard-aligned
  std::vector<std::uint32_t> indices;
  for (std::uint32_t i = 0; i < 16; ++i) indices.push_back(i);

  const std::vector<erasure::Shard> serial =
      code.encode_shards(ByteSpan(segment), indices);
  for (const std::size_t threads : {1, 4}) {
    Executor executor(threads);
    const std::vector<erasure::Shard> parallel =
        code.encode_shards_parallel(ByteSpan(segment), indices, executor);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].index, serial[i].index);
      EXPECT_EQ(parallel[i].data, serial[i].data) << "shard " << i;
    }
  }
}

// --- StreamingUploadDriver --------------------------------------------------

TEST(StreamingDriverTest, IncrementalFeedPreservesPlacementInvariants) {
  const sched::CodeParams params{4, 3, 2, 3};
  ASSERT_TRUE(params.validate().is_ok());
  const std::vector<cloud::CloudId> clouds{0, 1, 2, 3};
  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);

  std::mutex mu;
  std::map<std::string, std::set<std::uint32_t>> uploaded;
  const sched::TransferFn transfer = [&](const sched::BlockTask& task) {
    std::lock_guard<std::mutex> g(mu);
    uploaded[task.segment_id].insert(task.block_index);
    return Status::ok();
  };

  std::mutex settled_mu;
  std::set<std::string> settled;
  sched::StreamingUploadDriver driver(
      params, clouds, sched::DriverConfig{2, 3}, monitor, executor, transfer,
      sched::UploadOptions{}, nullptr, nullptr,
      [&](const std::string& id) {
        std::lock_guard<std::mutex> g(settled_mu);
        settled.insert(id);
      });

  // Files arrive one by one while transfers are already running.
  for (int i = 0; i < 3; ++i) {
    sched::UploadFileSpec spec;
    spec.path = "/f" + std::to_string(i);
    spec.segments.push_back({"seg" + std::to_string(i), 64 << 10});
    driver.add_file(std::move(spec));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  driver.close();
  driver.wait();

  for (int i = 0; i < 3; ++i) {
    const std::string id = "seg" + std::to_string(i);
    const auto locations = driver.locations(id);
    // Availability floor: >= k distinct blocks landed.
    std::set<std::uint32_t> distinct;
    std::map<cloud::CloudId, std::size_t> per_cloud;
    for (const auto& b : locations) {
      distinct.insert(b.block_index);
      ++per_cloud[b.cloud];
      EXPECT_LT(b.block_index, params.code_n());
    }
    EXPECT_GE(distinct.size(), params.k);
    // Security ceiling holds per cloud.
    for (const auto& [cloud, count] : per_cloud) {
      EXPECT_LE(count, params.max_per_cloud());
    }
    // Every placed block was actually transferred, and vice versa.
    EXPECT_EQ(uploaded[id].size(), distinct.size());
    // Memory-release contract: every segment settled by the end.
    EXPECT_EQ(settled.count(id), 1u);
  }
}

// --- UploadPipeline: cancellation under a hanging cloud ---------------------

// Blocks every injected hang until the test opens the gate.
struct HangGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void release() {
    {
      std::lock_guard<std::mutex> g(mu);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
};

TEST(UploadPipelineTest, CancelUnderHangingCloudReleasesProducerAndBytes) {
  const sched::CodeParams params{2, 2, 1, 2};
  ASSERT_TRUE(params.validate().is_ok());

  HangGate gate;
  cloud::FaultProfile hang_profile;
  hang_profile.hang_rate = 1.0;
  hang_profile.hang_seconds = 1.0;
  std::vector<std::shared_ptr<cloud::FaultyCloud>> faulty;
  for (int i = 0; i < 2; ++i) {
    faulty.push_back(std::make_shared<cloud::FaultyCloud>(
        std::make_shared<cloud::MemoryCloud>(static_cast<cloud::CloudId>(i),
                                             "c" + std::to_string(i)),
        hang_profile, /*seed=*/i + 1,
        [&gate](Duration) { gate.wait(); }));
  }

  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);
  PipelineConfig pipeline_config;
  pipeline_config.encode_queue_capacity = 2;
  // One 64 KiB segment's footprint (plaintext + 4 shards of 32 KiB) fits;
  // a second does not, so its producer blocks on the admission gate.
  pipeline_config.max_inflight_bytes = 200 << 10;

  UploadPipeline pipeline(
      params, erasure::RsCode(16, params.k), {0, 1}, sched::DriverConfig{2, 3},
      monitor, executor,
      [&](cloud::CloudId id) -> cloud::CloudProvider* {
        return faulty[id].get();
      },
      pipeline_config, nullptr, nullptr);

  Rng rng(11);
  pipeline.feed("hang-seg", rng.bytes(64 << 10));

  // Wait until a transfer is actually stuck inside the injected hang.
  for (int spin = 0; spin < 5000; ++spin) {
    if (faulty[0]->hangs() + faulty[1]->hangs() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(faulty[0]->hangs() + faulty[1]->hangs(), 0u);

  // A second segment cannot be admitted while the first is wedged: its
  // producer must block, and cancel() must release it.
  std::atomic<bool> producer_done{false};
  std::thread producer([&] {
    pipeline.feed("blocked-seg", rng.bytes(64 << 10));
    producer_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(producer_done.load());

  pipeline.cancel();
  producer.join();  // released without the cloud ever answering
  EXPECT_TRUE(producer_done.load());

  gate.release();  // let the stuck transfers finish their current request
  const auto result = pipeline.finish();
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), ErrorCode::kUnavailable);
  // No queued segment bytes leaked past the drain.
  EXPECT_EQ(pipeline.inflight_bytes(), 0u);
}

// --- UploadPipeline: completion-based (async) transfer mode ------------------

// Builds async twins of `providers` over `io` and returns a resolver for
// the pipeline's FindAsyncCloudFn slot. The twins must outlive the
// pipeline, so the caller keeps the returned vector alive.
cloud::AsyncMultiCloud async_twins(const cloud::MultiCloud& providers,
                                   Executor* io) {
  cloud::AsyncContext ctx;
  ctx.io = io;
  cloud::AsyncMultiCloud twins;
  for (const auto& p : providers) twins.push_back(cloud::to_async(p, ctx));
  return twins;
}

FindAsyncCloudFn async_lookup(const cloud::AsyncMultiCloud& twins) {
  return [&twins](cloud::CloudId id) -> cloud::AsyncCloud* {
    return twins[id].get();
  };
}

TEST(UploadPipelineTest, AsyncTransfersRoundTripDirectly) {
  const sched::CodeParams params{4, 3, 2, 3};
  ASSERT_TRUE(params.validate().is_ok());

  cloud::MultiCloud clouds = make_clouds(4);
  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);
  cloud::AsyncMultiCloud twins = async_twins(clouds, executor.get());

  UploadPipeline pipeline(
      params, erasure::RsCode(16, params.k), {0, 1, 2, 3},
      sched::DriverConfig{2, 3}, monitor, executor,
      [&](cloud::CloudId id) -> cloud::CloudProvider* {
        return clouds[id].get();
      },
      PipelineConfig{}, nullptr, nullptr, async_lookup(twins));

  Rng rng(21);
  for (int i = 0; i < 6; ++i) {
    pipeline.feed("seg" + std::to_string(i), rng.bytes(64 << 10));
  }
  const auto result = pipeline.finish();
  ASSERT_TRUE(result.is_ok()) << result.status().message();
  ASSERT_EQ(result.value().size(), 6u);
  for (const auto& seg : result.value()) {
    EXPECT_GE(seg.blocks.size(), params.k) << seg.id;
  }
  EXPECT_EQ(pipeline.inflight_bytes(), 0u);
  std::uint64_t stored = 0;
  for (const auto& c : clouds) {
    stored +=
        std::static_pointer_cast<cloud::MemoryCloud>(c)->stored_bytes();
  }
  EXPECT_GT(stored, 0u);
}

// The async analog of the hang-cancellation test: cancelling mid-flight
// with completion-based transfers must release the blocked producer and
// every reserved byte, and finish() must drain without the cloud ever
// answering promptly.
TEST(UploadPipelineTest, AsyncCancelUnderHangingCloudReleasesProducer) {
  const sched::CodeParams params{2, 2, 1, 2};
  ASSERT_TRUE(params.validate().is_ok());

  HangGate gate;
  cloud::FaultProfile hang_profile;
  hang_profile.hang_rate = 1.0;
  hang_profile.hang_seconds = 1.0;
  cloud::MultiCloud faulty;
  std::vector<std::shared_ptr<cloud::FaultyCloud>> handles;
  for (int i = 0; i < 2; ++i) {
    auto f = std::make_shared<cloud::FaultyCloud>(
        std::make_shared<cloud::MemoryCloud>(static_cast<cloud::CloudId>(i),
                                             "c" + std::to_string(i)),
        hang_profile, /*seed=*/i + 1, [&gate](Duration) { gate.wait(); });
    handles.push_back(f);
    faulty.push_back(f);
  }

  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);
  cloud::AsyncMultiCloud twins = async_twins(faulty, executor.get());
  PipelineConfig pipeline_config;
  pipeline_config.encode_queue_capacity = 2;
  pipeline_config.max_inflight_bytes = 200 << 10;

  {
    UploadPipeline pipeline(
        params, erasure::RsCode(16, params.k), {0, 1},
        sched::DriverConfig{2, 3}, monitor, executor,
        [&](cloud::CloudId id) -> cloud::CloudProvider* {
          return faulty[id].get();
        },
        pipeline_config, nullptr, nullptr, async_lookup(twins));

    Rng rng(12);
    pipeline.feed("hang-seg", rng.bytes(64 << 10));
    for (int spin = 0; spin < 5000; ++spin) {
      if (handles[0]->hangs() + handles[1]->hangs() > 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(handles[0]->hangs() + handles[1]->hangs(), 0u);

    std::atomic<bool> producer_done{false};
    std::thread producer([&] {
      pipeline.feed("blocked-seg", rng.bytes(64 << 10));
      producer_done.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(producer_done.load());

    pipeline.cancel();
    producer.join();
    EXPECT_TRUE(producer_done.load());

    gate.release();  // let the wedged completions resolve
    const auto result = pipeline.finish();
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(pipeline.inflight_bytes(), 0u);
  }
  // The pipeline destructor waited out every launched completion, so the
  // async twins (and their executor) can be torn down safely here.
}

// --- end-to-end sync through the pipeline -----------------------------------

TEST(PipelineSyncTest, RoundTripsAcrossDevices) {
  cloud::MultiCloud clouds = make_clouds(4);
  auto fs_a = std::make_shared<MemoryLocalFs>();
  UniDriveClient a(clouds, fs_a, test_config("a"));

  Rng rng(3);
  const Bytes big = rng.bytes(600 << 10);  // ~10 segments at theta=64K
  ASSERT_TRUE(fs_a->write("/big.bin", ByteSpan(big)).is_ok());
  ASSERT_TRUE(fs_a->write("/note.txt", ByteSpan(text("hello"))).is_ok());

  const auto report = a.sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().committed);
  EXPECT_GT(report.value().segments_uploaded, 1u);
  EXPECT_TRUE(report.value().materialize.is_ok());

  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient b(clouds, fs_b, test_config("b"));
  const auto applied = b.sync();
  ASSERT_TRUE(applied.is_ok());
  EXPECT_TRUE(applied.value().applied_cloud);
  EXPECT_EQ(fs_b->read("/big.bin").value(), big);
  EXPECT_EQ(fs_b->read("/note.txt").value(), text("hello"));
}

TEST(PipelineSyncTest, MonolithicModeMatchesPipelinedResult) {
  cloud::MultiCloud clouds = make_clouds(4);
  auto fs_a = std::make_shared<MemoryLocalFs>();
  ClientConfig cfg = test_config("a");
  cfg.pipeline.enabled = false;  // legacy batch round
  UniDriveClient a(clouds, fs_a, cfg);

  Rng rng(4);
  const Bytes data = rng.bytes(300 << 10);
  ASSERT_TRUE(fs_a->write("/data.bin", ByteSpan(data)).is_ok());
  const auto report = a.sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().committed);
  EXPECT_GT(report.value().segments_uploaded, 0u);

  // A pipelined reader reconstructs the batch-uploaded data.
  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient b(clouds, fs_b, test_config("b"));
  ASSERT_TRUE(b.sync().is_ok());
  EXPECT_EQ(fs_b->read("/data.bin").value(), data);
}

TEST(PipelineSyncTest, InflightBytesStayUnderCapAndDrainToZero) {
  cloud::MultiCloud clouds = make_clouds(4);
  auto fs = std::make_shared<MemoryLocalFs>();
  ClientConfig cfg = test_config("a");
  // Tight cap: a 64 KiB segment's footprint is ~235 KiB (plaintext + 8
  // shards of ~21 KiB), so at most two segments fit in flight at once.
  cfg.pipeline.max_inflight_bytes = 512 << 10;
  UniDriveClient client(clouds, fs, cfg);

  Rng rng(5);
  ASSERT_TRUE(fs->write("/big.bin", ByteSpan(rng.bytes(2 << 20))).is_ok());
  const auto report = client.sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report.value().segments_uploaded, 10u);

  const auto& metrics = report.value().metrics;
  const double peak = metrics.gauge_value("pipeline.inflight_bytes_peak");
  EXPECT_GT(peak, 0.0);
  EXPECT_LE(peak, static_cast<double>(cfg.pipeline.max_inflight_bytes));
  // Everything reserved was released by the end of the round.
  EXPECT_EQ(metrics.gauge_value("pipeline.inflight_bytes"), 0.0);
}

TEST(PipelineSyncTest, SingleThreadedDegradationStillRoundTrips) {
  ScopedPipelineThreadsEnv env("1");
  cloud::MultiCloud clouds = make_clouds(4);
  auto fs_a = std::make_shared<MemoryLocalFs>();
  UniDriveClient a(clouds, fs_a, test_config("a"));
  Rng rng(6);
  const Bytes data = rng.bytes(200 << 10);
  ASSERT_TRUE(fs_a->write("/one.bin", ByteSpan(data)).is_ok());
  const auto report = a.sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().committed);

  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient b(clouds, fs_b, test_config("b"));
  ASSERT_TRUE(b.sync().is_ok());
  EXPECT_EQ(fs_b->read("/one.bin").value(), data);
}

// The SyncAdapter fallback contract: forcing the blocking one-thread-per-
// RPC path (async_transfers = false) must leave every roundtrip intact.
TEST(PipelineSyncTest, BlockingTransferFallbackStillRoundTrips) {
  cloud::MultiCloud clouds = make_clouds(4);
  auto fs_a = std::make_shared<MemoryLocalFs>();
  ClientConfig cfg = test_config("a");
  cfg.pipeline.async_transfers = false;
  UniDriveClient a(clouds, fs_a, cfg);

  Rng rng(7);
  const Bytes data = rng.bytes(256 << 10);
  ASSERT_TRUE(fs_a->write("/fallback.bin", ByteSpan(data)).is_ok());
  const auto report = a.sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().committed);

  // An async-mode reader reconstructs what the blocking writer uploaded.
  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient b(clouds, fs_b, test_config("b"));
  ASSERT_TRUE(b.sync().is_ok());
  EXPECT_EQ(fs_b->read("/fallback.bin").value(), data);
}

// A dedicated I/O pool (pipeline.io_threads > 0) carves the SyncAdapter
// leaf RPCs out of the pipeline executor; the roundtrip must be unchanged.
TEST(PipelineSyncTest, DedicatedIoPoolRoundTrips) {
  cloud::MultiCloud clouds = make_clouds(4);
  auto fs_a = std::make_shared<MemoryLocalFs>();
  ClientConfig cfg = test_config("a");
  cfg.pipeline.io_threads = 3;
  UniDriveClient a(clouds, fs_a, cfg);

  Rng rng(8);
  const Bytes data = rng.bytes(256 << 10);
  ASSERT_TRUE(fs_a->write("/dedicated.bin", ByteSpan(data)).is_ok());
  const auto report = a.sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().committed);

  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient b(clouds, fs_b, test_config("b"));
  ASSERT_TRUE(b.sync().is_ok());
  EXPECT_EQ(fs_b->read("/dedicated.bin").value(), data);
}

// Async transfers are the default: the in-flight RPC gauges must report
// launches, proving the completion-based path (not the blocking fallback)
// actually carried the round.
TEST(PipelineSyncTest, AsyncModeReportsInflightRpcGauges) {
  cloud::MultiCloud clouds = make_clouds(4);
  auto fs = std::make_shared<MemoryLocalFs>();
  UniDriveClient client(clouds, fs, test_config("a"));
  Rng rng(9);
  ASSERT_TRUE(fs->write("/gauged.bin", ByteSpan(rng.bytes(300 << 10))).is_ok());
  const auto report = client.sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().committed);

  const auto& metrics = report.value().metrics;
  EXPECT_GT(metrics.gauge_value("driver.up.rpcs_inflight_peak"), 0.0);
  EXPECT_EQ(metrics.gauge_value("driver.up.rpcs_inflight"), 0.0);
}

// --- directory-failure surfacing (apply_cloud_image bugfix) -----------------

// Forwards to MemoryLocalFs but refuses to create directories.
class FailingDirFs final : public LocalFs {
 public:
  Result<Bytes> read(const std::string& path) const override {
    return inner_.read(path);
  }
  Status write(const std::string& path, ByteSpan data) override {
    return inner_.write(path, data);
  }
  Status remove(const std::string& path) override {
    return inner_.remove(path);
  }
  Status make_dir(const std::string&) override {
    return make_error(ErrorCode::kInternal, "injected make_dir failure");
  }
  Status remove_dir(const std::string& path) override {
    return inner_.remove_dir(path);
  }
  [[nodiscard]] std::vector<std::string> list_files() const override {
    return inner_.list_files();
  }
  [[nodiscard]] std::vector<std::string> list_dirs() const override {
    return inner_.list_dirs();
  }
  [[nodiscard]] Result<std::uint64_t> size(
      const std::string& path) const override {
    return inner_.size(path);
  }
  [[nodiscard]] Result<double> mtime(const std::string& path) const override {
    return inner_.mtime(path);
  }

 private:
  MemoryLocalFs inner_;
};

TEST(PipelineSyncTest, DirectoryFailuresSurfaceInReport) {
  cloud::MultiCloud clouds = make_clouds(4);
  auto fs_a = std::make_shared<MemoryLocalFs>();
  UniDriveClient a(clouds, fs_a, test_config("a"));
  ASSERT_TRUE(fs_a->make_dir("/docs").is_ok());
  ASSERT_TRUE(fs_a->write("/readme", ByteSpan(text("root file"))).is_ok());
  ASSERT_TRUE(a.sync().is_ok());

  auto fs_b = std::make_shared<FailingDirFs>();
  UniDriveClient b(clouds, fs_b, test_config("b"));
  const auto report = b.sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().applied_cloud);
  // The old code swallowed make_dir failures with (void); now they are
  // recorded and the materialization status reflects the incomplete folder.
  ASSERT_EQ(report.value().dir_failures.size(), 1u);
  EXPECT_EQ(report.value().dir_failures[0], "/docs");
  EXPECT_FALSE(report.value().materialize.is_ok());
  // Files still materialized despite the directory failure.
  EXPECT_EQ(fs_b->read("/readme").value(), text("root file"));
}

// --- scan sink --------------------------------------------------------------

TEST(ScanSinkTest, SinkReceivesExactlyTheNewSegments) {
  MemoryLocalFs fs;
  Rng rng(9);
  const Bytes content = rng.bytes(150 << 10);
  ASSERT_TRUE(fs.write("/f.bin", ByteSpan(content)).is_ok());
  metadata::SyncFolderImage image;
  const chunker::SegmenterParams params{64 << 10};

  const ScanResult batch = scan_local_changes(fs, image, params, "dev");

  std::map<std::string, Bytes> sunk;
  const ScanResult streamed = scan_local_changes(
      fs, image, params, "dev", nullptr,
      [&](const std::string& id, Bytes bytes) {
        sunk.emplace(id, std::move(bytes));
      });
  // With a sink, segments stream out instead of accumulating in the result.
  EXPECT_TRUE(streamed.new_segments.empty());
  ASSERT_EQ(sunk.size(), batch.new_segments.size());
  for (const auto& [id, bytes] : batch.new_segments) {
    ASSERT_EQ(sunk.count(id), 1u);
    EXPECT_EQ(sunk[id], bytes);
  }
}

}  // namespace
}  // namespace unidrive::core
