// Unit tests for the unified resilience layer: RetryPolicy/retry_call
// (common/retry.h), the CloudHealthRegistry circuit breaker (cloud/health.h)
// and the RetryingCloud / DeadlineCloud decorators (cloud/retrying_cloud.h),
// plus the torn-upload and hang fault injectors in FaultyCloud.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cloud/faulty_cloud.h"
#include "cloud/health.h"
#include "cloud/memory_cloud.h"
#include "cloud/retrying_cloud.h"
#include "common/clock.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"

namespace unidrive {
namespace {

Bytes text(const std::string& s) { return Bytes(s.begin(), s.end()); }

// Deterministic retry environment: sleeping advances a manual clock and is
// recorded, so tests assert on the exact backoff schedule.
struct TestEnv {
  ManualClock clock;
  std::vector<Duration> sleeps;

  RetryEnv env() {
    RetryEnv e;
    e.clock = &clock;
    e.sleep = [this](Duration d) {
      sleeps.push_back(d);
      clock.advance(d);
    };
    e.rng = Rng(42);
    return e;
  }
};

// --- retry_call ---------------------------------------------------------------

TEST(RetryCallTest, FirstAttemptSuccessDoesNotSleep) {
  TestEnv t;
  RetryEnv env = t.env();
  int calls = 0;
  const Status s = retry_call(RetryPolicy{}, env, [&] {
    ++calls;
    return Status::ok();
  });
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(t.sleeps.empty());
}

TEST(RetryCallTest, TransientFailuresRetriedUntilSuccess) {
  TestEnv t;
  RetryEnv env = t.env();
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_base = 0.1;
  policy.backoff_cap = 1.0;
  int calls = 0;
  const Status s = retry_call(policy, env, [&]() -> Status {
    if (++calls < 3) return make_error(ErrorCode::kUnavailable, "flap");
    return Status::ok();
  });
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(t.sleeps.size(), 2u);
  for (const Duration d : t.sleeps) {
    EXPECT_GE(d, policy.backoff_base);
    EXPECT_LE(d, policy.backoff_cap);
  }
}

TEST(RetryCallTest, NonTransientErrorSurfacesImmediately) {
  TestEnv t;
  RetryEnv env = t.env();
  int calls = 0;
  const Status s = retry_call(RetryPolicy{}, env, [&] {
    ++calls;
    return make_error(ErrorCode::kNotFound, "gone");
  });
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(t.sleeps.empty());
}

TEST(RetryCallTest, AttemptBudgetExhaustedReturnsLastError) {
  TestEnv t;
  RetryEnv env = t.env();
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base = 0.01;
  policy.backoff_cap = 0.05;
  int calls = 0;
  const Status s = retry_call(policy, env, [&] {
    ++calls;
    return make_error(ErrorCode::kUnavailable, "still down");
  });
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(t.sleeps.size(), 2u);  // no sleep after the final attempt
}

TEST(RetryCallTest, SingleShotNeverRetries) {
  TestEnv t;
  RetryEnv env = t.env();
  int calls = 0;
  const Status s = retry_call(RetryPolicy::single_shot(), env, [&] {
    ++calls;
    return make_error(ErrorCode::kUnavailable, "down");
  });
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 1);
}

TEST(RetryCallTest, TotalDeadlineStopsBeforeSleepingPastBudget) {
  TestEnv t;
  RetryEnv env = t.env();
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.backoff_base = 10.0;  // every pause is at least 10 s
  policy.backoff_cap = 10.0;
  policy.total_deadline = 5.0;
  int calls = 0;
  const Status s = retry_call(policy, env, [&] {
    ++calls;
    return make_error(ErrorCode::kUnavailable, "down");
  });
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_EQ(calls, 1);  // the 10 s pause would overrun the 5 s budget
  EXPECT_TRUE(t.sleeps.empty());
}

TEST(RetryCallTest, SlowSuccessMapsToTimeout) {
  TestEnv t;
  RetryEnv env = t.env();
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base = 0.01;
  policy.backoff_cap = 0.01;
  policy.attempt_deadline = 1.0;
  int calls = 0;
  const Status s = retry_call(policy, env, [&] {
    ++calls;
    t.clock.advance(5.0);  // the "request" stalls well past the deadline
    return Status::ok();
  });
  // Both attempts came back OK but too late; the result is a timeout.
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_EQ(calls, 2);
}

TEST(RetryCallTest, ResultFlavourReturnsValueOfSuccessfulAttempt) {
  TestEnv t;
  RetryEnv env = t.env();
  int calls = 0;
  const Result<int> r =
      retry_call<int>(RetryPolicy{}, env, [&]() -> Result<int> {
        if (++calls < 2) return make_error(ErrorCode::kTimeout, "slow");
        return 7;
      });
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(calls, 2);
}

TEST(BackoffStateTest, StaysWithinBaseAndCap) {
  RetryPolicy policy;
  policy.backoff_base = 0.2;
  policy.backoff_cap = 3.0;
  BackoffState backoff(policy);
  Rng rng(7);
  Duration prev = 0;
  bool grew = false;
  for (int i = 0; i < 200; ++i) {
    const Duration d = backoff.next(rng);
    EXPECT_GE(d, policy.backoff_base);
    EXPECT_LE(d, policy.backoff_cap);
    if (d > prev) grew = true;
    prev = d;
  }
  EXPECT_TRUE(grew);  // the jittered sequence must actually spread out
}

// --- CloudHealthRegistry ------------------------------------------------------

cloud::BreakerConfig small_breaker() {
  cloud::BreakerConfig cfg;
  cfg.consecutive_failures_to_open = 3;
  cfg.window_failure_ratio_to_open = 0.6;
  cfg.window_size = 8;
  cfg.min_window_samples = 4;
  cfg.open_duration = 30.0;
  cfg.half_open_probes = 2;
  cfg.probe_successes_to_close = 1;
  return cfg;
}

TEST(CloudHealthRegistryTest, OpensAfterConsecutiveFailures) {
  ManualClock clock;
  cloud::CloudHealthRegistry reg(small_breaker(), clock);
  EXPECT_TRUE(reg.allow_request(1));
  for (int i = 0; i < 3; ++i) reg.record_failure(1, 0.1);
  EXPECT_EQ(reg.state(1), cloud::BreakerState::kOpen);
  EXPECT_FALSE(reg.allow_request(1));
  EXPECT_FALSE(reg.admissible(1));
  EXPECT_FALSE(reg.all_closed());
}

TEST(CloudHealthRegistryTest, WindowRatioTripsWithoutConsecutiveRun) {
  ManualClock clock;
  cloud::BreakerConfig cfg = small_breaker();
  cfg.consecutive_failures_to_open = 100;  // only the window can trip
  cloud::CloudHealthRegistry reg(cfg, clock);
  // Alternate so no consecutive run forms: S F S F -> 4 samples at ratio
  // 0.5, still closed; one more failure makes 3/5 = 0.6 and trips.
  reg.record_success(1, 0.1);
  reg.record_failure(1, 0.1);
  reg.record_success(1, 0.1);
  reg.record_failure(1, 0.1);
  EXPECT_EQ(reg.state(1), cloud::BreakerState::kClosed);
  reg.record_failure(1, 0.1);
  EXPECT_EQ(reg.state(1), cloud::BreakerState::kOpen);
}

TEST(CloudHealthRegistryTest, HalfOpenProbeClosesOnSuccess) {
  ManualClock clock;
  cloud::CloudHealthRegistry reg(small_breaker(), clock);
  for (int i = 0; i < 3; ++i) reg.record_failure(1, 0.1);
  ASSERT_EQ(reg.state(1), cloud::BreakerState::kOpen);

  clock.advance(29.0);
  EXPECT_FALSE(reg.allow_request(1));  // probe timer not yet expired
  clock.advance(2.0);
  EXPECT_TRUE(reg.admissible(1));
  EXPECT_TRUE(reg.allow_request(1));  // this caller is the probe
  EXPECT_EQ(reg.state(1), cloud::BreakerState::kHalfOpen);
  reg.record_success(1, 0.1);
  EXPECT_EQ(reg.state(1), cloud::BreakerState::kClosed);
  EXPECT_TRUE(reg.all_closed());
}

TEST(CloudHealthRegistryTest, FailedProbeReopensAndRestartsTimer) {
  ManualClock clock;
  cloud::CloudHealthRegistry reg(small_breaker(), clock);
  for (int i = 0; i < 3; ++i) reg.record_failure(1, 0.1);
  clock.advance(31.0);
  ASSERT_TRUE(reg.allow_request(1));
  reg.record_failure(1, 0.1);  // probe failed
  EXPECT_EQ(reg.state(1), cloud::BreakerState::kOpen);
  EXPECT_FALSE(reg.allow_request(1));  // timer restarted
  clock.advance(31.0);
  EXPECT_TRUE(reg.allow_request(1));
}

TEST(CloudHealthRegistryTest, HalfOpenAdmitsBoundedProbes) {
  ManualClock clock;
  cloud::CloudHealthRegistry reg(small_breaker(), clock);  // 2 probes
  for (int i = 0; i < 3; ++i) reg.record_failure(1, 0.1);
  clock.advance(31.0);
  EXPECT_TRUE(reg.allow_request(1));
  EXPECT_TRUE(reg.allow_request(1));
  EXPECT_FALSE(reg.allow_request(1));  // probe quota exhausted
}

TEST(CloudHealthRegistryTest, FreshStartAfterRecoveryDoesNotRetrip) {
  ManualClock clock;
  cloud::CloudHealthRegistry reg(small_breaker(), clock);
  for (int i = 0; i < 3; ++i) reg.record_failure(1, 0.1);
  clock.advance(31.0);
  ASSERT_TRUE(reg.allow_request(1));
  reg.record_success(1, 0.1);
  ASSERT_EQ(reg.state(1), cloud::BreakerState::kClosed);
  // The pre-outage window (full of failures) must have been cleared: one
  // new failure alone may not re-trip via the window ratio.
  reg.record_failure(1, 0.1);
  EXPECT_EQ(reg.state(1), cloud::BreakerState::kClosed);
}

TEST(CloudHealthRegistryTest, NonAvailabilityErrorsCountAsHealthy) {
  ManualClock clock;
  cloud::CloudHealthRegistry reg(small_breaker(), clock);
  const Status not_found = make_error(ErrorCode::kNotFound, "no such file");
  for (int i = 0; i < 10; ++i) reg.record(1, not_found, 0.05);
  EXPECT_EQ(reg.state(1), cloud::BreakerState::kClosed);
  const cloud::CloudHealthSnapshot s = reg.snapshot(1);
  EXPECT_EQ(s.successes, 10u);
  EXPECT_EQ(s.failures, 0u);
}

TEST(CloudHealthRegistryTest, SnapshotReportsStats) {
  ManualClock clock;
  cloud::CloudHealthRegistry reg(small_breaker(), clock);
  reg.record_success(3, 0.2);
  reg.record_failure(3, 0.4);
  reg.record_failure(5, 0.1);
  const auto all = reg.snapshot_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].id, 3u);
  EXPECT_EQ(all[0].successes, 1u);
  EXPECT_EQ(all[0].failures, 1u);
  EXPECT_EQ(all[0].consecutive_failures, 1);
  EXPECT_NEAR(all[0].window_failure_ratio, 0.5, 1e-9);
  EXPECT_GT(all[0].latency_ewma, 0.0);
  EXPECT_EQ(all[1].id, 5u);
}

// --- RetryingCloud / DeadlineCloud --------------------------------------------

// Fails the first `fail_first` requests with kUnavailable, then delegates.
class FlakyCloud final : public cloud::CloudProvider {
 public:
  FlakyCloud(cloud::CloudPtr inner, int fail_first)
      : inner_(std::move(inner)), remaining_(fail_first) {}

  [[nodiscard]] cloud::CloudId id() const noexcept override {
    return inner_->id();
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override {
    UNI_RETURN_IF_ERROR(gate());
    return inner_->upload(path, data);
  }
  Result<Bytes> download(const std::string& path) override {
    UNI_RETURN_IF_ERROR(gate());
    return inner_->download(path);
  }
  Status create_dir(const std::string& path) override {
    UNI_RETURN_IF_ERROR(gate());
    return inner_->create_dir(path);
  }
  Result<std::vector<cloud::FileInfo>> list(const std::string& dir) override {
    UNI_RETURN_IF_ERROR(gate());
    return inner_->list(dir);
  }
  Status remove(const std::string& path) override {
    UNI_RETURN_IF_ERROR(gate());
    return inner_->remove(path);
  }

  [[nodiscard]] int calls() const noexcept { return calls_; }

 private:
  Status gate() {
    ++calls_;
    if (remaining_ > 0) {
      --remaining_;
      return make_error(ErrorCode::kUnavailable, "flaky");
    }
    return Status::ok();
  }

  cloud::CloudPtr inner_;
  int remaining_;
  int calls_ = 0;
};

TEST(RetryingCloudTest, RetriesThroughTransientFailures) {
  auto memory = std::make_shared<cloud::MemoryCloud>(1, "m");
  auto flaky = std::make_shared<FlakyCloud>(memory, 2);
  ManualClock clock;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_base = 0.01;
  policy.backoff_cap = 0.05;
  cloud::RetryingCloud guarded(
      flaky, policy, nullptr, clock,
      [&clock](Duration d) { clock.advance(d); }, Rng(1));

  EXPECT_TRUE(guarded.upload("/f", ByteSpan(text("hello"))).is_ok());
  EXPECT_EQ(flaky->calls(), 3);  // two failures + the success
  EXPECT_EQ(guarded.download("/f").value(), text("hello"));
}

TEST(RetryingCloudTest, CircuitOpensAndFailsFastWithoutTouchingInner) {
  auto memory = std::make_shared<cloud::MemoryCloud>(1, "m");
  auto faulty =
      std::make_shared<cloud::FaultyCloud>(memory, cloud::FaultProfile{}, 9);
  faulty->set_outage(true);
  ManualClock clock;
  auto health =
      std::make_shared<cloud::CloudHealthRegistry>(small_breaker(), clock);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base = 0.001;
  policy.backoff_cap = 0.002;
  cloud::RetryingCloud guarded(
      faulty, policy, health, clock,
      [&clock](Duration d) { clock.advance(d); }, Rng(1));

  // Outage responses are kOutage (non-transient): one inner request per
  // call. Three calls trip the breaker (threshold 3).
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(guarded.upload("/f", ByteSpan(text("x"))).is_ok());
  }
  ASSERT_EQ(health->state(1), cloud::BreakerState::kOpen);

  const std::uint64_t before = faulty->requests();
  for (int i = 0; i < 10; ++i) {
    const Status s = guarded.upload("/f", ByteSpan(text("x")));
    EXPECT_EQ(s.code(), ErrorCode::kOutage);
  }
  EXPECT_EQ(faulty->requests(), before);  // fail-fast: inner never called
}

TEST(RetryingCloudTest, RecoveredCloudReadmittedViaProbe) {
  auto memory = std::make_shared<cloud::MemoryCloud>(1, "m");
  auto faulty =
      std::make_shared<cloud::FaultyCloud>(memory, cloud::FaultProfile{}, 9);
  faulty->set_outage(true);
  ManualClock clock;
  auto health =
      std::make_shared<cloud::CloudHealthRegistry>(small_breaker(), clock);
  cloud::RetryingCloud guarded(
      faulty, RetryPolicy::single_shot(), health, clock,
      [&clock](Duration d) { clock.advance(d); }, Rng(1));

  for (int i = 0; i < 3; ++i) {
    (void)guarded.upload("/f", ByteSpan(text("x")));
  }
  ASSERT_EQ(health->state(1), cloud::BreakerState::kOpen);

  faulty->set_outage(false);
  clock.advance(31.0);  // past open_duration
  EXPECT_TRUE(guarded.upload("/f", ByteSpan(text("x"))).is_ok());
  EXPECT_EQ(health->state(1), cloud::BreakerState::kClosed);
  EXPECT_EQ(memory->download("/f").value(), text("x"));
}

TEST(RetryingCloudTest, AttemptDeadlineMapsHangToTimeout) {
  auto memory = std::make_shared<cloud::MemoryCloud>(1, "m");
  ManualClock clock;
  cloud::FaultProfile profile;
  profile.hang_rate = 1.0;
  profile.hang_seconds = 5.0;
  auto faulty = std::make_shared<cloud::FaultyCloud>(
      memory, profile, 9, [&clock](Duration d) { clock.advance(d); });
  auto health =
      std::make_shared<cloud::CloudHealthRegistry>(small_breaker(), clock);
  RetryPolicy policy = RetryPolicy::single_shot();
  policy.attempt_deadline = 1.0;
  cloud::RetryingCloud guarded(
      faulty, policy, health, clock,
      [&clock](Duration d) { clock.advance(d); }, Rng(1));

  const Status s = guarded.upload("/f", ByteSpan(text("x")));
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_GE(faulty->hangs(), 1u);
  // The hang counts against the cloud's health.
  EXPECT_EQ(health->snapshot(1).failures, 1u);
}

TEST(DeadlineCloudTest, MapsOverlongCallToTimeout) {
  auto memory = std::make_shared<cloud::MemoryCloud>(1, "m");
  ManualClock clock;
  cloud::FaultProfile profile;
  profile.hang_rate = 1.0;
  profile.hang_seconds = 9.0;
  auto faulty = std::make_shared<cloud::FaultyCloud>(
      memory, profile, 9, [&clock](Duration d) { clock.advance(d); });
  cloud::DeadlineCloud deadline(faulty, 2.0, clock);

  const Status s = deadline.upload("/f", ByteSpan(text("late")));
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  // The inner call DID complete (the verb cannot be aborted mid-flight);
  // only the caller's view of it is a timeout.
  EXPECT_EQ(memory->download("/f").value(), text("late"));
}

// --- FaultyCloud fault injectors ----------------------------------------------

TEST(FaultyCloudTest, TornUploadWritesTruncatedPrefix) {
  auto memory = std::make_shared<cloud::MemoryCloud>(1, "m");
  cloud::FaultProfile profile;
  profile.torn_upload_rate = 1.0;
  cloud::FaultyCloud faulty(memory, profile, 9);

  const Bytes payload = text("0123456789");
  const Status s = faulty.upload("/t", ByteSpan(payload));
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(faulty.torn_uploads(), 1u);
  // Garbage sits at the path: a strict prefix, not the full payload.
  const Bytes stored = memory->download("/t").value();
  EXPECT_EQ(stored.size(), payload.size() / 2);
  EXPECT_EQ(stored, Bytes(payload.begin(),
                          payload.begin() + static_cast<std::ptrdiff_t>(
                                                payload.size() / 2)));
}

TEST(FaultyCloudTest, HangStallsThroughInjectedSleep) {
  auto memory = std::make_shared<cloud::MemoryCloud>(1, "m");
  ManualClock clock;
  cloud::FaultProfile profile;
  profile.hang_rate = 1.0;
  profile.hang_seconds = 7.0;
  cloud::FaultyCloud faulty(memory, profile, 9,
                            [&clock](Duration d) { clock.advance(d); });

  const TimePoint before = clock.now();
  EXPECT_TRUE(faulty.upload("/f", ByteSpan(text("x"))).is_ok());
  EXPECT_NEAR(clock.now() - before, 7.0, 1e-9);
  EXPECT_EQ(faulty.hangs(), 1u);
}

}  // namespace
}  // namespace unidrive
