#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <thread>

#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "cloud/stats_cloud.h"
#include "common/rng.h"
#include "core/change_scanner.h"
#include "core/client.h"
#include "core/sync_daemon.h"
#include "core/local_fs.h"

namespace unidrive::core {
namespace {

Bytes text(const std::string& s) { return bytes_from_string(s); }

cloud::MultiCloud make_clouds(int n) {
  cloud::MultiCloud clouds;
  for (int i = 0; i < n; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i)));
  }
  return clouds;
}

ClientConfig test_config(const std::string& device) {
  ClientConfig cfg;
  cfg.device = device;
  cfg.theta = 64 << 10;  // small segments so tests stay fast
  cfg.lock.retry.backoff_base = 0.001;
  cfg.lock.retry.backoff_cap = 0.01;
  cfg.driver.connections_per_cloud = 2;
  return cfg;
}

// --- LocalFs ------------------------------------------------------------------

TEST(MemoryLocalFsTest, ReadWriteRemove) {
  MemoryLocalFs fs;
  ASSERT_TRUE(fs.write("/a.txt", ByteSpan(text("hi"))).is_ok());
  EXPECT_EQ(fs.read("/a.txt").value(), text("hi"));
  EXPECT_EQ(fs.size("/a.txt").value(), 2u);
  EXPECT_TRUE(fs.remove("/a.txt").is_ok());
  EXPECT_EQ(fs.read("/a.txt").code(), ErrorCode::kNotFound);
}

TEST(MemoryLocalFsTest, MtimeAdvancesOnWrite) {
  MemoryLocalFs fs;
  ASSERT_TRUE(fs.write("/a", ByteSpan(text("1"))).is_ok());
  const double t1 = fs.mtime("/a").value();
  ASSERT_TRUE(fs.write("/a", ByteSpan(text("2"))).is_ok());
  EXPECT_GT(fs.mtime("/a").value(), t1);
}

TEST(MemoryLocalFsTest, ListSorted) {
  MemoryLocalFs fs;
  ASSERT_TRUE(fs.write("/b", ByteSpan(text("1"))).is_ok());
  ASSERT_TRUE(fs.write("/a", ByteSpan(text("2"))).is_ok());
  ASSERT_TRUE(fs.write("/dir/c", ByteSpan(text("3"))).is_ok());
  EXPECT_EQ(fs.list_files(),
            (std::vector<std::string>{"/a", "/b", "/dir/c"}));
}

TEST(DiskLocalFsTest, RoundTripOnRealDirectory) {
  const std::string root =
      (std::filesystem::temp_directory_path() / "unidrive_fs_test").string();
  std::filesystem::remove_all(root);
  DiskLocalFs fs(root);
  ASSERT_TRUE(fs.write("/docs/a.txt", ByteSpan(text("hello"))).is_ok());
  EXPECT_EQ(fs.read("/docs/a.txt").value(), text("hello"));
  EXPECT_EQ(fs.list_files(), std::vector<std::string>{"/docs/a.txt"});
  EXPECT_EQ(fs.size("/docs/a.txt").value(), 5u);
  EXPECT_TRUE(fs.remove("/docs/a.txt").is_ok());
  EXPECT_TRUE(fs.list_files().empty());
  std::filesystem::remove_all(root);
}

// --- change scanner -------------------------------------------------------------

TEST(ChangeScannerTest, DetectsAdditions) {
  MemoryLocalFs fs;
  Rng rng(1);
  const Bytes content = rng.bytes(100000);
  ASSERT_TRUE(fs.write("/new.bin", ByteSpan(content)).is_ok());
  metadata::SyncFolderImage image;
  const ScanResult scan =
      scan_local_changes(fs, image, chunker::SegmenterParams{64 << 10}, "dev");
  ASSERT_EQ(scan.touched.size(), 1u);
  EXPECT_EQ(scan.touched[0].path, "/new.bin");
  EXPECT_FALSE(scan.new_segments.empty());
  // Segment bytes must reassemble the file.
  std::size_t total = 0;
  for (const auto& [id, data] : scan.new_segments) total += data.size();
  EXPECT_EQ(total, content.size());
}

TEST(ChangeScannerTest, UnchangedFileNotReported) {
  MemoryLocalFs fs;
  Rng rng(2);
  const Bytes content = rng.bytes(50000);
  ASSERT_TRUE(fs.write("/f", ByteSpan(content)).is_ok());
  metadata::SyncFolderImage image;
  const ScanResult first =
      scan_local_changes(fs, image, chunker::SegmenterParams{64 << 10}, "dev");
  for (const metadata::Change& c : first.changes.changes()) {
    apply_change(image, c);
  }
  for (const auto& [id, data] : first.new_segments) {
    metadata::SegmentInfo seg;
    seg.id = id;
    seg.size = data.size();
    image.upsert_segment(seg);
  }
  const ScanResult second =
      scan_local_changes(fs, image, chunker::SegmenterParams{64 << 10}, "dev");
  EXPECT_TRUE(second.changes.empty());
}

TEST(ChangeScannerTest, DetectsDeletions) {
  MemoryLocalFs fs;
  metadata::SyncFolderImage image;
  metadata::FileSnapshot snap;
  snap.path = "/gone";
  snap.size = 3;
  snap.content_hash = "x";
  image.upsert_file(snap);
  const ScanResult scan =
      scan_local_changes(fs, image, chunker::SegmenterParams{64 << 10}, "dev");
  ASSERT_EQ(scan.changes.size(), 1u);
  EXPECT_EQ(scan.changes.changes()[0].kind, metadata::ChangeKind::kDeleteFile);
}

TEST(ChangeScannerTest, DedupAcrossIdenticalFiles) {
  MemoryLocalFs fs;
  Rng rng(3);
  const Bytes content = rng.bytes(30000);
  ASSERT_TRUE(fs.write("/a", ByteSpan(content)).is_ok());
  ASSERT_TRUE(fs.write("/b", ByteSpan(content)).is_ok());
  metadata::SyncFolderImage image;
  const ScanResult scan =
      scan_local_changes(fs, image, chunker::SegmenterParams{64 << 10}, "dev");
  EXPECT_EQ(scan.touched.size(), 2u);
  // Identical content -> shared segments -> uploaded once.
  EXPECT_EQ(scan.new_segments.size(), 1u);
}

// --- end-to-end client -----------------------------------------------------------

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override { clouds_ = make_clouds(5); }

  std::unique_ptr<UniDriveClient> make_client(const std::string& device,
                                              std::shared_ptr<LocalFs> fs) {
    return std::make_unique<UniDriveClient>(clouds_, std::move(fs),
                                            test_config(device));
  }

  cloud::MultiCloud clouds_;
};

TEST_F(ClientTest, UploadThenSecondDeviceDownloads) {
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto client_a = make_client("devA", fs_a);
  auto client_b = make_client("devB", fs_b);

  Rng rng(10);
  const Bytes content = rng.bytes(200000);
  ASSERT_TRUE(fs_a->write("/data.bin", ByteSpan(content)).is_ok());

  auto up = client_a->sync();
  ASSERT_TRUE(up.is_ok()) << up.status().to_string();
  EXPECT_TRUE(up.value().committed);
  EXPECT_EQ(up.value().files_uploaded, 1u);

  auto down = client_b->sync();
  ASSERT_TRUE(down.is_ok()) << down.status().to_string();
  EXPECT_TRUE(down.value().applied_cloud);
  EXPECT_EQ(down.value().files_downloaded, 1u);
  EXPECT_EQ(fs_b->read("/data.bin").value(), content);
}

TEST_F(ClientTest, NoChangesNoCommit) {
  auto fs = std::make_shared<MemoryLocalFs>();
  auto client = make_client("devA", fs);
  auto report = client->sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report.value().committed);
  EXPECT_FALSE(report.value().applied_cloud);
}

TEST_F(ClientTest, EditPropagates) {
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto client_a = make_client("devA", fs_a);
  auto client_b = make_client("devB", fs_b);

  ASSERT_TRUE(fs_a->write("/note.txt", ByteSpan(text("version 1"))).is_ok());
  ASSERT_TRUE(client_a->sync().is_ok());
  ASSERT_TRUE(client_b->sync().is_ok());
  EXPECT_EQ(fs_b->read("/note.txt").value(), text("version 1"));

  ASSERT_TRUE(fs_a->write("/note.txt", ByteSpan(text("version 2 !!"))).is_ok());
  ASSERT_TRUE(client_a->sync().is_ok());
  ASSERT_TRUE(client_b->sync().is_ok());
  EXPECT_EQ(fs_b->read("/note.txt").value(), text("version 2 !!"));
}

TEST_F(ClientTest, DeletePropagates) {
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto client_a = make_client("devA", fs_a);
  auto client_b = make_client("devB", fs_b);

  ASSERT_TRUE(fs_a->write("/f", ByteSpan(text("x"))).is_ok());
  ASSERT_TRUE(client_a->sync().is_ok());
  ASSERT_TRUE(client_b->sync().is_ok());
  ASSERT_TRUE(fs_b->read("/f").is_ok());

  ASSERT_TRUE(fs_a->remove("/f").is_ok());
  ASSERT_TRUE(client_a->sync().is_ok());
  auto report = client_b->sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().files_removed, 1u);
  EXPECT_EQ(fs_b->read("/f").code(), ErrorCode::kNotFound);
}

TEST_F(ClientTest, ConflictKeepsBothVersions) {
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto client_a = make_client("devA", fs_a);
  auto client_b = make_client("devB", fs_b);

  ASSERT_TRUE(fs_a->write("/doc", ByteSpan(text("base"))).is_ok());
  ASSERT_TRUE(client_a->sync().is_ok());
  ASSERT_TRUE(client_b->sync().is_ok());

  // Divergent edits on both devices; A commits first, then B.
  ASSERT_TRUE(fs_a->write("/doc", ByteSpan(text("edit from A"))).is_ok());
  ASSERT_TRUE(fs_b->write("/doc", ByteSpan(text("edit from B"))).is_ok());
  ASSERT_TRUE(client_a->sync().is_ok());
  auto report_b = client_b->sync();
  ASSERT_TRUE(report_b.is_ok());
  ASSERT_EQ(report_b.value().conflicts.size(), 1u);

  // B's folder: cloud version (A's edit) at /doc, B's kept as conflict copy.
  EXPECT_EQ(fs_b->read("/doc").value(), text("edit from A"));
  const std::string copy = report_b.value().conflicts[0].conflict_copy;
  ASSERT_FALSE(copy.empty());
  EXPECT_EQ(fs_b->read(copy).value(), text("edit from B"));

  // A picks up both after its next sync.
  ASSERT_TRUE(client_a->sync().is_ok());
  EXPECT_EQ(fs_a->read("/doc").value(), text("edit from A"));
  EXPECT_EQ(fs_a->read(copy).value(), text("edit from B"));
}

TEST_F(ClientTest, ThreeDevicesConverge) {
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto fs_c = std::make_shared<MemoryLocalFs>();
  auto a = make_client("devA", fs_a);
  auto b = make_client("devB", fs_b);
  auto c = make_client("devC", fs_c);

  Rng rng(20);
  ASSERT_TRUE(fs_a->write("/fa", ByteSpan(rng.bytes(20000))).is_ok());
  ASSERT_TRUE(fs_b->write("/fb", ByteSpan(rng.bytes(30000))).is_ok());
  ASSERT_TRUE(fs_c->write("/fc", ByteSpan(rng.bytes(10000))).is_ok());

  // Two full rounds propagate everything everywhere.
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(a->sync().is_ok());
    ASSERT_TRUE(b->sync().is_ok());
    ASSERT_TRUE(c->sync().is_ok());
  }
  for (const auto& fs : {fs_a, fs_b, fs_c}) {
    EXPECT_EQ(fs->list_files().size(), 3u);
  }
  EXPECT_EQ(fs_a->read("/fb").value(), fs_b->read("/fb").value());
  EXPECT_EQ(fs_c->read("/fa").value(), fs_a->read("/fa").value());
}

TEST_F(ClientTest, SecurityNoSingleCloudCanReconstruct) {
  // With Ks=2, any single cloud must hold < k distinct blocks per segment.
  auto fs = std::make_shared<MemoryLocalFs>();
  auto client = make_client("devA", fs);
  Rng rng(30);
  ASSERT_TRUE(fs->write("/secret", ByteSpan(rng.bytes(120000))).is_ok());
  ASSERT_TRUE(client->sync().is_ok());

  const auto& image = client->image();
  for (const auto& [id, seg] : image.segments()) {
    std::map<cloud::CloudId, std::set<std::uint32_t>> per_cloud;
    for (const auto& b : seg.blocks) {
      per_cloud[b.cloud].insert(b.block_index);
    }
    for (const auto& [c, blocks] : per_cloud) {
      EXPECT_LT(blocks.size(), client->config().k)
          << "cloud " << c << " can decode segment " << id;
    }
  }
}

TEST_F(ClientTest, ReliabilityToleratesTwoCloudOutages) {
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto client_a = make_client("devA", fs_a);
  Rng rng(40);
  const Bytes content = rng.bytes(150000);
  ASSERT_TRUE(fs_a->write("/important", ByteSpan(content)).is_ok());
  ASSERT_TRUE(client_a->sync().is_ok());

  // Wrap clouds 0 and 1 in outage for a fresh downloader (Kr=3: any 3
  // clouds suffice).
  cloud::MultiCloud degraded;
  for (std::size_t i = 0; i < clouds_.size(); ++i) {
    auto faulty = std::make_shared<cloud::FaultyCloud>(
        clouds_[i], cloud::FaultProfile{}, i);
    if (i < 2) faulty->set_outage(true);
    degraded.push_back(faulty);
  }
  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient client_b(degraded, fs_b, test_config("devB"));
  auto report = client_b.sync();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(fs_b->read("/important").value(), content);
}

TEST_F(ClientTest, SyncSurvivesTransientFailures) {
  cloud::MultiCloud flaky;
  for (std::size_t i = 0; i < clouds_.size(); ++i) {
    cloud::FaultProfile profile;
    profile.base_failure_rate = 0.1;
    flaky.push_back(
        std::make_shared<cloud::FaultyCloud>(clouds_[i], profile, 55 + i));
  }
  auto fs_a = std::make_shared<MemoryLocalFs>();
  UniDriveClient client_a(flaky, fs_a, test_config("devA"));
  Rng rng(50);
  const Bytes content = rng.bytes(100000);
  ASSERT_TRUE(fs_a->write("/f", ByteSpan(content)).is_ok());
  ASSERT_TRUE(client_a.sync().is_ok());

  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient client_b(flaky, fs_b, test_config("devB"));
  ASSERT_TRUE(client_b.sync().is_ok());
  EXPECT_EQ(fs_b->read("/f").value(), content);
}

TEST_F(ClientTest, DedupUploadsSharedSegmentsOnce) {
  auto fs = std::make_shared<MemoryLocalFs>();
  auto client = make_client("devA", fs);
  Rng rng(60);
  const Bytes content = rng.bytes(100000);
  ASSERT_TRUE(fs->write("/copy1", ByteSpan(content)).is_ok());
  ASSERT_TRUE(fs->write("/copy2", ByteSpan(content)).is_ok());
  auto report = client->sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().files_uploaded, 2u);

  // Segment refcounts must be 2; blocks stored once.
  for (const auto& [id, seg] : client->image().segments()) {
    EXPECT_EQ(seg.refcount, 2u);
  }
}

TEST_F(ClientTest, CleanupOverprovisionedTrimsSurplus) {
  auto fs = std::make_shared<MemoryLocalFs>();
  auto client = make_client("devA", fs);
  Rng rng(70);
  ASSERT_TRUE(fs->write("/f", ByteSpan(rng.bytes(50000))).is_ok());
  ASSERT_TRUE(client->sync().is_ok());
  ASSERT_TRUE(client->cleanup_overprovisioned().is_ok());

  const auto params = client->code_params();
  for (const auto& [id, seg] : client->image().segments()) {
    std::map<cloud::CloudId, std::size_t> per_cloud;
    for (const auto& b : seg.blocks) ++per_cloud[b.cloud];
    for (const auto& [c, n] : per_cloud) {
      EXPECT_LE(n, params.fair_share());
    }
  }
  // File still recoverable afterwards by a fresh device.
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto client_b = make_client("devB", fs_b);
  ASSERT_TRUE(client_b->sync().is_ok());
  EXPECT_TRUE(fs_b->read("/f").is_ok());
}

TEST_F(ClientTest, EmptyFileSyncs) {
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto a = make_client("devA", fs_a);
  auto b = make_client("devB", fs_b);
  ASSERT_TRUE(fs_a->write("/empty", ByteSpan(Bytes{})).is_ok());
  ASSERT_TRUE(a->sync().is_ok());
  ASSERT_TRUE(b->sync().is_ok());
  auto data = fs_b->read("/empty");
  ASSERT_TRUE(data.is_ok());
  EXPECT_TRUE(data.value().empty());
}

TEST_F(ClientTest, ManySmallFilesBatchSync) {
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto a = make_client("devA", fs_a);
  auto b = make_client("devB", fs_b);
  Rng rng(80);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fs_a->write("/batch/f" + std::to_string(i),
                            ByteSpan(rng.bytes(2000 + i * 100)))
                    .is_ok());
  }
  auto up = a->sync();
  ASSERT_TRUE(up.is_ok());
  EXPECT_EQ(up.value().files_uploaded, 20u);
  auto down = b->sync();
  ASSERT_TRUE(down.is_ok());
  EXPECT_EQ(down.value().files_downloaded, 20u);
  EXPECT_EQ(fs_b->list_files().size(), 20u);
}

TEST_F(ClientTest, RestorePreviousVersionRoundTrip) {
  auto fs = std::make_shared<MemoryLocalFs>();
  auto client = make_client("devA", fs);
  Rng rng(91);
  const Bytes v1 = rng.bytes(60000);
  const Bytes v2 = rng.bytes(50000);
  ASSERT_TRUE(fs->write("/doc", ByteSpan(v1)).is_ok());
  ASSERT_TRUE(client->sync().is_ok());
  ASSERT_TRUE(fs->write("/doc", ByteSpan(v2)).is_ok());
  ASSERT_TRUE(client->sync().is_ok());

  // The superseded snapshot is in the history and restorable.
  const auto history = client->file_history("/doc");
  ASSERT_EQ(history.size(), 1u);
  ASSERT_TRUE(client->restore_previous_version("/doc").is_ok());
  EXPECT_EQ(fs->read("/doc").value(), v1);

  // The restore commits like a normal edit and reaches other devices.
  ASSERT_TRUE(client->sync().is_ok());
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto client_b = make_client("devB", fs_b);
  ASSERT_TRUE(client_b->sync().is_ok());
  EXPECT_EQ(fs_b->read("/doc").value(), v1);
}

TEST_F(ClientTest, RestoreWithoutHistoryFails) {
  auto fs = std::make_shared<MemoryLocalFs>();
  auto client = make_client("devA", fs);
  ASSERT_TRUE(fs->write("/f", ByteSpan(text("only version"))).is_ok());
  ASSERT_TRUE(client->sync().is_ok());
  EXPECT_EQ(client->restore_previous_version("/f").code(),
            ErrorCode::kNotFound);
}

TEST_F(ClientTest, GarbageCollectionReclaimsDereferencedSegments) {
  auto fs = std::make_shared<MemoryLocalFs>();
  auto client = make_client("devA", fs);
  Rng rng(92);
  const Bytes content = rng.bytes(80000);
  ASSERT_TRUE(fs->write("/junk", ByteSpan(content)).is_ok());
  ASSERT_TRUE(client->sync().is_ok());

  std::uint64_t stored_before = 0;
  for (const auto& c : clouds_) {
    stored_before +=
        std::static_pointer_cast<cloud::MemoryCloud>(c)->stored_bytes();
  }

  ASSERT_TRUE(fs->remove("/junk").is_ok());
  ASSERT_TRUE(client->sync().is_ok());
  auto collected = client->collect_garbage();
  ASSERT_TRUE(collected.is_ok()) << collected.status().to_string();
  EXPECT_GE(collected.value(), 1u);

  std::uint64_t stored_after = 0;
  for (const auto& c : clouds_) {
    stored_after +=
        std::static_pointer_cast<cloud::MemoryCloud>(c)->stored_bytes();
  }
  // The segment blocks are gone; only (small) metadata remains.
  EXPECT_LT(stored_after, stored_before / 2);
  EXPECT_TRUE(client->image().garbage_segments().empty());

  // A second GC is a no-op.
  auto again = client->collect_garbage();
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value(), 0u);
}

TEST_F(ClientTest, GarbageCollectionSparesHistorySegments) {
  auto fs = std::make_shared<MemoryLocalFs>();
  auto client = make_client("devA", fs);
  Rng rng(93);
  const Bytes v1 = rng.bytes(40000);
  ASSERT_TRUE(fs->write("/doc", ByteSpan(v1)).is_ok());
  ASSERT_TRUE(client->sync().is_ok());
  ASSERT_TRUE(fs->write("/doc", ByteSpan(rng.bytes(40000))).is_ok());
  ASSERT_TRUE(client->sync().is_ok());

  ASSERT_TRUE(client->collect_garbage().is_ok());
  // v1's segments survive (held by the history) and remain restorable.
  ASSERT_TRUE(client->restore_previous_version("/doc").is_ok());
  EXPECT_EQ(fs->read("/doc").value(), v1);
}

TEST(ScanCacheTest, SecondScanReadsNothing) {
  MemoryLocalFs fs;
  Rng rng(94);
  ASSERT_TRUE(fs.write("/a", ByteSpan(rng.bytes(50000))).is_ok());
  ASSERT_TRUE(fs.write("/b", ByteSpan(rng.bytes(30000))).is_ok());
  metadata::SyncFolderImage image;
  ScanCache cache;

  auto first = scan_local_changes(fs, image, chunker::SegmenterParams{64 << 10},
                                  "dev", &cache);
  EXPECT_EQ(first.files_hashed, 2u);
  for (const metadata::Change& c : first.changes.changes()) {
    apply_change(image, c);
  }

  auto second = scan_local_changes(fs, image,
                                   chunker::SegmenterParams{64 << 10}, "dev",
                                   &cache);
  EXPECT_TRUE(second.changes.empty());
  EXPECT_EQ(second.files_hashed, 0u);  // pure fingerprint hits
  EXPECT_EQ(second.files_scanned, 2u);
}

TEST(ScanCacheTest, EditInvalidatesFingerprint) {
  MemoryLocalFs fs;
  ASSERT_TRUE(fs.write("/a", ByteSpan(bytes_from_string("v1"))).is_ok());
  metadata::SyncFolderImage image;
  ScanCache cache;
  auto first = scan_local_changes(fs, image, chunker::SegmenterParams{64 << 10},
                                  "dev", &cache);
  for (const metadata::Change& c : first.changes.changes()) {
    apply_change(image, c);
  }
  ASSERT_TRUE(fs.write("/a", ByteSpan(bytes_from_string("v2"))).is_ok());
  auto second = scan_local_changes(fs, image,
                                   chunker::SegmenterParams{64 << 10}, "dev",
                                   &cache);
  EXPECT_EQ(second.files_hashed, 1u);
  ASSERT_EQ(second.touched.size(), 1u);
}

TEST_F(ClientTest, ConflictResolutionKeepMine) {
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto a = make_client("devA", fs_a);
  auto b = make_client("devB", fs_b);
  ASSERT_TRUE(fs_a->write("/doc", ByteSpan(text("base"))).is_ok());
  ASSERT_TRUE(a->sync().is_ok());
  ASSERT_TRUE(b->sync().is_ok());

  ASSERT_TRUE(fs_a->write("/doc", ByteSpan(text("A's edit"))).is_ok());
  ASSERT_TRUE(fs_b->write("/doc", ByteSpan(text("B's edit"))).is_ok());
  ASSERT_TRUE(a->sync().is_ok());
  auto rb = b->sync();
  ASSERT_TRUE(rb.is_ok());
  ASSERT_EQ(rb.value().conflicts.size(), 1u);

  // B decides its version wins.
  ASSERT_TRUE(b->resolve_conflict(rb.value().conflicts[0],
                                  core::UniDriveClient::ConflictChoice::kKeepMine)
                  .is_ok());
  ASSERT_TRUE(b->sync().is_ok());
  ASSERT_TRUE(a->sync().is_ok());
  EXPECT_EQ(fs_a->read("/doc").value(), text("B's edit"));
  // The conflict copy is gone everywhere.
  EXPECT_EQ(fs_a->list_files().size(), 1u);
  EXPECT_EQ(fs_b->list_files().size(), 1u);
}

TEST_F(ClientTest, ConflictResolutionKeepTheirs) {
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto a = make_client("devA", fs_a);
  auto b = make_client("devB", fs_b);
  ASSERT_TRUE(fs_a->write("/doc", ByteSpan(text("base"))).is_ok());
  ASSERT_TRUE(a->sync().is_ok());
  ASSERT_TRUE(b->sync().is_ok());
  ASSERT_TRUE(fs_a->write("/doc", ByteSpan(text("A's edit"))).is_ok());
  ASSERT_TRUE(fs_b->write("/doc", ByteSpan(text("B's edit"))).is_ok());
  ASSERT_TRUE(a->sync().is_ok());
  auto rb = b->sync();
  ASSERT_TRUE(rb.is_ok());
  ASSERT_EQ(rb.value().conflicts.size(), 1u);

  ASSERT_TRUE(b->resolve_conflict(
                   rb.value().conflicts[0],
                   core::UniDriveClient::ConflictChoice::kKeepTheirs)
                  .is_ok());
  ASSERT_TRUE(b->sync().is_ok());
  EXPECT_EQ(fs_b->read("/doc").value(), text("A's edit"));
  EXPECT_EQ(fs_b->list_files().size(), 1u);
}

TEST_F(ClientTest, SyncDaemonPropagatesInBackground) {
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto a = make_client("devA", fs_a);
  auto b = make_client("devB", fs_b);

  core::DaemonConfig daemon_config;
  daemon_config.sync_interval = 0.02;
  core::SyncDaemon daemon_a(*a, daemon_config);
  core::SyncDaemon daemon_b(*b, daemon_config);
  daemon_a.start();
  daemon_b.start();
  EXPECT_TRUE(daemon_a.running());

  ASSERT_TRUE(fs_a->write("/bg/file", ByteSpan(text("hello from A"))).is_ok());
  // Wait (bounded) for the change to land on B.
  bool arrived = false;
  for (int i = 0; i < 300 && !arrived; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    arrived = fs_b->read("/bg/file").is_ok();
  }
  daemon_a.stop();
  daemon_b.stop();
  EXPECT_FALSE(daemon_a.running());
  ASSERT_TRUE(arrived);
  EXPECT_EQ(fs_b->read("/bg/file").value(), text("hello from A"));
  EXPECT_GT(daemon_a.stats().rounds, 0u);
  EXPECT_GE(daemon_a.stats().commits, 1u);
  EXPECT_GE(daemon_b.stats().applied, 1u);
}

TEST_F(ClientTest, SyncDaemonStartStopIdempotent) {
  auto fs = std::make_shared<MemoryLocalFs>();
  auto client = make_client("devA", fs);
  core::SyncDaemon daemon(*client, core::DaemonConfig{0.01});
  daemon.start();
  daemon.start();  // no-op
  daemon.stop();
  daemon.stop();  // no-op
  daemon.start();
  daemon.stop();
  EXPECT_FALSE(daemon.running());
}

TEST_F(ClientTest, VersionCounterMonotone) {
  auto fs = std::make_shared<MemoryLocalFs>();
  auto client = make_client("devA", fs);
  std::uint64_t last = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        fs->write("/f", ByteSpan(text("v" + std::to_string(i)))).is_ok());
    auto report = client->sync();
    ASSERT_TRUE(report.is_ok());
    EXPECT_GT(report.value().version.counter, last);
    last = report.value().version.counter;
  }
}

}  // namespace
}  // namespace unidrive::core
