// Chaos tests: multi-client sync against flapping, hanging, tearing and
// dead clouds, on a shared manual clock so breaker probe timers are driven
// deterministically. These exercise the whole resilience stack end to end:
// RetryPolicy backoff, the shared CloudHealthRegistry, degraded-mode sync
// and half-open re-admission of recovered clouds.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/faulty_cloud.h"
#include "cloud/health.h"
#include "cloud/memory_cloud.h"
#include "common/clock.h"
#include "common/rng.h"
#include "test_seed.h"
#include "core/client.h"
#include "core/local_fs.h"
#include "core/sync_daemon.h"
#include "metadata/types.h"
#include "repair/service.h"

UNIDRIVE_REGISTER_SEED_LISTENER()

namespace unidrive::core {
namespace {

using unidrive::testing::test_seed;

struct ChaosClouds {
  cloud::MultiCloud clouds;
  std::vector<std::shared_ptr<cloud::FaultyCloud>> faulty;
};

// `n` MemoryClouds each wrapped in a FaultyCloud whose hangs advance the
// shared manual clock instead of stalling the test.
ChaosClouds make_chaos_clouds(int n, ManualClock& clock) {
  ChaosClouds out;
  for (int i = 0; i < n; ++i) {
    auto memory = std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i));
    auto faulty = std::make_shared<cloud::FaultyCloud>(
        memory, cloud::FaultProfile{}, test_seed(1000) + static_cast<std::uint64_t>(i),
        [&clock](Duration d) { clock.advance(d); });
    out.faulty.push_back(faulty);
    out.clouds.push_back(faulty);
  }
  return out;
}

ClientConfig chaos_config(const std::string& device, ManualClock& clock) {
  ClientConfig cfg;
  cfg.device = device;
  cfg.theta = 64 << 10;
  cfg.driver.connections_per_cloud = 2;
  cfg.lock.retry.backoff_base = 0.001;
  cfg.lock.retry.backoff_cap = 0.01;
  cfg.retry.max_attempts = 3;
  cfg.retry.backoff_base = 0.001;
  cfg.retry.backoff_cap = 0.01;
  cfg.breaker.consecutive_failures_to_open = 3;
  cfg.breaker.open_duration = 300.0;
  // All pauses advance the shared clock; nothing in these tests sleeps for
  // real, so breaker timers only move when the test says so (backoff sums
  // stay far below open_duration).
  cfg.sleep = [&clock](Duration d) { clock.advance(d); };
  return cfg;
}

Bytes payload(Rng& rng, std::size_t n) { return rng.bytes(n); }

TEST(ChaosTest, PermanentOutageCostsOneCycleThenFailsFastAcrossRounds) {
  ManualClock clock;
  ChaosClouds cc = make_chaos_clouds(5, clock);
  cc.faulty[0]->set_outage(true);  // permanent until further notice

  auto fs = std::make_shared<MemoryLocalFs>();
  UniDriveClient client(cc.clouds, fs, chaos_config("devA", clock), clock,
                        Rng(test_seed(11)));
  Rng rng(test_seed(21));

  // Round 1 pays the discovery cost: requests against cloud 0 until its
  // breaker trips, then the round completes on the remaining 4 clouds.
  ASSERT_TRUE(fs->write("/f1", ByteSpan(payload(rng, 50000))).is_ok());
  auto r1 = client.sync();
  ASSERT_TRUE(r1.is_ok()) << r1.status().to_string();
  EXPECT_TRUE(r1.value().committed);
  EXPECT_TRUE(r1.value().degraded);
  EXPECT_EQ(client.health()->state(0), cloud::BreakerState::kOpen);
  EXPECT_GT(cc.faulty[0]->requests(), 0u);

  // Rounds 2-4: the breaker is open and its probe timer has not expired
  // (the clock only moves by sub-second backoffs), so the dead cloud gets
  // ZERO requests — not one retry cycle per call, not even one per round.
  for (int round = 2; round <= 4; ++round) {
    const std::uint64_t before = cc.faulty[0]->requests();
    const std::string path = "/f" + std::to_string(round);
    ASSERT_TRUE(fs->write(path, ByteSpan(payload(rng, 40000))).is_ok());
    auto r = client.sync();
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    EXPECT_TRUE(r.value().committed);
    EXPECT_TRUE(r.value().degraded);
    EXPECT_EQ(cc.faulty[0]->requests(), before)
        << "open breaker must fail fast in round " << round;
  }

  // The cloud recovers; once the probe timer expires the next round's
  // first request is the probe, it succeeds, and the cloud is re-admitted.
  cc.faulty[0]->set_outage(false);
  clock.advance(301.0);
  const std::uint64_t before_recovery = cc.faulty[0]->requests();
  ASSERT_TRUE(fs->write("/f5", ByteSpan(payload(rng, 40000))).is_ok());
  auto r5 = client.sync();
  ASSERT_TRUE(r5.is_ok()) << r5.status().to_string();
  EXPECT_GT(cc.faulty[0]->requests(), before_recovery);
  EXPECT_EQ(client.health()->state(0), cloud::BreakerState::kClosed);
  EXPECT_FALSE(r5.value().degraded);

  // Nothing was lost along the way.
  for (int i = 1; i <= 5; ++i) {
    EXPECT_NE(client.image().find_file("/f" + std::to_string(i)), nullptr);
  }
}

TEST(ChaosTest, FlappingAndTearingCloudsConvergeWithoutFabricatedConflicts) {
  ManualClock clock;
  ChaosClouds cc = make_chaos_clouds(5, clock);
  {
    cloud::FaultProfile flappy;
    flappy.base_failure_rate = 0.25;
    cc.faulty[1]->set_profile(flappy);
    cloud::FaultProfile torn;
    torn.torn_upload_rate = 0.2;
    cc.faulty[3]->set_profile(torn);
  }

  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient a(cc.clouds, fs_a, chaos_config("devA", clock), clock,
                   Rng(test_seed(31)));
  UniDriveClient b(cc.clouds, fs_b, chaos_config("devB", clock), clock,
                   Rng(test_seed(32)));
  Rng rng(test_seed(41));

  // Per-device DISTINCT paths: any conflict the merge reports would be
  // fabricated by the chaos, not by concurrent edits.
  std::size_t fabricated_conflicts = 0;
  const auto settle = [&](UniDriveClient& c) {
    for (int tries = 0; tries < 8; ++tries) {
      auto r = c.sync();
      if (r.is_ok()) {
        fabricated_conflicts += r.value().conflicts.size();
        return true;
      }
    }
    return false;
  };

  for (int round = 0; round < 4; ++round) {
    const std::string suffix = std::to_string(round);
    ASSERT_TRUE(
        fs_a->write("/a_" + suffix, ByteSpan(payload(rng, 30000))).is_ok());
    ASSERT_TRUE(settle(a));
    ASSERT_TRUE(
        fs_b->write("/b_" + suffix, ByteSpan(payload(rng, 30000))).is_ok());
    ASSERT_TRUE(settle(b));
  }
  EXPECT_EQ(fabricated_conflicts, 0u);

  // Quiet the chaos, let any tripped breaker's timer expire, and give each
  // device a final round to pull what it is missing.
  for (auto& f : cc.faulty) f->set_profile(cloud::FaultProfile{});
  clock.advance(301.0);
  ASSERT_TRUE(settle(a));
  ASSERT_TRUE(settle(b));
  ASSERT_TRUE(settle(a));
  EXPECT_EQ(fabricated_conflicts, 0u);

  // Both replicas hold all 8 files with identical content.
  for (int round = 0; round < 4; ++round) {
    for (const std::string prefix : {"/a_", "/b_"}) {
      const std::string path = prefix + std::to_string(round);
      auto from_a = fs_a->read(path);
      auto from_b = fs_b->read(path);
      ASSERT_TRUE(from_a.is_ok()) << path << " missing on devA";
      ASSERT_TRUE(from_b.is_ok()) << path << " missing on devB";
      EXPECT_EQ(from_a.value(), from_b.value()) << path;
    }
  }
  EXPECT_EQ(a.image().version(), b.image().version());
}

TEST(ChaosTest, HangingCloudIsTimedOutAndSyncStillCompletes) {
  ManualClock clock;
  ChaosClouds cc = make_chaos_clouds(5, clock);
  {
    cloud::FaultProfile hangy;
    hangy.hang_rate = 1.0;
    hangy.hang_seconds = 60.0;  // every request stalls a virtual minute
    cc.faulty[2]->set_profile(hangy);
  }

  auto fs = std::make_shared<MemoryLocalFs>();
  ClientConfig cfg = chaos_config("devA", clock);
  cfg.retry.attempt_deadline = 5.0;  // give up on stalled requests
  cfg.breaker.open_duration = 100000.0;  // hangs advance the clock a lot
  UniDriveClient client(cc.clouds, fs, cfg, clock, Rng(test_seed(51)));
  Rng rng(test_seed(61));

  const Bytes content = payload(rng, 60000);
  ASSERT_TRUE(fs->write("/slow", ByteSpan(content)).is_ok());
  auto report = client.sync();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().committed);
  EXPECT_TRUE(report.value().degraded);  // the hanging cloud tripped
  EXPECT_EQ(client.health()->state(2), cloud::BreakerState::kOpen);
  EXPECT_GE(cc.faulty[2]->hangs(), 1u);

  // A fresh device (its own registry, same hostile cloud) still recovers
  // the file: it pays its own discovery cost, then routes around.
  auto fs_b = std::make_shared<MemoryLocalFs>();
  ClientConfig cfg_b = chaos_config("devB", clock);
  cfg_b.retry.attempt_deadline = 5.0;
  cfg_b.breaker.open_duration = 100000.0;
  UniDriveClient reader(cc.clouds, fs_b, cfg_b, clock, Rng(test_seed(52)));
  auto r = reader.sync();
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(fs_b->read("/slow").value(), content);
}

// The scrub-and-repair maintenance loop running inside device A's daemon,
// concurrent with device B's foreground sync, while clouds silently rot and
// drop blocks AND flake transiently. The daemon thread and the main thread
// contend for the quorum lock (repair placement commits vs foreground file
// commits); nothing may be lost and redundancy must be fully restored once
// the chaos quiets.
TEST(ChaosTest, ScrubAndRepairHealSilentDefectsUnderConcurrentSync) {
  ManualClock clock;
  ChaosClouds cc = make_chaos_clouds(5, clock);
  {
    cloud::FaultProfile flappy;  // honest transient failures
    flappy.base_failure_rate = 0.1;
    cc.faulty[0]->set_profile(flappy);
    cloud::FaultProfile rotten;  // silent same-size corruption
    rotten.bitrot_rate = 0.2;
    cc.faulty[3]->set_profile(rotten);
    cloud::FaultProfile leaky;  // uploads report OK, store nothing
    leaky.block_loss_rate = 0.2;
    cc.faulty[1]->set_profile(leaky);
  }

  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient a(cc.clouds, fs_a, chaos_config("devA", clock), clock,
                   Rng(test_seed(71)));
  UniDriveClient b(cc.clouds, fs_b, chaos_config("devB", clock), clock,
                   Rng(test_seed(72)));

  repair::RepairServiceConfig repair_cfg;
  repair_cfg.scrub.deep_verify_segments = 16;  // whole pool, every pass
  repair_cfg.scrub.cloud_lost_after_passes = 1000;  // outages here are
                                                    // transient: never rehome
  auto service = std::make_shared<repair::RepairService>(a, repair_cfg);
  core::DaemonConfig daemon_cfg;
  daemon_cfg.sync_interval = 0.01;
  daemon_cfg.maintenance = service;
  core::SyncDaemon daemon(a, daemon_cfg);
  daemon.start();

  // Foreground churn on B while A's daemon syncs and scrubs concurrently.
  Rng rng(test_seed(81));
  std::size_t fabricated_conflicts = 0;
  const auto settle = [&](UniDriveClient& c) {
    for (int tries = 0; tries < 8; ++tries) {
      auto r = c.sync();
      if (r.is_ok()) {
        fabricated_conflicts += r.value().conflicts.size();
        return true;
      }
    }
    return false;
  };
  for (int round = 0; round < 3; ++round) {
    const std::string suffix = std::to_string(round);
    ASSERT_TRUE(
        fs_a->write("/a_" + suffix, ByteSpan(payload(rng, 30000))).is_ok());
    ASSERT_TRUE(
        fs_b->write("/b_" + suffix, ByteSpan(payload(rng, 30000))).is_ok());
    ASSERT_TRUE(settle(b));
  }

  // On top of the probabilistic injection, guarantee at least one loss and
  // one rot against committed placements of B's image.
  bool dropped = false, rotted = false;
  for (const auto& [id, seg] : b.image().segments()) {
    if (seg.refcount == 0) continue;
    for (const metadata::BlockLocation& loc : seg.blocks) {
      if (!dropped && loc.cloud == 2) {
        ASSERT_TRUE(
            cc.faulty[2]->drop_stored(metadata::block_path(id, loc.block_index))
                .is_ok());
        dropped = true;
      } else if (!rotted && loc.cloud == 4) {
        ASSERT_TRUE(
            cc.faulty[4]->rot_stored(metadata::block_path(id, loc.block_index))
                .is_ok());
        rotted = true;
      }
    }
  }
  ASSERT_TRUE(dropped);
  ASSERT_TRUE(rotted);

  // Quiet the chaos and let the maintenance loop drain the defect ledger:
  // every injected defect healed, nothing left in the backlog.
  for (auto& f : cc.faulty) f->set_profile(cloud::FaultProfile{});
  clock.advance(301.0);  // any open breaker may probe again
  bool drained = false;
  for (int i = 0; i < 1000 && !drained; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    drained = service->totals().blocks_healed >= 2 &&
              a.durability()->backlog() == 0;
  }
  daemon.stop();
  ASSERT_TRUE(drained) << "backlog " << a.durability()->backlog()
                       << ", healed " << service->totals().blocks_healed;
  EXPECT_GT(daemon.stats().maintenance_slices, 0u);
  EXPECT_EQ(daemon.stats().maintenance_errors, 0u);
  EXPECT_GE(service->totals().scrub_passes, 1u);

  // Convergence: a final quiet round each way, then both replicas hold all
  // six files with identical content and no conflict was fabricated.
  ASSERT_TRUE(settle(b));
  auto ra = daemon.sync_once();
  ASSERT_TRUE(ra.is_ok()) << ra.status().to_string();
  ASSERT_TRUE(settle(b));
  EXPECT_EQ(fabricated_conflicts, 0u);
  for (int round = 0; round < 3; ++round) {
    for (const std::string prefix : {"/a_", "/b_"}) {
      const std::string path = prefix + std::to_string(round);
      auto from_a = fs_a->read(path);
      auto from_b = fs_b->read(path);
      ASSERT_TRUE(from_a.is_ok()) << path << " missing on devA";
      ASSERT_TRUE(from_b.is_ok()) << path << " missing on devB";
      EXPECT_EQ(from_a.value(), from_b.value()) << path;
    }
  }

  // Durability ground truth: a fresh device with an empty folder restores
  // every file from the (healed) clouds alone.
  auto fs_c = std::make_shared<MemoryLocalFs>();
  UniDriveClient reader(cc.clouds, fs_c, chaos_config("devC", clock), clock,
                        Rng(test_seed(73)));
  ASSERT_TRUE(settle(reader));
  for (int round = 0; round < 3; ++round) {
    for (const std::string prefix : {"/a_", "/b_"}) {
      const std::string path = prefix + std::to_string(round);
      ASSERT_TRUE(fs_c->read(path).is_ok()) << path << " unrestorable";
      EXPECT_EQ(fs_c->read(path).value(), fs_b->read(path).value()) << path;
    }
  }
}

}  // namespace
}  // namespace unidrive::core
