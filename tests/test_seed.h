// Seed-replay plumbing for randomized tests.
//
// Every chaos/property/fuzz test derives its RNG seeds through test_seed():
// by default the seed is the test's own baked-in constant (runs stay
// deterministic in CI), but setting UNIDRIVE_TEST_SEED replays the whole
// binary under a different seed — and when a test FAILS, the seed it ran
// under is printed so the failure reproduces with
//
//   UNIDRIVE_TEST_SEED=<seed> ./failing_test --gtest_filter=<Suite.Case>
//
// Usage: call test_seed(default) wherever a hard-coded seed used to be.
// Distinct default constants within one test keep their streams distinct
// under replay too (the override is XOR-mixed, not substituted).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

namespace unidrive::testing {

// The process-wide seed override: UNIDRIVE_TEST_SEED parsed once, or 0 when
// unset (0 = "no override"; defaults are used unchanged).
inline std::uint64_t seed_override() {
  static const std::uint64_t value = [] {
    const char* env = std::getenv("UNIDRIVE_TEST_SEED");
    if (env == nullptr || *env == '\0') return std::uint64_t{0};
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 0));
  }();
  return value;
}

// Seed for one RNG stream: the test's default, XOR-mixed with the override
// so different streams inside one test remain distinct when replaying.
inline std::uint64_t test_seed(std::uint64_t default_seed) {
  const std::uint64_t over = seed_override();
  if (over == 0) return default_seed;
  return default_seed ^ (over * 0x9e3779b97f4a7c15ULL);
}

// Prints the effective seed situation after every failed test, so the log
// of a red CI run carries its own repro instructions.
class SeedReportListener : public ::testing::EmptyTestEventListener {
 public:
  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (!info.result()->Failed()) return;
    const std::uint64_t over = seed_override();
    std::string note = over == 0
        ? "test ran with its default seeds; replay a variant with "
          "UNIDRIVE_TEST_SEED=<n>"
        : "test ran with UNIDRIVE_TEST_SEED=" + std::to_string(over) +
          " — set the same value to reproduce";
    ::testing::Test::RecordProperty("unidrive_seed", std::to_string(over));
    printf("[  SEED    ] %s.%s: %s\n", info.test_suite_name(), info.name(),
           note.c_str());
  }
};

// Installs the listener once per binary. Include this header and place
// UNIDRIVE_REGISTER_SEED_LISTENER(); at namespace scope in the test file.
#define UNIDRIVE_REGISTER_SEED_LISTENER()                                   \
  namespace {                                                               \
  const bool unidrive_seed_listener_registered = [] {                       \
    ::testing::UnitTest::GetInstance()->listeners().Append(                 \
        new ::unidrive::testing::SeedReportListener());                     \
    return true;                                                            \
  }();                                                                      \
  }

}  // namespace unidrive::testing
