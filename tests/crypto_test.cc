#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/crc32.h"
#include "crypto/des.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace unidrive::crypto {
namespace {

// --- SHA-1 (FIPS 180-1 test vectors) -----------------------------------------

TEST(Sha1Test, EmptyInput) {
  EXPECT_EQ(Sha1::hex(ByteSpan{}),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  const Bytes in = bytes_from_string("abc");
  EXPECT_EQ(Sha1::hex(ByteSpan(in)),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  const Bytes in = bytes_from_string(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(Sha1::hex(ByteSpan(in)),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(ByteSpan(chunk));
  const auto digest = h.finish();
  EXPECT_EQ(to_hex(ByteSpan(digest.data(), digest.size())),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Rng rng(1);
  const Bytes data = rng.bytes(10000);
  Sha1 h;
  // Feed in awkward chunk sizes straddling the 64-byte block boundary.
  std::size_t off = 0;
  const std::size_t sizes[] = {1, 63, 64, 65, 127, 128, 1000};
  std::size_t i = 0;
  while (off < data.size()) {
    const std::size_t n = std::min(sizes[i++ % 7], data.size() - off);
    h.update(ByteSpan(data.data() + off, n));
    off += n;
  }
  const auto inc = h.finish();
  EXPECT_EQ(inc, Sha1::hash(ByteSpan(data)));
}

TEST(Sha1Test, FinishResets) {
  Sha1 h;
  const Bytes in = bytes_from_string("abc");
  h.update(ByteSpan(in));
  (void)h.finish();
  // After finish, hashing "abc" again gives the same digest.
  h.update(ByteSpan(in));
  const auto d = h.finish();
  EXPECT_EQ(d, Sha1::hash(ByteSpan(in)));
}

// --- SHA-256 (FIPS 180-4 test vectors) ---------------------------------------

TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(Sha256::hex(ByteSpan{}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  const Bytes in = bytes_from_string("abc");
  EXPECT_EQ(Sha256::hex(ByteSpan(in)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const Bytes in = bytes_from_string(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(Sha256::hex(ByteSpan(in)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(2);
  const Bytes data = rng.bytes(5000);
  Sha256 h;
  h.update(ByteSpan(data.data(), 1));
  h.update(ByteSpan(data.data() + 1, 4999));
  EXPECT_EQ(h.finish(), Sha256::hash(ByteSpan(data)));
}

// --- CRC32C -------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // RFC 3720 CRC-32C check value for "123456789".
  const Bytes in = bytes_from_string("123456789");
  EXPECT_EQ(crc32c(ByteSpan(in)), 0xE3069283u);
  EXPECT_EQ(crc32c_sw(ByteSpan(in)), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(crc32c(ByteSpan{}), 0u); }

TEST(Crc32Test, DetectsBitFlip) {
  Rng rng(3);
  Bytes data = rng.bytes(256);
  const std::uint32_t before = crc32c(ByteSpan(data));
  data[100] ^= 0x01;
  EXPECT_NE(before, crc32c(ByteSpan(data)));
}

TEST(Crc32Test, SeedChainingComposes) {
  Rng rng(7);
  const Bytes data = rng.bytes(777);
  const ByteSpan all(data);
  const std::uint32_t whole = crc32c(all);
  const std::uint32_t chained = crc32c(all.subspan(300), crc32c(all.first(300)));
  EXPECT_EQ(whole, chained);
}

// --- DES ----------------------------------------------------------------------

TEST(DesTest, KnownVector) {
  // Classic test vector: key 133457799BBCDFF1, plaintext 0123456789ABCDEF
  // -> ciphertext 85E813540F0AB405.
  const Bytes key_bytes = from_hex("133457799bbcdff1");
  Des::Key key;
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  const Bytes plain_bytes = from_hex("0123456789abcdef");
  Des::Block plain;
  std::copy(plain_bytes.begin(), plain_bytes.end(), plain.begin());

  const Des des(key);
  const Des::Block cipher = des.encrypt_block(plain);
  EXPECT_EQ(to_hex(ByteSpan(cipher.data(), cipher.size())),
            "85e813540f0ab405");
  EXPECT_EQ(des.decrypt_block(cipher), plain);
}

TEST(DesTest, EncryptDecryptRoundTripManyBlocks) {
  Rng rng(4);
  const Des::Key key = des_key_from_passphrase("secret");
  const Des des(key);
  for (int i = 0; i < 100; ++i) {
    const Bytes b = rng.bytes(8);
    Des::Block block;
    std::copy(b.begin(), b.end(), block.begin());
    EXPECT_EQ(des.decrypt_block(des.encrypt_block(block)), block);
  }
}

TEST(DesCbcTest, RoundTripVariousLengths) {
  const Des::Key key = des_key_from_passphrase("metadata key");
  Rng rng(5);
  for (const std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u}) {
    const Bytes plain = rng.bytes(len);
    Des::Block iv;
    const Bytes ivb = rng.bytes(8);
    std::copy(ivb.begin(), ivb.end(), iv.begin());
    const Bytes cipher = des_cbc_encrypt(key, ByteSpan(plain), iv);
    // Ciphertext = IV + padded payload, always a multiple of 8, > plaintext.
    EXPECT_EQ(cipher.size() % 8, 0u);
    EXPECT_GT(cipher.size(), plain.size());
    auto decrypted = des_cbc_decrypt(key, ByteSpan(cipher));
    ASSERT_TRUE(decrypted.is_ok()) << len;
    EXPECT_EQ(decrypted.value(), plain) << len;
  }
}

TEST(DesCbcTest, WrongKeyFailsOrGarbles) {
  const Des::Key key = des_key_from_passphrase("right");
  const Des::Key wrong = des_key_from_passphrase("wrong");
  Rng rng(6);
  const Bytes plain = rng.bytes(100);
  Des::Block iv{};
  const Bytes cipher = des_cbc_encrypt(key, ByteSpan(plain), iv);
  auto decrypted = des_cbc_decrypt(wrong, ByteSpan(cipher));
  // Either padding check fails, or the plaintext differs.
  if (decrypted.is_ok()) {
    EXPECT_NE(decrypted.value(), plain);
  }
}

TEST(DesCbcTest, RejectsBadLength) {
  const Des::Key key = des_key_from_passphrase("k");
  EXPECT_EQ(des_cbc_decrypt(key, ByteSpan(Bytes(7))).code(),
            ErrorCode::kCorrupt);
  EXPECT_EQ(des_cbc_decrypt(key, ByteSpan(Bytes(8))).code(),
            ErrorCode::kCorrupt);  // IV only, no payload block
}

TEST(DesCbcTest, CiphertextHidesPlaintextStructure) {
  // Two plaintexts of identical repeated bytes: CBC must not leak equality
  // of blocks (unlike ECB).
  const Des::Key key = des_key_from_passphrase("k");
  Des::Block iv{};
  const Bytes plain(64, 0x41);
  const Bytes cipher = des_cbc_encrypt(key, ByteSpan(plain), iv);
  // Adjacent ciphertext blocks must differ.
  for (std::size_t off = 8; off + 16 <= cipher.size(); off += 8) {
    const bool equal = std::equal(cipher.begin() + off, cipher.begin() + off + 8,
                                  cipher.begin() + off + 8);
    EXPECT_FALSE(equal);
  }
}

TEST(DesKeyTest, PassphraseDeterministic) {
  EXPECT_EQ(des_key_from_passphrase("a"), des_key_from_passphrase("a"));
  EXPECT_NE(des_key_from_passphrase("a"), des_key_from_passphrase("b"));
}

}  // namespace
}  // namespace unidrive::crypto
