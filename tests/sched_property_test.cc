// Property tests: the scheduler invariants must hold for EVERY feasible
// (N, k, Ks, Kr) configuration, under randomized completion orders and
// injected failures — not just the paper's default point.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "test_seed.h"
#include "sched/download_scheduler.h"
#include "sched/plan.h"
#include "sched/upload_scheduler.h"

UNIDRIVE_REGISTER_SEED_LISTENER()

namespace unidrive::sched {
namespace {

using unidrive::testing::test_seed;

struct ParamCase {
  std::size_t n, k, ks, kr;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<ParamCase>& info) {
  const ParamCase& p = info.param;
  return "N" + std::to_string(p.n) + "k" + std::to_string(p.k) + "Ks" +
         std::to_string(p.ks) + "Kr" + std::to_string(p.kr) + "s" +
         std::to_string(p.seed);
}

CodeParams make_params(const ParamCase& c) {
  CodeParams p;
  p.num_clouds = c.n;
  p.k = c.k;
  p.ks = c.ks;
  p.kr = c.kr;
  return p;
}

std::vector<cloud::CloudId> cloud_ids(std::size_t n) {
  std::vector<cloud::CloudId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<cloud::CloudId>(i);
  return ids;
}

// Randomly drawn (N, k, Ks, Kr) combinations, filtered through
// CodeParams::validate() so only feasible points are instantiated. The
// fixed Values() sweeps below pin the paper's named configurations; this
// widens coverage to arbitrary feasible corners of the parameter space.
std::vector<ParamCase> random_cases(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ParamCase> cases;
  std::size_t attempts = 0;
  while (cases.size() < count && ++attempts < 10000) {
    ParamCase c;
    c.n = 2 + rng.next_below(7);   // N in [2, 8]
    c.k = 1 + rng.next_below(8);   // k in [1, 8]
    c.ks = 1 + rng.next_below(4);  // Ks in [1, 4]
    c.kr = 1 + rng.next_below(c.n);
    c.seed = 1000 + cases.size();  // unique -> unique test names
    if (make_params(c).validate().is_ok()) cases.push_back(c);
  }
  return cases;
}

class UploadSchedulerProperty : public ::testing::TestWithParam<ParamCase> {};

// Randomized execution: interleave task pulls and completions (some failing)
// until the scheduler declares itself finished; then check every invariant.
TEST_P(UploadSchedulerProperty, InvariantsHoldUnderRandomizedExecution) {
  const ParamCase c = GetParam();
  const CodeParams params = make_params(c);
  ASSERT_TRUE(params.validate().is_ok());

  std::vector<UploadFileSpec> files;
  Rng rng(test_seed(c.seed));
  const std::size_t num_files = 1 + rng.next_below(4);
  for (std::size_t f = 0; f < num_files; ++f) {
    UploadFileSpec spec;
    spec.path = "/f" + std::to_string(f);
    const std::size_t num_segments = 1 + rng.next_below(3);
    for (std::size_t s = 0; s < num_segments; ++s) {
      spec.segments.push_back(
          {"f" + std::to_string(f) + "s" + std::to_string(s),
           1000 + rng.next_below(100000)});
    }
    files.push_back(std::move(spec));
  }
  UploadScheduler scheduler(params, cloud_ids(c.n), files);

  std::vector<BlockTask> in_flight;
  std::size_t safety = 0;
  while (!scheduler.finished() && ++safety < 100000) {
    // Pull for a random cloud (may add to in-flight).
    const auto cloud = static_cast<cloud::CloudId>(rng.next_below(c.n));
    if (auto task = scheduler.next_task(cloud)) {
      in_flight.push_back(*task);
    }
    // Randomly complete an in-flight task; 15% fail.
    if (!in_flight.empty() &&
        (rng.bernoulli(0.7) || in_flight.size() > 3 * c.n)) {
      const std::size_t pick = rng.next_below(in_flight.size());
      const BlockTask task = in_flight[pick];
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
      scheduler.on_complete(task, !rng.bernoulli(0.15));
    }
  }
  // Drain whatever is left in flight.
  for (const BlockTask& task : in_flight) scheduler.on_complete(task, true);
  ASSERT_LT(safety, 100000u) << "scheduler livelocked";

  // Let the scheduler finish any work unblocked by the final completions.
  bool progress = true;
  while (progress && !scheduler.finished()) {
    progress = false;
    for (std::size_t i = 0; i < c.n; ++i) {
      if (auto task = scheduler.next_task(static_cast<cloud::CloudId>(i))) {
        scheduler.on_complete(*task, true);
        progress = true;
      }
    }
  }
  EXPECT_TRUE(scheduler.finished());
  EXPECT_TRUE(scheduler.all_available());
  EXPECT_TRUE(scheduler.all_reliable());

  for (const UploadFileSpec& spec : files) {
    for (const UploadSegmentSpec& seg : spec.segments) {
      const auto locations = scheduler.locations(seg.id);
      std::set<std::uint32_t> distinct;
      std::map<cloud::CloudId, std::size_t> per_cloud;
      for (const auto& loc : locations) {
        distinct.insert(loc.block_index);
        ++per_cloud[loc.cloud];
        // Block indices stay inside the code.
        EXPECT_LT(loc.block_index, params.code_n()) << seg.id;
      }
      // Availability: at least k distinct blocks.
      EXPECT_GE(distinct.size(), params.k) << seg.id;
      // Security: never more than the cap on any single cloud.
      for (const auto& [cloud_id, count] : per_cloud) {
        EXPECT_LE(count, params.max_per_cloud())
            << seg.id << " cloud " << cloud_id;
      }
      // Reliability: every cloud holds at least its fair share.
      for (const cloud::CloudId cloud_id : cloud_ids(c.n)) {
        EXPECT_GE(per_cloud[cloud_id], params.fair_share())
            << seg.id << " cloud " << cloud_id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UploadSchedulerProperty,
    ::testing::Values(
        ParamCase{5, 3, 2, 3, 1},   // paper defaults
        ParamCase{5, 3, 2, 3, 2},   // same point, different schedule
        ParamCase{5, 3, 1, 3, 3},   // no security requirement
        ParamCase{5, 2, 2, 2, 4},   // higher redundancy
        ParamCase{3, 2, 1, 2, 5},   // the paper's storage example
        ParamCase{4, 3, 2, 3, 6},
        ParamCase{7, 4, 2, 4, 7},
        ParamCase{6, 6, 2, 3, 8},   // many blocks per segment
        ParamCase{9, 5, 3, 4, 9}),
    case_name);

// The same invariants (availability floor, security cap, fair-share
// reliability) over 24 randomly sampled feasible parameter points.
INSTANTIATE_TEST_SUITE_P(RandomSweep, UploadSchedulerProperty,
                         ::testing::ValuesIn(random_cases(24, 0xA11C0DE)),
                         case_name);

class DownloadSchedulerProperty : public ::testing::TestWithParam<ParamCase> {
};

TEST_P(DownloadSchedulerProperty, FetchesKDistinctUnderChaos) {
  const ParamCase c = GetParam();
  const CodeParams params = make_params(c);
  ASSERT_TRUE(params.validate().is_ok());
  Rng rng(test_seed(c.seed * 77 + 5));

  // Build download specs equivalent to a reliable upload (fair share on
  // every cloud, plus random surplus).
  std::vector<DownloadFileSpec> files;
  const std::size_t num_files = 1 + rng.next_below(3);
  for (std::size_t f = 0; f < num_files; ++f) {
    DownloadFileSpec spec;
    spec.path = "/f" + std::to_string(f);
    DownloadSegmentSpec seg;
    seg.id = "f" + std::to_string(f) + "seg";
    seg.size = 1000 + rng.next_below(50000);
    std::uint32_t index = 0;
    for (std::size_t cloud = 0; cloud < c.n; ++cloud) {
      for (std::size_t b = 0; b < params.fair_share(); ++b) {
        seg.locations.push_back(
            {index++, static_cast<cloud::CloudId>(cloud)});
      }
      if (rng.bernoulli(0.4) &&
          params.fair_share() + 1 <= params.max_per_cloud()) {
        seg.locations.push_back(
            {index++, static_cast<cloud::CloudId>(cloud)});  // surplus
      }
    }
    spec.segments.push_back(std::move(seg));
    files.push_back(std::move(spec));
  }
  DownloadScheduler scheduler(params.k, files);

  std::vector<BlockTask> in_flight;
  std::size_t safety = 0;
  while (!scheduler.finished() && ++safety < 100000) {
    const auto cloud = static_cast<cloud::CloudId>(rng.next_below(c.n));
    if (auto task = scheduler.next_task(cloud)) in_flight.push_back(*task);
    if (!in_flight.empty() && rng.bernoulli(0.8)) {
      const std::size_t pick = rng.next_below(in_flight.size());
      const BlockTask task = in_flight[pick];
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
      scheduler.on_complete(task, !rng.bernoulli(0.2));
    }
  }
  for (const BlockTask& task : in_flight) scheduler.on_complete(task, true);
  ASSERT_LT(safety, 100000u) << "scheduler livelocked";

  bool progress = true;
  while (progress && !scheduler.all_complete()) {
    progress = false;
    for (std::size_t i = 0; i < c.n; ++i) {
      if (auto task = scheduler.next_task(static_cast<cloud::CloudId>(i))) {
        scheduler.on_complete(*task, true);
        progress = true;
      }
    }
  }
  EXPECT_TRUE(scheduler.all_complete());
  for (const DownloadFileSpec& spec : files) {
    for (const auto& seg : spec.segments) {
      const auto blocks = scheduler.fetched_blocks(seg.id);
      std::set<std::uint32_t> distinct(blocks.begin(), blocks.end());
      EXPECT_GE(distinct.size(), params.k) << seg.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DownloadSchedulerProperty,
    ::testing::Values(ParamCase{5, 3, 2, 3, 1}, ParamCase{5, 3, 2, 3, 2},
                      ParamCase{3, 2, 1, 2, 3}, ParamCase{7, 4, 2, 4, 4},
                      ParamCase{6, 6, 2, 3, 5}, ParamCase{9, 5, 3, 4, 6}),
    case_name);

INSTANTIATE_TEST_SUITE_P(RandomSweep, DownloadSchedulerProperty,
                         ::testing::ValuesIn(random_cases(12, 0xD00DC0DE)),
                         case_name);

}  // namespace
}  // namespace unidrive::sched
