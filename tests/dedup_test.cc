#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cloud/memory_cloud.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/local_fs.h"
#include "crypto/convergent.h"
#include "crypto/sha1.h"
#include "dedup/pool_index.h"
#include "repair/scrubber.h"

namespace unidrive::dedup {
namespace {

using core::ClientConfig;
using core::MemoryLocalFs;
using core::UniDriveClient;

// --- convergent sealing ------------------------------------------------------

TEST(ConvergentTest, IdKindDispatchesOnLength) {
  Rng rng(1);
  const Bytes content = rng.bytes(1000);
  const std::string sha256_id = crypto::segment_id(ByteSpan(content));
  ASSERT_EQ(sha256_id.size(), 64u);
  EXPECT_EQ(crypto::segment_id_kind(sha256_id),
            crypto::SegmentIdKind::kSha256);
  const std::string sha1_id = crypto::Sha1::hex(ByteSpan(content));
  ASSERT_EQ(sha1_id.size(), 40u);
  EXPECT_EQ(crypto::segment_id_kind(sha1_id),
            crypto::SegmentIdKind::kLegacySha1);
  EXPECT_EQ(crypto::segment_id_kind("zz"), crypto::SegmentIdKind::kUnknown);
  // Right length, not hex.
  EXPECT_EQ(crypto::segment_id_kind(std::string(64, 'g')),
            crypto::SegmentIdKind::kUnknown);
}

TEST(ConvergentTest, SealOpenRoundTrip) {
  Rng rng(2);
  const Bytes plain = rng.bytes(5000);
  const std::string id = crypto::segment_id(ByteSpan(plain));
  const Bytes sealed = crypto::convergent_seal(id, ByteSpan(plain));
  ASSERT_EQ(sealed.size(), plain.size());  // CTR is length-preserving
  EXPECT_NE(sealed, plain);
  auto opened = crypto::convergent_open(id, sealed);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  EXPECT_EQ(opened.value(), plain);
}

TEST(ConvergentTest, SealingIsDeterministic) {
  Rng rng(3);
  const Bytes plain = rng.bytes(3000);
  const std::string id = crypto::segment_id(ByteSpan(plain));
  // Convergence: same plaintext -> same key -> byte-identical ciphertext,
  // regardless of who (or which kernel dispatch) seals it.
  EXPECT_EQ(crypto::convergent_seal(id, ByteSpan(plain)),
            crypto::convergent_seal(id, ByteSpan(plain)));
}

TEST(ConvergentTest, LegacySha1IdSealsAsIdentity) {
  Rng rng(4);
  const Bytes plain = rng.bytes(2000);
  const std::string id = crypto::Sha1::hex(ByteSpan(plain));
  // Pre-convergence images stored raw-plaintext codewords; their ids must
  // keep passing through both directions untouched.
  EXPECT_EQ(crypto::convergent_seal(id, ByteSpan(plain)), plain);
  auto opened = crypto::convergent_open(id, plain);
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ(opened.value(), plain);
}

TEST(ConvergentTest, OpenDetectsTampering) {
  Rng rng(5);
  const Bytes plain = rng.bytes(4000);
  const std::string id = crypto::segment_id(ByteSpan(plain));
  Bytes sealed = crypto::convergent_seal(id, ByteSpan(plain));
  sealed[100] ^= 0x5a;
  auto opened = crypto::convergent_open(id, sealed);
  ASSERT_FALSE(opened.is_ok());
  EXPECT_EQ(opened.status().code(), ErrorCode::kCorrupt);
}

TEST(ConvergentTest, VerifySegmentId) {
  Rng rng(6);
  const Bytes plain = rng.bytes(1234);
  const std::string id = crypto::segment_id(ByteSpan(plain));
  EXPECT_TRUE(crypto::verify_segment_id(id, ByteSpan(plain)));
  EXPECT_TRUE(crypto::verify_segment_id(crypto::Sha1::hex(ByteSpan(plain)),
                                        ByteSpan(plain)));
  Bytes other = plain;
  other[0] ^= 1;
  EXPECT_FALSE(crypto::verify_segment_id(id, ByteSpan(other)));
}

TEST(ConvergentTest, StorageAddressRevealsNoKeyMaterial) {
  Rng rng(7);
  const Bytes plain = rng.bytes(2048);
  const std::string id = crypto::segment_id(ByteSpan(plain));
  const std::string addr = crypto::storage_address(id);
  // The convergent key is the id's leading bytes, so the on-cloud name must
  // be a different (one-way) string — never the id itself or a prefix
  // relationship in either direction.
  ASSERT_EQ(addr.size(), 64u);
  EXPECT_NE(addr, id);
  EXPECT_NE(addr.substr(0, 32), id.substr(0, 32));
  // Deterministic in the content: convergence (and dedup) is preserved.
  EXPECT_EQ(addr, crypto::storage_address(id));
  // Legacy SHA-1 ids are not key material and keep their original address,
  // so pre-upgrade blocks stay reachable at their old paths.
  const std::string sha1_id = crypto::Sha1::hex(ByteSpan(plain));
  EXPECT_EQ(crypto::storage_address(sha1_id), sha1_id);
  // block_name embeds the address, not the id.
  const std::string name = metadata::block_name(id, 3);
  EXPECT_EQ(name, addr + "_3");
  EXPECT_EQ(name.find(id), std::string::npos);
}

// --- pool index --------------------------------------------------------------

metadata::SyncFolderImage image_with_segment(const std::string& id,
                                             std::uint64_t size,
                                             std::size_t blocks) {
  metadata::SyncFolderImage image;
  metadata::SegmentInfo seg;
  seg.id = id;
  seg.size = size;
  for (std::size_t i = 0; i < blocks; ++i) {
    metadata::BlockLocation loc;
    loc.cloud = static_cast<cloud::CloudId>(i);
    loc.block_index = i;
    seg.blocks.push_back(loc);
  }
  image.upsert_segment(seg);
  return image;
}

TEST(PoolIndexTest, ProbeMissesOnEmptyIndex) {
  SegmentPoolIndex pool;
  const auto probe = pool.probe_and_retain("fA", std::string(64, 'a'), 100, 3);
  EXPECT_FALSE(probe.hit);
  EXPECT_EQ(pool.entry_count(), 0u);
}

TEST(PoolIndexTest, AbsorbThenProbeHits) {
  SegmentPoolIndex pool;
  const std::string id(64, 'b');
  pool.absorb_image("fA", image_with_segment(id, 100, 5));
  const auto probe = pool.probe_and_retain("fB", id, 100, 3);
  EXPECT_TRUE(probe.hit);
  EXPECT_TRUE(probe.newly_retained);
  EXPECT_EQ(probe.blocks.size(), 5u);
  EXPECT_EQ(pool.reference_count(id), 2u);
  // Wrong size or too few blocks: sanity screens reject the hit.
  EXPECT_FALSE(pool.probe_and_retain("fC", id, 99, 3).hit);
  EXPECT_FALSE(pool.probe_and_retain("fC", id, 100, 6).hit);
}

TEST(PoolIndexTest, ReleaseDropsOnlyUncommittedPins) {
  SegmentPoolIndex pool;
  const std::string id(64, 'c');
  pool.absorb_image("fA", image_with_segment(id, 50, 5));
  ASSERT_TRUE(pool.probe_and_retain("fB", id, 50, 3).hit);
  EXPECT_TRUE(pool.referenced_elsewhere("fA", id));
  // Abandoned commit: the pin goes away, fA's committed ref stays.
  pool.release("fB", id);
  EXPECT_FALSE(pool.referenced_elsewhere("fA", id));
  EXPECT_EQ(pool.reference_count(id), 1u);
  // A pin backed by a committed image survives release.
  ASSERT_TRUE(pool.probe_and_retain("fB", id, 50, 3).hit);
  pool.absorb_image("fB", image_with_segment(id, 50, 5));
  pool.release("fB", id);
  EXPECT_TRUE(pool.referenced_elsewhere("fA", id));
}

TEST(PoolIndexTest, GcGuardProtectsSharedSegments) {
  SegmentPoolIndex pool;
  const std::string id(64, 'd');
  pool.absorb_image("fA", image_with_segment(id, 80, 5));
  pool.absorb_image("fB", image_with_segment(id, 80, 5));
  // fA may not free it: fB still references.
  EXPECT_FALSE(pool.try_begin_gc("fA", id));
  EXPECT_EQ(pool.reference_count(id), 2u);
  // fB stops referencing it (empty committed image), then fA may.
  pool.absorb_image("fB", metadata::SyncFolderImage{});
  EXPECT_TRUE(pool.try_begin_gc("fA", id));
  pool.finish_gc(id);  // deletes "done"; probes may answer again
  // The entry is gone the moment GC is granted: a late probe cannot be
  // handed soon-to-be-deleted block locations.
  EXPECT_FALSE(pool.probe_and_retain("fC", id, 80, 3).hit);
  // Unknown ids are trivially collectable.
  EXPECT_TRUE(pool.try_begin_gc("fA", std::string(64, 'e')));
  pool.finish_gc(std::string(64, 'e'));
}

TEST(PoolIndexTest, TombstoneStallsProbesUntilFinishGc) {
  SegmentPoolIndex pool;
  const std::string id(64, 'f');
  pool.absorb_image("fA", image_with_segment(id, 70, 5));
  ASSERT_TRUE(pool.try_begin_gc("fA", id));
  // Block deletes are now "in flight". A prober must not be answered until
  // finish_gc — a miss would trigger a re-upload onto the exact
  // (deterministic) paths the deletes are still removing.
  std::atomic<bool> deletes_done{false};
  std::thread prober([&pool, &id, &deletes_done] {
    const auto probe = pool.probe_and_retain("fB", id, 70, 3);
    EXPECT_FALSE(probe.hit);  // entry was removed at GC grant
    EXPECT_TRUE(deletes_done.load());  // ...but the answer waited for it
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  deletes_done.store(true);
  pool.finish_gc(id);
  prober.join();
}

TEST(PoolIndexTest, ConcurrentProbeReleaseGcIsRaceFree) {
  SegmentPoolIndex pool;
  constexpr int kSegments = 16;
  std::vector<std::string> ids;
  for (int s = 0; s < kSegments; ++s) {
    ids.push_back(std::string(64, static_cast<char>('a' + s)));
    pool.absorb_image("base", image_with_segment(ids.back(), 64, 5));
  }
  // Four folders hammer probe/release, one folder churns absorb, one keeps
  // attempting GC. TSan-checked: the index must stay internally consistent.
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&pool, &ids, w] {
      const std::string folder = "f" + std::to_string(w);
      for (int round = 0; round < 200; ++round) {
        const std::string& id = ids[(w + round) % kSegments];
        const auto probe = pool.probe_and_retain(folder, id, 64, 3);
        if (probe.hit && probe.newly_retained) pool.release(folder, id);
      }
    });
  }
  workers.emplace_back([&pool, &ids] {
    for (int round = 0; round < 100; ++round) {
      const std::string& id = ids[round % kSegments];
      pool.absorb_image("churn", image_with_segment(id, 64, 5));
      pool.absorb_image("churn", metadata::SyncFolderImage{});
    }
  });
  workers.emplace_back([&pool, &ids] {
    for (int round = 0; round < 100; ++round) {
      const std::string& id = ids[round % kSegments];
      if (pool.try_begin_gc("gc", id)) pool.finish_gc(id);
    }
  });
  for (auto& t : workers) t.join();
  // "base" never released its committed references, so every entry that
  // survived GC attempts still reports it; transient pins are all gone.
  for (const std::string& id : ids) {
    const std::size_t refs = pool.reference_count(id);
    EXPECT_TRUE(refs == 0 || refs == 1) << "id " << id << " refs " << refs;
  }
}

// --- convergence across independent users ------------------------------------

ClientConfig small_config(const std::string& device) {
  ClientConfig cfg;
  cfg.device = device;
  cfg.theta = 64 << 10;
  cfg.lock.retry.backoff_base = 0.001;
  cfg.lock.retry.backoff_cap = 0.01;
  cfg.driver.connections_per_cloud = 2;
  return cfg;
}

cloud::MultiCloud make_memory_clouds(int n, const std::string& tag) {
  cloud::MultiCloud clouds;
  for (int i = 0; i < n; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), tag + std::to_string(i)));
  }
  return clouds;
}

// All block objects under /data across a cloud set, name -> bytes.
std::map<std::string, Bytes> data_objects(const cloud::MultiCloud& clouds) {
  std::map<std::string, Bytes> out;
  for (const auto& c : clouds) {
    auto listing = c->list("/data");
    if (!listing.is_ok()) continue;
    for (const auto& f : listing.value()) {
      out[f.name] = c->download("/data/" + f.name).value();
    }
  }
  return out;
}

TEST(ConvergenceTest, TwoIndependentUsersProduceIdenticalBlocks) {
  // Two users on DISJOINT cloud accounts, no shared pool index, no shared
  // anything — only the same file content. Convergent dispersal must make
  // every coded block byte-identical across the two deployments, which is
  // the property that lets a provider-side (or gateway-side) pool dedup
  // them without reading plaintext.
  Rng rng(77);
  const Bytes content = rng.bytes(200000);  // several 64 KB segments

  auto clouds_a = make_memory_clouds(5, "ca");
  auto fs_a = std::make_shared<MemoryLocalFs>();
  UniDriveClient user_a(clouds_a, fs_a, small_config("alice"));
  ASSERT_TRUE(fs_a->write("/shared.bin", ByteSpan(content)).is_ok());
  ASSERT_TRUE(user_a.sync().is_ok());

  auto clouds_b = make_memory_clouds(5, "cb");
  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient user_b(clouds_b, fs_b, small_config("bob"));
  ASSERT_TRUE(fs_b->write("/shared.bin", ByteSpan(content)).is_ok());
  ASSERT_TRUE(user_b.sync().is_ok());

  const auto blocks_a = data_objects(clouds_a);
  const auto blocks_b = data_objects(clouds_b);
  ASSERT_FALSE(blocks_a.empty());
  // Both users derive the same storage addresses from the content...
  std::set<std::string> segments_a, segments_b;
  for (const auto& [name, bytes] : blocks_a) {
    segments_a.insert(name.substr(0, name.find('_')));
  }
  for (const auto& [name, bytes] : blocks_b) {
    segments_b.insert(name.substr(0, name.find('_')));
  }
  EXPECT_EQ(segments_a, segments_b);
  // ...and wherever both stacks materialized the same block index, the
  // sealed codeword is byte-identical. (HOW MANY spare blocks each user
  // keeps is a placement policy decision and may legitimately differ; the
  // convergence property is that block content is a pure function of the
  // plaintext and the index.)
  std::size_t compared = 0;
  for (const auto& [name, bytes] : blocks_a) {
    const auto it = blocks_b.find(name);
    if (it == blocks_b.end()) continue;
    ++compared;
    ASSERT_EQ(bytes.size(), it->second.size()) << "block " << name;
    EXPECT_TRUE(bytes == it->second) << "block bytes diverge: " << name;
  }
  // Every segment must overlap in at least its k data blocks.
  EXPECT_GE(compared, segments_a.size() * 3);

  // Shared-plane hygiene: no stored object name may embed a committed
  // segment id — the convergent key is derived from the id, so a name that
  // contained it would hand the decryption key to anyone listing the pool.
  for (const auto& [seg_id, seg] : user_a.image().segments()) {
    (void)seg;
    for (const auto& [name, bytes] : blocks_a) {
      (void)bytes;
      EXPECT_EQ(name.find(seg_id), std::string::npos)
          << "stored name " << name << " leaks segment id " << seg_id;
    }
  }
}

// --- cross-folder dedup over a shared data plane -----------------------------

// Routes the block namespace (/data) to a shared backing cloud and every
// other namespace (metadata, locks, version files) to a private one — two
// sync folders with independent metadata planes landing on one physical
// block pool, which is exactly the deployment the SegmentPoolIndex serves.
class SplitNamespaceCloud final : public cloud::CloudProvider {
 public:
  SplitNamespaceCloud(cloud::CloudPtr shared_data, cloud::CloudPtr priv)
      : data_(std::move(shared_data)), private_(std::move(priv)) {}

  [[nodiscard]] cloud::CloudId id() const noexcept override {
    return data_->id();
  }
  [[nodiscard]] std::string name() const override { return data_->name(); }

  Status upload(const std::string& path, ByteSpan data) override {
    return route(path)->upload(path, data);
  }
  Result<Bytes> download(const std::string& path) override {
    return route(path)->download(path);
  }
  Status create_dir(const std::string& path) override {
    return route(path)->create_dir(path);
  }
  Result<std::vector<cloud::FileInfo>> list(const std::string& dir) override {
    return route(dir)->list(dir);
  }
  Status remove(const std::string& path) override {
    return route(path)->remove(path);
  }

 private:
  cloud::CloudProvider* route(const std::string& path) {
    return path == "/data" || path.rfind("/data/", 0) == 0 ? data_.get()
                                                           : private_.get();
  }
  cloud::CloudPtr data_;
  cloud::CloudPtr private_;
};

struct SharedPoolRig {
  std::vector<std::shared_ptr<cloud::MemoryCloud>> data_clouds;
  // Private (metadata/lock) clouds are keyed per FOLDER: every device of a
  // folder must see the same metadata plane, only the /data plane is shared
  // fleet-wide.
  std::map<std::string, std::vector<cloud::CloudPtr>> private_clouds;
  PoolIndexPtr pool = std::make_shared<SegmentPoolIndex>();

  // Enrollment for one folder: shared /data plane, private everything else.
  cloud::MultiCloud folder_clouds(const std::string& folder) {
    auto& priv = private_clouds[folder];
    if (priv.empty()) {
      for (std::size_t i = 0; i < data_clouds.size(); ++i) {
        priv.push_back(std::make_shared<cloud::MemoryCloud>(
            static_cast<cloud::CloudId>(i),
            folder + "_priv" + std::to_string(i)));
      }
    }
    cloud::MultiCloud clouds;
    for (std::size_t i = 0; i < data_clouds.size(); ++i) {
      clouds.push_back(
          std::make_shared<SplitNamespaceCloud>(data_clouds[i], priv[i]));
    }
    return clouds;
  }

  std::unique_ptr<UniDriveClient> make_client(const std::string& folder,
                                              const std::string& device,
                                              std::shared_ptr<core::LocalFs> fs,
                                              cloud::MultiCloud clouds) {
    ClientConfig cfg = small_config(device);
    cfg.pool = pool;
    cfg.folder_id = folder;
    return std::make_unique<UniDriveClient>(std::move(clouds), std::move(fs),
                                            cfg);
  }

  std::size_t data_file_count() const {
    std::size_t n = 0;
    for (const auto& c : data_clouds) n += c->file_count();
    return n;
  }
};

SharedPoolRig make_rig(int n_clouds) {
  SharedPoolRig rig;
  for (int i = 0; i < n_clouds; ++i) {
    rig.data_clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "shared" + std::to_string(i)));
  }
  return rig;
}

TEST(SharedPoolTest, SecondFolderShortCircuitsEncodeAndUpload) {
  auto rig = make_rig(5);
  Rng rng(88);
  const Bytes content = rng.bytes(180000);

  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto a = rig.make_client("folderA", "devA", fs_a, rig.folder_clouds("fa"));
  ASSERT_TRUE(fs_a->write("/movie", ByteSpan(content)).is_ok());
  const auto report_a = a->sync();
  ASSERT_TRUE(report_a.is_ok());
  EXPECT_EQ(report_a.value().segments_deduped, 0u);
  const std::size_t blocks_after_a = rig.data_file_count();
  ASSERT_GT(blocks_after_a, 0u);

  // Folder B (separate metadata plane, same data plane) syncs the same
  // content: every segment hits the pool, so the block pool must not grow
  // and the report must carry the suppressed byte count.
  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto b = rig.make_client("folderB", "devB", fs_b, rig.folder_clouds("fb"));
  ASSERT_TRUE(fs_b->write("/same-movie", ByteSpan(content)).is_ok());
  const auto report_b = b->sync();
  ASSERT_TRUE(report_b.is_ok()) << report_b.status().to_string();
  EXPECT_GT(report_b.value().segments_deduped, 0u);
  EXPECT_EQ(report_b.value().segments_uploaded, 0u);
  EXPECT_EQ(report_b.value().dedup_bytes_saved, content.size());
  EXPECT_EQ(rig.data_file_count(), blocks_after_a);

  // The deduped references must be durable: a second device of folder B
  // reconstructs the file purely from B's metadata + the shared pool.
  auto fs_b2 = std::make_shared<MemoryLocalFs>();
  auto b2 = rig.make_client("folderB", "devB2", fs_b2,
                            rig.folder_clouds("fb"));
  ASSERT_TRUE(b2->sync().is_ok());
  EXPECT_EQ(fs_b2->read("/same-movie").value(), content);
}

TEST(SharedPoolTest, MonolithicRoundWithOnlyPoolHitsStillCommitsReferences) {
  // Regression: with the staged pipeline disabled, the monolithic batch
  // path used to return an empty result when every fed segment was a pool
  // hit (nothing ever reached the pending upload map). The client then
  // committed file snapshots referencing segments with no upsert_segment
  // record — dangling refs whose probe pin was later released unbacked, so
  // another folder's GC could delete the blocks from under them.
  auto rig = make_rig(5);
  Rng rng(111);
  const Bytes content = rng.bytes(180000);

  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto a = rig.make_client("folderA", "devA", fs_a, rig.folder_clouds("fa"));
  ASSERT_TRUE(fs_a->write("/movie", ByteSpan(content)).is_ok());
  ASSERT_TRUE(a->sync().is_ok());
  const std::size_t blocks_after_a = rig.data_file_count();

  // Folder B runs the monolithic path and hits the pool on EVERY segment.
  auto fs_b = std::make_shared<MemoryLocalFs>();
  ClientConfig cfg_b = small_config("devB");
  cfg_b.pipeline.enabled = false;
  cfg_b.pool = rig.pool;
  cfg_b.folder_id = "folderB";
  auto b = std::make_unique<UniDriveClient>(rig.folder_clouds("fb"), fs_b,
                                            cfg_b);
  ASSERT_TRUE(fs_b->write("/same-movie", ByteSpan(content)).is_ok());
  const auto report_b = b->sync();
  ASSERT_TRUE(report_b.is_ok()) << report_b.status().to_string();
  EXPECT_GT(report_b.value().segments_deduped, 0u);
  EXPECT_EQ(report_b.value().segments_uploaded, 0u);  // no underflow either
  EXPECT_EQ(rig.data_file_count(), blocks_after_a);

  // The committed image must carry a block map for every referenced
  // segment (no blockless dangling refs)...
  for (const auto& [path, snapshot] : b->image().files()) {
    (void)path;
    for (const std::string& seg_id : snapshot.segment_ids) {
      const metadata::SegmentInfo* seg = b->image().find_segment(seg_id);
      ASSERT_NE(seg, nullptr) << "dangling segment ref " << seg_id;
      EXPECT_FALSE(seg->blocks.empty()) << "blockless segment " << seg_id;
    }
  }
  // ...and folder A's GC must see folder B's committed references: after A
  // deletes its file and collects, B can still read everything.
  ASSERT_TRUE(fs_a->remove("/movie").is_ok());
  ASSERT_TRUE(a->sync().is_ok());
  ASSERT_TRUE(a->collect_garbage().is_ok());
  auto fs_b2 = std::make_shared<MemoryLocalFs>();
  auto b2 = rig.make_client("folderB", "devB2", fs_b2,
                            rig.folder_clouds("fb"));
  ASSERT_TRUE(b2->sync().is_ok());
  EXPECT_EQ(fs_b2->read("/same-movie").value(), content);
}

TEST(SharedPoolTest, GcSparesSegmentsReferencedByAnotherFolder) {
  auto rig = make_rig(5);
  Rng rng(99);
  const Bytes content = rng.bytes(150000);

  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto a = rig.make_client("folderA", "devA", fs_a, rig.folder_clouds("fa"));
  ASSERT_TRUE(fs_a->write("/doc", ByteSpan(content)).is_ok());
  ASSERT_TRUE(a->sync().is_ok());

  auto fs_b = std::make_shared<MemoryLocalFs>();
  auto b = rig.make_client("folderB", "devB", fs_b, rig.folder_clouds("fb"));
  ASSERT_TRUE(fs_b->write("/doc", ByteSpan(content)).is_ok());
  ASSERT_TRUE(b->sync().is_ok());
  const std::size_t blocks_shared = rig.data_file_count();

  // Folder A deletes its only file and garbage-collects. Without the pool
  // guard this would delete the physical blocks folder B still depends on.
  ASSERT_TRUE(fs_a->remove("/doc").is_ok());
  ASSERT_TRUE(a->sync().is_ok());
  auto collected_a = a->collect_garbage();
  ASSERT_TRUE(collected_a.is_ok()) << collected_a.status().to_string();
  EXPECT_EQ(rig.data_file_count(), blocks_shared);

  // Folder B still reads the content, and its scrubber finds nothing
  // missing: the metadata's promises all still hold on the clouds.
  auto fs_b2 = std::make_shared<MemoryLocalFs>();
  auto b2 = rig.make_client("folderB", "devB2", fs_b2,
                            rig.folder_clouds("fb"));
  ASSERT_TRUE(b2->sync().is_ok());
  EXPECT_EQ(fs_b2->read("/doc").value(), content);
  repair::Scrubber scrubber(*b2, b2->durability(), repair::ScrubConfig{});
  const repair::ScrubReport scrub = scrubber.run_pass();
  EXPECT_EQ(scrub.missing, 0u);
  EXPECT_EQ(scrub.corrupt, 0u);

  // Once the LAST folder lets go, the blocks really are collected.
  ASSERT_TRUE(fs_b->remove("/doc").is_ok());
  ASSERT_TRUE(b->sync().is_ok());
  ASSERT_TRUE(b2->sync().is_ok());
  auto collected_b = b->collect_garbage();
  ASSERT_TRUE(collected_b.is_ok()) << collected_b.status().to_string();
  EXPECT_GE(collected_b.value(), 1u);
  EXPECT_LT(rig.data_file_count(), blocks_shared);
}

}  // namespace
}  // namespace unidrive::dedup
