#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>
#include <string>

#include "sim/bandwidth.h"
#include "sim/e2e.h"
#include "sim/event_queue.h"
#include "sim/failure.h"
#include "sim/fluid.h"
#include "sim/profiles.h"
#include "sim/transfer_run.h"

namespace unidrive::sim {
namespace {

// --- event queue ---------------------------------------------------------------

TEST(SimEnvTest, EventsRunInTimeOrder) {
  SimEnv env;
  std::vector<int> order;
  env.schedule(3.0, [&] { order.push_back(3); });
  env.schedule(1.0, [&] { order.push_back(1); });
  env.schedule(2.0, [&] { order.push_back(2); });
  env.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(env.now(), 3.0);
}

TEST(SimEnvTest, SimultaneousEventsFifo) {
  SimEnv env;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    env.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  env.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimEnvTest, NestedScheduling) {
  SimEnv env;
  double fired_at = -1;
  env.schedule(1.0, [&] {
    env.schedule(2.0, [&] { fired_at = env.now(); });
  });
  env.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(SimEnvTest, RunUntilStopsAtBoundary) {
  SimEnv env;
  int count = 0;
  env.schedule(1.0, [&] { ++count; });
  env.schedule(5.0, [&] { ++count; });
  env.run_until(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(env.now(), 2.0);
  env.run();
  EXPECT_EQ(count, 2);
}

TEST(SimEnvTest, ZeroDelayFromCallbackRunsAfterQueuedPeers) {
  // An event that schedules a zero-delay follow-up at its own timestamp
  // yields to events already queued for that instant (FIFO by sequence),
  // then runs at the SAME virtual time — no clock creep.
  SimEnv env;
  std::vector<int> order;
  env.schedule(1.0, [&] {
    order.push_back(1);
    env.schedule(0.0, [&] {
      order.push_back(3);
      EXPECT_DOUBLE_EQ(env.now(), 1.0);
    });
  });
  env.schedule(1.0, [&] { order.push_back(2); });
  env.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(env.now(), 1.0);
}

TEST(SimEnvTest, FarFutureEventSurvivesRunUntil) {
  SimEnv env;
  bool fired = false;
  env.schedule_at(1e15, [&] { fired = true; });  // ~30M virtual years out
  env.run_until(100.0);
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(env.now(), 100.0);
  EXPECT_EQ(env.pending(), 1u);
  env.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(env.now(), 1e15);
}

TEST(SimEnvTest, StepExecutesExactlyOneEvent) {
  SimEnv env;
  int count = 0;
  env.schedule(1.0, [&] { ++count; });
  env.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(env.step());
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(env.now(), 1.0);
  EXPECT_TRUE(env.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(env.step());  // queue drained
  EXPECT_TRUE(env.empty());
}

TEST(SimEnvTest, InterleavedSameTimestampCascades) {
  // Two chains ping-ponging zero-delay events at one instant interleave in
  // strict scheduling order — the seq tiebreak is global, not per-chain.
  SimEnv env;
  std::vector<std::string> order;
  std::function<void(char, int)> chain = [&](char name, int depth) {
    order.push_back(std::string(1, name) + std::to_string(depth));
    if (depth < 2) {
      env.schedule(0.0, [&chain, name, depth] { chain(name, depth + 1); });
    }
  };
  env.schedule(1.0, [&] { chain('a', 0); });
  env.schedule(1.0, [&] { chain('b', 0); });
  env.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2",
                                             "b2"}));
}

// --- bandwidth models -------------------------------------------------------------

TEST(BandwidthTest, ConstantIsConstant) {
  auto bw = constant_bw(1e6);
  EXPECT_DOUBLE_EQ(bw->at(0), 1e6);
  EXPECT_DOUBLE_EQ(bw->at(12345.6), 1e6);
}

TEST(BandwidthTest, FluctuatingStaysPositiveAndBounded) {
  FluctuationParams params;
  auto bw = fluctuating_bw(1e6, params, 42);
  for (double t = 0; t < 7 * 86400; t += 613) {
    const double v = bw->at(t);
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1e6 * 100);  // lognormal tail sanity bound
  }
}

TEST(BandwidthTest, FluctuationProducesLargeDailySwings) {
  // The measurement study saw up to 17x max/min within a day.
  FluctuationParams params;
  params.noise_sigma = 0.7;
  auto bw = fluctuating_bw(1e6, params, 7);
  double max_ratio = 0;
  for (int day = 0; day < 20; ++day) {
    double lo = 1e18, hi = 0;
    for (int s = 0; s < 48; ++s) {
      const double v = bw->at(day * 86400.0 + s * 1800.0);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    max_ratio = std::max(max_ratio, hi / lo);
  }
  EXPECT_GT(max_ratio, 8.0);
  EXPECT_LT(max_ratio, 400.0);
}

TEST(BandwidthTest, DifferentSeedsDecorrelated) {
  FluctuationParams params;
  auto a = fluctuating_bw(1e6, params, 1);
  auto b = fluctuating_bw(1e6, params, 2);
  // Pearson correlation of log-rates over many slots should be ~0.
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double t = i * 600.0;
    const double x = std::log(a->at(t));
    const double y = std::log(b->at(t));
    sa += x;
    sb += y;
    saa += x * x;
    sbb += y * y;
    sab += x * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double var_a = saa / n - (sa / n) * (sa / n);
  const double var_b = sbb / n - (sb / n) * (sb / n);
  const double corr = cov / std::sqrt(var_a * var_b);
  EXPECT_LT(std::abs(corr), 0.2);
}

TEST(BandwidthTest, ScaledBw) {
  auto bw = scaled_bw(constant_bw(100), 0.5);
  EXPECT_DOUBLE_EQ(bw->at(10), 50);
}

// --- failure model -------------------------------------------------------------

TEST(FailureModelTest, BaseAndSizeTerms) {
  FailureParams params;
  params.base_rate = 0.01;
  params.per_mb_rate = 0.01;
  params.trouble_probability = 0;  // isolate the deterministic part
  FailureModel model(5, params, 1);
  EXPECT_NEAR(model.failure_prob(0, 0, 0), 0.01, 1e-12);
  EXPECT_NEAR(model.failure_prob(0, 0, 8 << 20), 0.09, 1e-12);
}

TEST(FailureModelTest, PerCloudOverride) {
  FailureParams params;
  params.base_rate = 0.01;
  params.trouble_probability = 0;
  FailureModel model(5, params, 1);
  model.set_base_rate(2, 0.2);
  EXPECT_NEAR(model.failure_prob(2, 0, 0), 0.2, 1e-12);
  EXPECT_NEAR(model.failure_prob(1, 0, 0), 0.01, 1e-12);
}

TEST(FailureModelTest, AtMostOneTroubledCloud) {
  FailureParams params;
  FailureModel model(5, params, 99);
  for (double t = 0; t < 30 * 86400; t += params.trouble_slot_seconds) {
    const int troubled = model.troubled_cloud(t);
    EXPECT_GE(troubled, -1);
    EXPECT_LT(troubled, 5);
  }
}

TEST(FailureModelTest, FailureIndicatorsNegativelyCorrelated) {
  // Reproduces the Table 1 effect: indicators of "elevated failure rate"
  // across clouds must anti-correlate because trouble is exclusive.
  FailureParams params;
  params.trouble_probability = 0.6;
  FailureModel model(3, params, 5);
  const int n = 4000;
  std::vector<std::vector<double>> x(3, std::vector<double>(n));
  for (int i = 0; i < n; ++i) {
    const double t = i * params.trouble_slot_seconds;
    for (int c = 0; c < 3; ++c) {
      x[c][i] = model.failure_prob(c, t, 0) > 0.2 ? 1.0 : 0.0;
    }
  }
  auto corr = [&](int a, int b) {
    double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
    for (int i = 0; i < n; ++i) {
      sa += x[a][i];
      sb += x[b][i];
      saa += x[a][i] * x[a][i];
      sbb += x[b][i] * x[b][i];
      sab += x[a][i] * x[b][i];
    }
    const double cov = sab / n - (sa / n) * (sb / n);
    const double va = saa / n - (sa / n) * (sa / n);
    const double vb = sbb / n - (sb / n) * (sb / n);
    return cov / std::sqrt(va * vb);
  };
  EXPECT_LT(corr(0, 1), -0.05);
  EXPECT_LT(corr(0, 2), -0.05);
  EXPECT_LT(corr(1, 2), -0.05);
}

// --- fluid network -------------------------------------------------------------

TEST(FluidNetTest, SingleTransferTakesBytesOverBandwidth) {
  SimEnv env;
  FluidNet net(env);
  net.set_link({0, false}, constant_bw(1000));
  double done_at = -1;
  net.start_transfer({0, false}, 5000, [&](SimTime t) { done_at = t; });
  env.run();
  EXPECT_NEAR(done_at, 5.0, 0.01);
}

TEST(FluidNetTest, TwoTransfersShareBandwidth) {
  SimEnv env;
  FluidNet net(env);
  net.set_link({0, false}, constant_bw(1000));
  double t1 = -1, t2 = -1;
  net.start_transfer({0, false}, 1000, [&](SimTime t) { t1 = t; });
  net.start_transfer({0, false}, 1000, [&](SimTime t) { t2 = t; });
  env.run();
  // Both share 500 B/s until both finish at ~2 s.
  EXPECT_NEAR(t1, 2.0, 0.05);
  EXPECT_NEAR(t2, 2.0, 0.05);
}

TEST(FluidNetTest, ShortTransferReleasesBandwidth) {
  SimEnv env;
  FluidNet net(env);
  net.set_link({0, false}, constant_bw(1000));
  double t_small = -1, t_big = -1;
  net.start_transfer({0, false}, 500, [&](SimTime t) { t_small = t; });
  net.start_transfer({0, false}, 2000, [&](SimTime t) { t_big = t; });
  env.run();
  // Small: shares 500 B/s -> done at 1 s. Big: 500 B in first second, then
  // full 1000 B/s -> done at 1 + 1.5 = 2.5 s.
  EXPECT_NEAR(t_small, 1.0, 0.05);
  EXPECT_NEAR(t_big, 2.5, 0.1);
}

TEST(FluidNetTest, LinksAreIndependent) {
  SimEnv env;
  FluidNet net(env);
  net.set_link({0, false}, constant_bw(1000));
  net.set_link({1, false}, constant_bw(2000));
  double t0 = -1, t1 = -1;
  net.start_transfer({0, false}, 1000, [&](SimTime t) { t0 = t; });
  net.start_transfer({1, false}, 1000, [&](SimTime t) { t1 = t; });
  env.run();
  EXPECT_NEAR(t0, 1.0, 0.01);
  EXPECT_NEAR(t1, 0.5, 0.01);
}

TEST(FluidNetTest, PerConnectionCapLimitsRate) {
  SimEnv env;
  FluidNet net(env);
  net.set_link({0, false}, constant_bw(10000), /*per_connection_cap=*/1000);
  double done_at = -1;
  net.start_transfer({0, false}, 2000, [&](SimTime t) { done_at = t; });
  env.run();
  EXPECT_NEAR(done_at, 2.0, 0.01);  // capped at 1000 B/s despite 10k link
}

TEST(FluidNetTest, ZeroByteTransferCompletesImmediately) {
  SimEnv env;
  FluidNet net(env);
  net.set_link({0, false}, constant_bw(1000));
  double done_at = -1;
  net.start_transfer({0, false}, 0, [&](SimTime t) { done_at = t; });
  env.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(FluidNetTest, TimeVaryingBandwidthIntegrated) {
  // Bandwidth doubles halfway: completion must land between the constant
  // bounds.
  struct StepBw final : BandwidthModel {
    [[nodiscard]] double at(SimTime t) const override {
      return t < 10 ? 100.0 : 200.0;
    }
  };
  SimEnv env;
  FluidNet net(env, /*quantum=*/0.5);
  net.set_link({0, false}, std::make_shared<StepBw>());
  double done_at = -1;
  net.start_transfer({0, false}, 2000, [&](SimTime t) { done_at = t; });
  env.run();
  // 1000 bytes in the first 10 s, remaining 1000 at 200 B/s -> ~15 s.
  EXPECT_NEAR(done_at, 15.0, 1.0);
}

TEST(BandwidthTest, TraceInterpolatesAndClamps) {
  auto bw = trace_bw({{0, 100}, {10, 200}, {20, 100}});
  EXPECT_DOUBLE_EQ(bw->at(-5), 100);   // clamp before
  EXPECT_DOUBLE_EQ(bw->at(0), 100);
  EXPECT_DOUBLE_EQ(bw->at(5), 150);    // interpolation
  EXPECT_DOUBLE_EQ(bw->at(10), 200);
  EXPECT_DOUBLE_EQ(bw->at(15), 150);
  EXPECT_DOUBLE_EQ(bw->at(99), 100);   // clamp after
}

TEST(BandwidthTest, TraceFromCsv) {
  auto parsed = trace_bw_from_csv(
      "# time,rate\n0,1000\n60, 2000\n\n120,500\n");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_DOUBLE_EQ(parsed.value()->at(30), 1500);
}

TEST(BandwidthTest, TraceCsvRejectsBadInput) {
  EXPECT_FALSE(trace_bw_from_csv("").is_ok());
  EXPECT_FALSE(trace_bw_from_csv("garbage line").is_ok());
  EXPECT_FALSE(trace_bw_from_csv("0,100\n10,-5\n").is_ok());
  EXPECT_FALSE(trace_bw_from_csv("10,100\n0,100\n").is_ok());  // unsorted
}

// --- shared access link --------------------------------------------------------

TEST(FluidNetTest, AccessCapacitySharedAcrossLinks) {
  // Two fat links, but the device's downlink is 1000 B/s: total download
  // rate must respect the shared cap (max-min fair).
  SimEnv env;
  FluidNet net(env);
  net.set_link({0, true}, constant_bw(100000));
  net.set_link({1, true}, constant_bw(100000));
  net.set_access_capacity(/*download=*/true, 1000);
  double t0 = -1, t1 = -1;
  net.start_transfer({0, true}, 1000, [&](SimTime t) { t0 = t; });
  net.start_transfer({1, true}, 1000, [&](SimTime t) { t1 = t; });
  env.run();
  // 2000 bytes over a 1000 B/s shared access link: ~2 s, not ~0.02 s.
  EXPECT_NEAR(t0, 2.0, 0.1);
  EXPECT_NEAR(t1, 2.0, 0.1);
}

TEST(FluidNetTest, AccessCapacityDoesNotLimitOtherDirection) {
  SimEnv env;
  FluidNet net(env);
  net.set_link({0, false}, constant_bw(10000));
  net.set_access_capacity(/*download=*/true, 100);  // download-only cap
  double done = -1;
  net.start_transfer({0, false}, 10000, [&](SimTime t) { done = t; });
  env.run();
  EXPECT_NEAR(done, 1.0, 0.05);  // uploads unaffected
}

TEST(FluidNetTest, MaxMinRedistributesFromSlowLinks) {
  // Link 0 is a trickle (100 B/s), link 1 is fat; access cap 1000. The fat
  // link must get the leftover capacity (900), not cap/2.
  SimEnv env;
  FluidNet net(env);
  net.set_link({0, true}, constant_bw(100));
  net.set_link({1, true}, constant_bw(100000));
  net.set_access_capacity(true, 1000);
  double slow = -1, fast = -1;
  net.start_transfer({0, true}, 100, [&](SimTime t) { slow = t; });
  net.start_transfer({1, true}, 900, [&](SimTime t) { fast = t; });
  env.run();
  EXPECT_NEAR(slow, 1.0, 0.05);
  EXPECT_NEAR(fast, 1.0, 0.1);  // got ~900 B/s, not 500
}

// --- download hedging --------------------------------------------------------

TEST(TransferRunTest, HedgingRescuesStragglerDownloads) {
  // One block of each segment sits on a dead-slow cloud; the fast clouds
  // hold surplus blocks. With dynamic scheduling the job must finish near
  // fast-cloud speed; with static polling it is pinned on the slow cloud.
  auto run_once = [](bool dynamic) {
    SimEnv env(77);
    FluidNet net(env);
    std::vector<std::unique_ptr<SimCloud>> clouds;
    const double rates[3] = {1e6, 8e5, 1e3};  // cloud 2 is a crawler
    for (std::uint32_t id = 0; id < 3; ++id) {
      SimCloudConfig config;
      config.id = id;
      config.name = "c" + std::to_string(id);
      config.up = constant_bw(rates[id]);
      config.down = constant_bw(rates[id]);
      config.request_latency = 0.01;
      clouds.push_back(std::make_unique<SimCloud>(env, net, config));
    }
    std::vector<SimCloud*> ptrs;
    for (auto& c : clouds) ptrs.push_back(c.get());

    sched::DownloadFileSpec file;
    file.path = "/f";
    sched::DownloadSegmentSpec seg;
    seg.id = "s";
    seg.size = 3e5;  // k=3 -> 100 KB blocks
    // Blocks 0,1 on fast clouds, 2 on the crawler; surplus 3,4 on fast.
    seg.locations = {{0, 0}, {1, 1}, {2, 2}, {3, 0}, {4, 1}};
    file.segments.push_back(seg);
    sched::DownloadScheduler scheduler(3, {file});
    sched::ThroughputMonitor monitor;
    RunConfig config;
    config.dynamic_polling = dynamic;
    const auto result =
        run_download_job(env, ptrs, scheduler, monitor, config);
    EXPECT_TRUE(result.all_complete);
    return result.finish_time - result.start_time;
  };
  const double with_hedge = run_once(true);
  const double without_hedge = run_once(false);
  EXPECT_LT(with_hedge, 5.0);     // ~100 KB blocks at ~1 MB/s
  EXPECT_GT(without_hedge, 50.0);           // pinned on the 1 KB/s crawler
}

// --- SimCloud -------------------------------------------------------------

TEST(SimCloudTest, UploadCompletesAndCounts) {
  SimEnv env;
  FluidNet net(env);
  SimCloudConfig config;
  config.id = 0;
  config.name = "c";
  config.up = constant_bw(1000);
  config.down = constant_bw(1000);
  config.request_latency = 0.5;
  SimCloud cloud(env, net, config);

  bool ok = false;
  double done_at = -1;
  cloud.upload(1000, [&](bool success) {
    ok = success;
    done_at = env.now();
  });
  env.run();
  EXPECT_TRUE(ok);
  EXPECT_NEAR(done_at, 1.5, 0.05);  // latency + transfer
  EXPECT_EQ(cloud.stats().requests, 1u);
  EXPECT_DOUBLE_EQ(cloud.stats().bytes_up, 1000);
}

TEST(SimCloudTest, OutageFailsFast) {
  SimEnv env;
  FluidNet net(env);
  SimCloudConfig config;
  config.up = constant_bw(1000);
  config.down = constant_bw(1000);
  SimCloud cloud(env, net, config);
  cloud.set_outage(true);
  bool ok = true;
  cloud.upload(100000, [&](bool success) { ok = success; });
  env.run();
  EXPECT_FALSE(ok);
  EXPECT_LT(env.now(), 1.0);
  EXPECT_EQ(cloud.stats().failures, 1u);
}

TEST(SimCloudTest, FailedTransfersWasteTimeButLessThanFull) {
  SimEnv env;
  FluidNet net(env);
  FailureParams fparams;
  fparams.base_rate = 1.0;  // always fail
  fparams.trouble_probability = 0;
  FailureModel failure(1, fparams, 3);
  SimCloudConfig config;
  config.up = constant_bw(1000);
  config.down = constant_bw(1000);
  config.request_latency = 0;
  config.failure = &failure;
  SimCloud cloud(env, net, config);
  bool ok = true;
  cloud.upload(10000, [&](bool success) { ok = success; });
  env.run();
  EXPECT_FALSE(ok);
  EXPECT_GT(env.now(), 0.01);   // some time wasted
  EXPECT_LT(env.now(), 10.0);   // but less than the full 10 s
}

// --- profiles -------------------------------------------------------------

TEST(ProfilesTest, LocationSetsMatchPaper) {
  EXPECT_EQ(planetlab_locations().size(), 13u);
  EXPECT_EQ(ec2_locations().size(), 7u);
  for (const auto& loc : ec2_locations()) {
    EXPECT_GT(loc.download_cap_bps, 0) << loc.name;  // 40 Mbps VM cap
  }
}

TEST(ProfilesTest, ChinaDisparityIsLarge) {
  // BaiduPCS vs Google Drive from China: the paper reports up to 60x.
  const LinkSpec baidu = link_spec(CloudKind::kBaiduPCS, Region::kChina);
  const LinkSpec gdrive = link_spec(CloudKind::kGoogleDrive, Region::kChina);
  EXPECT_GE(baidu.up_bps / gdrive.up_bps, 50.0);
}

TEST(ProfilesTest, DropboxSlowerOnWestCoast) {
  // Paper: uploading from Los Angeles takes ~2.76x Princeton.
  const LinkSpec east = link_spec(CloudKind::kDropbox, Region::kUsEast);
  const LinkSpec west = link_spec(CloudKind::kDropbox, Region::kUsWest);
  EXPECT_GT(east.up_bps / west.up_bps, 2.0);
  EXPECT_LT(east.up_bps / west.up_bps, 4.0);
}

TEST(ProfilesTest, NoAlwaysWinner) {
  // Some cloud must win in the US and a different one in China.
  auto best_at = [](Region region) {
    double best = 0;
    std::size_t who = 0;
    for (std::size_t c = 0; c < kNumClouds; ++c) {
      const double up = link_spec(static_cast<CloudKind>(c), region).up_bps;
      if (up > best) {
        best = up;
        who = c;
      }
    }
    return who;
  };
  EXPECT_NE(best_at(Region::kUsEast), best_at(Region::kChina));
}

TEST(ProfilesTest, MakeCloudSetBuildsFiveClouds) {
  SimEnv env;
  CloudSet set = make_cloud_set(env, planetlab_locations()[0], 1);
  EXPECT_EQ(set.clouds.size(), kNumClouds);
  EXPECT_EQ(set.ptrs().size(), kNumClouds);
  EXPECT_EQ(set.clouds[0]->name(), "Dropbox");
}

// --- transfer runs -------------------------------------------------------------

sched::CodeParams paper_params() { return sched::CodeParams{}; }

TEST(TransferRunTest, UploadJobCompletesOnCleanNetwork) {
  SimEnv env(7);
  CloudSet set = make_cloud_set(env, planetlab_locations()[0], 7,
                                /*with_failures=*/false);
  std::vector<sched::UploadFileSpec> specs;
  sched::UploadFileSpec f;
  f.path = "/a";
  f.segments.push_back({"a_seg", 8 << 20});
  specs.push_back(f);
  sched::UploadScheduler scheduler(paper_params(), {0, 1, 2, 3, 4}, specs);
  sched::ThroughputMonitor monitor;
  const auto result =
      run_upload_job(env, set.ptrs(), scheduler, monitor, RunConfig{});
  EXPECT_TRUE(result.all_available);
  EXPECT_TRUE(result.all_reliable);
  EXPECT_GT(result.available_time, 0);
  EXPECT_LE(result.available_time, result.finish_time);
  ASSERT_EQ(result.file_available_time.size(), 1u);
  EXPECT_GT(result.file_available_time[0], 0);
}

TEST(TransferRunTest, AvailabilityBeforeReliability) {
  SimEnv env(8);
  CloudSet set = make_cloud_set(env, planetlab_locations()[0], 8,
                                /*with_failures=*/false);
  std::vector<sched::UploadFileSpec> specs;
  for (int i = 0; i < 5; ++i) {
    sched::UploadFileSpec f;
    f.path = "/f" + std::to_string(i);
    f.segments.push_back({"seg" + std::to_string(i), 4 << 20});
    specs.push_back(f);
  }
  sched::UploadScheduler scheduler(paper_params(), {0, 1, 2, 3, 4}, specs);
  sched::ThroughputMonitor monitor;
  const auto result =
      run_upload_job(env, set.ptrs(), scheduler, monitor, RunConfig{});
  EXPECT_TRUE(result.all_available);
  // The last file's availability must precede (or equal) full completion.
  EXPECT_LE(result.available_time, result.finish_time);
}

TEST(TransferRunTest, UploadSurvivesFailures) {
  SimEnv env(9);
  CloudSet set = make_cloud_set(env, planetlab_locations()[6], 9);  // Beijing
  std::vector<sched::UploadFileSpec> specs;
  sched::UploadFileSpec f;
  f.path = "/a";
  f.segments.push_back({"a_seg", 4 << 20});
  specs.push_back(f);
  sched::UploadScheduler scheduler(paper_params(), {0, 1, 2, 3, 4}, specs);
  sched::ThroughputMonitor monitor;
  const auto result =
      run_upload_job(env, set.ptrs(), scheduler, monitor, RunConfig{});
  EXPECT_TRUE(result.all_available);
}

TEST(TransferRunTest, DownloadJobFetchesKBlocks) {
  SimEnv env(10);
  CloudSet set = make_cloud_set(env, planetlab_locations()[0], 10,
                                /*with_failures=*/false);
  sched::DownloadFileSpec f;
  f.path = "/a";
  sched::DownloadSegmentSpec seg;
  seg.id = "s";
  seg.size = 8 << 20;
  for (std::uint32_t b = 0; b < 5; ++b) seg.locations.push_back({b, b});
  f.segments.push_back(seg);
  sched::DownloadScheduler scheduler(3, {f});
  sched::ThroughputMonitor monitor;
  const auto result =
      run_download_job(env, set.ptrs(), scheduler, monitor, RunConfig{});
  EXPECT_TRUE(result.all_complete);
  EXPECT_EQ(result.block_transfers, 3u);  // exactly k requests, no waste
}

TEST(TransferRunTest, OverProvisioningBeatsStaticOnSkewedClouds) {
  // Direct ablation: same network, same seed; UniDrive's over-provisioning
  // + dynamic scheduling must beat the static benchmark configuration.
  auto run_once = [](bool unidrive) {
    SimEnv env(11);
    CloudSet set = make_cloud_set(env, ec2_locations()[0], 11,
                                  /*with_failures=*/false);
    std::vector<sched::UploadFileSpec> specs;
    sched::UploadFileSpec f;
    f.path = "/a";
    f.segments.push_back({"a_seg", 32 << 20});
    specs.push_back(f);
    sched::UploadOptions options;
    options.overprovision = unidrive;
    options.availability_first = unidrive;
    sched::UploadScheduler scheduler(sched::CodeParams{}, {0, 1, 2, 3, 4},
                                     specs, options);
    sched::ThroughputMonitor monitor;
    RunConfig config;
    config.dynamic_polling = unidrive;
    const auto result =
        run_upload_job(env, set.ptrs(), scheduler, monitor, config);
    return result.available_time - result.start_time;
  };
  const double unidrive_time = run_once(true);
  const double benchmark_time = run_once(false);
  EXPECT_GT(benchmark_time, 0);
  EXPECT_LT(unidrive_time, benchmark_time * 1.05);
}

// --- end-to-end ----------------------------------------------------------------

TEST(E2ETest, BatchSyncReachesAllDownloaders) {
  SimEnv env(20);
  const auto locations = ec2_locations();
  CloudSet up = make_cloud_set(env, locations[0], 20);
  CloudSet down1 = make_cloud_set(env, locations[1], 21);
  CloudSet down2 = make_cloud_set(env, locations[3], 22);

  E2EConfig config;
  config.num_files = 10;
  config.file_size = 1 << 20;
  const E2EResult result =
      run_unidrive_e2e(env, up, {&down1, &down2}, config);

  EXPECT_TRUE(result.upload.all_available);
  ASSERT_EQ(result.downloaders.size(), 2u);
  EXPECT_GT(result.batch_sync_time, 0);
  for (const auto& d : result.downloaders) {
    for (const double t : d.file_sync_time) {
      EXPECT_GT(t, 0);
    }
    EXPECT_GT(d.polls, 0u);
    EXPECT_GT(d.metadata_fetches, 0u);
  }
  EXPECT_GT(result.payload_bytes, 0);
  EXPECT_GT(result.metadata_bytes, 0);
  // Metadata stays a tiny fraction of payload (the ~1% overhead story).
  EXPECT_LT(result.metadata_bytes, result.payload_bytes * 0.05);
}

TEST(E2ETest, BenchmarkModeSlowerThanUniDrive) {
  // The same network and batch, scheduled by UniDrive vs the RACS-style
  // benchmark configuration: UniDrive must not lose.
  auto run_once = [](bool unidrive) {
    SimEnv env(31);
    const auto locations = ec2_locations();
    CloudSet up = make_cloud_set(env, locations[1], 31);
    CloudSet down = make_cloud_set(env, locations[0], 32);
    E2EConfig config;
    config.num_files = 20;
    config.file_size = 1 << 20;
    if (!unidrive) {
      config.upload_options.overprovision = false;
      config.upload_options.availability_first = false;
      config.run.dynamic_polling = false;
    }
    return run_unidrive_e2e(env, up, {&down}, config).batch_sync_time;
  };
  const double unidrive_time = run_once(true);
  const double benchmark_time = run_once(false);
  ASSERT_GT(unidrive_time, 0);
  ASSERT_GT(benchmark_time, 0);
  EXPECT_LE(unidrive_time, benchmark_time * 1.1);
}

TEST(E2ETest, FilesBecomeAvailableIncrementally) {
  SimEnv env(23);
  const auto locations = ec2_locations();
  CloudSet up = make_cloud_set(env, locations[1], 23);
  CloudSet down = make_cloud_set(env, locations[0], 24);

  E2EConfig config;
  config.num_files = 20;
  config.file_size = 1 << 20;
  config.commit_interval = 3.0;  // fine-grained commits to observe streaming
  config.poll_interval = 2.0;
  const E2EResult result = run_unidrive_e2e(env, up, {&down}, config);

  // Download completions must be spread out (streaming), not all at the end:
  // the first file lands well before the last.
  const auto& times = result.downloaders[0].file_sync_time;
  const double first = *std::min_element(times.begin(), times.end());
  const double last = *std::max_element(times.begin(), times.end());
  EXPECT_LT(first, last * 0.7);
}

}  // namespace
}  // namespace unidrive::sim
