#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "common/clock.h"
#include "common/rng.h"
#include "lock/quorum_lock.h"

namespace unidrive::lock {
namespace {

cloud::MultiCloud make_clouds(int n) {
  cloud::MultiCloud clouds;
  for (int i = 0; i < n; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i)));
  }
  return clouds;
}

// Sleep function that just advances a manual clock (no real waiting).
SleepFn clock_sleep(ManualClock& clock) {
  return [&clock](Duration d) { clock.advance(d); };
}

LockConfig fast_config() {
  LockConfig c;
  c.retry.backoff_base = 0.01;
  c.retry.backoff_cap = 0.1;
  return c;
}

TEST(QuorumLockTest, SingleDeviceAcquiresAndReleases) {
  auto clouds = make_clouds(5);
  ManualClock clock;
  QuorumLock lock(clouds, "devA", fast_config(), clock, Rng(1),
                  clock_sleep(clock));
  ASSERT_TRUE(lock.acquire().is_ok());
  EXPECT_TRUE(lock.held());

  // Lock files visible on every cloud.
  for (const auto& c : clouds) {
    EXPECT_EQ(c->list("/lock").value().size(), 1u);
  }
  lock.release();
  EXPECT_FALSE(lock.held());
  for (const auto& c : clouds) {
    EXPECT_TRUE(c->list("/lock").value().empty());
  }
}

TEST(QuorumLockTest, AcquireIsIdempotentWhileHeld) {
  auto clouds = make_clouds(3);
  ManualClock clock;
  QuorumLock lock(clouds, "devA", fast_config(), clock, Rng(1),
                  clock_sleep(clock));
  ASSERT_TRUE(lock.acquire().is_ok());
  ASSERT_TRUE(lock.acquire().is_ok());
  lock.release();
}

TEST(QuorumLockTest, SecondDeviceBlockedWhileHeld) {
  auto clouds = make_clouds(5);
  ManualClock clock;
  QuorumLock lock_a(clouds, "devA", fast_config(), clock, Rng(1),
                    clock_sleep(clock));
  ASSERT_TRUE(lock_a.acquire().is_ok());

  LockConfig cfg_b = fast_config();
  cfg_b.retry.max_attempts = 3;
  QuorumLock lock_b(clouds, "devB", cfg_b, clock, Rng(2), clock_sleep(clock));
  const Status s = lock_b.acquire();
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kLockContention);
  EXPECT_FALSE(lock_b.held());

  // devB must have withdrawn its files.
  for (const auto& c : clouds) {
    for (const auto& f : c->list("/lock").value()) {
      EXPECT_EQ(f.name.find("lock_devB"), std::string::npos);
    }
  }
  lock_a.release();
  ASSERT_TRUE(lock_b.acquire().is_ok());
  lock_b.release();
}

TEST(QuorumLockTest, MutualExclusionUnderThreadContention) {
  auto clouds = make_clouds(5);
  std::atomic<int> in_critical{0};
  std::atomic<int> successes{0};
  std::atomic<bool> violated{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      ManualClock clock;  // per-thread local clock; protocol needs no sync
      LockConfig cfg = fast_config();
      cfg.retry.max_attempts = 200;
      // Real (short) sleep so contenders actually interleave.
      QuorumLock lock(clouds, "dev" + std::to_string(t), cfg, clock, Rng(t),
                      [](Duration d) {
                        std::this_thread::sleep_for(
                            std::chrono::duration<double>(d * 0.01));
                      });
      for (int round = 0; round < 3; ++round) {
        if (!lock.acquire().is_ok()) continue;
        const int inside = in_critical.fetch_add(1);
        if (inside != 0) violated = true;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        in_critical.fetch_sub(1);
        ++successes;
        lock.release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated.load());
  EXPECT_GT(successes.load(), 0);
}

TEST(QuorumLockTest, StaleLockBrokenAfterThreshold) {
  auto clouds = make_clouds(5);
  ManualClock clock;

  // devA acquires and "crashes" (never refreshes, never releases).
  LockConfig cfg = fast_config();
  cfg.stale_after = 120.0;
  QuorumLock lock_a(clouds, "devA", cfg, clock, Rng(1), clock_sleep(clock));
  ASSERT_TRUE(lock_a.acquire().is_ok());

  // devB keeps trying; once the clock passes dT it must succeed by breaking
  // devA's stale lock files.
  LockConfig cfg_b = cfg;
  cfg_b.retry.max_attempts = 50;
  // Decorrelated jitter never sleeps less than the base, so each retry
  // advances the clock 30+ s.
  cfg_b.retry.backoff_base = 30.0;
  cfg_b.retry.backoff_cap = 60.0;
  QuorumLock lock_b(clouds, "devB", cfg_b, clock, Rng(2), clock_sleep(clock));
  ASSERT_TRUE(lock_b.acquire().is_ok());
  EXPECT_TRUE(lock_b.held());
  lock_b.release();
}

TEST(QuorumLockTest, RefreshKeepsLockAlive) {
  auto clouds = make_clouds(5);
  ManualClock clock;
  LockConfig cfg = fast_config();
  cfg.stale_after = 100.0;
  QuorumLock lock_a(clouds, "devA", cfg, clock, Rng(1), clock_sleep(clock));
  ASSERT_TRUE(lock_a.acquire().is_ok());

  LockConfig cfg_b = cfg;
  cfg_b.retry.max_attempts = 4;
  cfg_b.retry.backoff_base = 40.0;
  cfg_b.retry.backoff_cap = 41.0;
  QuorumLock lock_b(clouds, "devB", cfg_b, clock, Rng(2), clock_sleep(clock));

  // Interleave: devA refreshes every 40 simulated seconds via devB's backoff
  // loop. Run devB's acquisition in a thread? Simpler: manually alternate.
  for (int i = 0; i < 6; ++i) {
    clock.advance(40.0);
    ASSERT_TRUE(lock_a.refresh().is_ok());
    // devB attempts once (single round), must fail: devA's lock is fresh.
    LockConfig one_shot = cfg;
    one_shot.retry = RetryPolicy::single_shot();
    QuorumLock probe(clouds, "devB", one_shot, clock, Rng(3),
                     clock_sleep(clock));
    EXPECT_FALSE(probe.acquire().is_ok());
  }
  EXPECT_TRUE(lock_a.held());
  lock_a.release();
}

TEST(QuorumLockTest, AcquireFailsWhenMajorityDown) {
  auto raw = make_clouds(5);
  cloud::MultiCloud clouds;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    auto faulty =
        std::make_shared<cloud::FaultyCloud>(raw[i], cloud::FaultProfile{}, i);
    if (i < 3) faulty->set_outage(true);
    clouds.push_back(faulty);
  }
  ManualClock clock;
  LockConfig cfg = fast_config();
  cfg.retry.max_attempts = 10;
  QuorumLock lock(clouds, "devA", cfg, clock, Rng(1), clock_sleep(clock));
  const Status s = lock.acquire();
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOutage);
}

TEST(QuorumLockTest, AcquireSucceedsWithMinorityDown) {
  auto raw = make_clouds(5);
  cloud::MultiCloud clouds;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    auto faulty =
        std::make_shared<cloud::FaultyCloud>(raw[i], cloud::FaultProfile{}, i);
    if (i < 2) faulty->set_outage(true);
    clouds.push_back(faulty);
  }
  ManualClock clock;
  QuorumLock lock(clouds, "devA", fast_config(), clock, Rng(1),
                  clock_sleep(clock));
  EXPECT_TRUE(lock.acquire().is_ok());
  lock.release();
}

TEST(QuorumLockTest, AcquireToleratesTransientFailures) {
  auto raw = make_clouds(5);
  cloud::MultiCloud clouds;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    cloud::FaultProfile profile;
    profile.base_failure_rate = 0.2;
    clouds.push_back(
        std::make_shared<cloud::FaultyCloud>(raw[i], profile, 100 + i));
  }
  ManualClock clock;
  LockConfig cfg = fast_config();
  cfg.retry.max_attempts = 100;
  QuorumLock lock(clouds, "devA", cfg, clock, Rng(1), clock_sleep(clock));
  EXPECT_TRUE(lock.acquire().is_ok());
  lock.release();
}

TEST(QuorumLockTest, RefreshWithoutHoldingIsError) {
  auto clouds = make_clouds(3);
  ManualClock clock;
  QuorumLock lock(clouds, "devA", fast_config(), clock, Rng(1),
                  clock_sleep(clock));
  EXPECT_FALSE(lock.refresh().is_ok());
}

TEST(QuorumLockTest, ReleaseWithoutHoldingIsNoop) {
  auto clouds = make_clouds(3);
  ManualClock clock;
  QuorumLock lock(clouds, "devA", fast_config(), clock, Rng(1),
                  clock_sleep(clock));
  lock.release();  // must not crash or throw
}

TEST(QuorumLockTest, BreakStaleOnlyAfterThreshold) {
  auto clouds = make_clouds(3);
  ManualClock clock;
  LockConfig cfg = fast_config();
  cfg.stale_after = 100.0;
  QuorumLock observer(clouds, "obs", cfg, clock, Rng(1), clock_sleep(clock));

  // Plant a foreign lock file.
  ASSERT_TRUE(
      clouds[0]->upload("/lock/lock_ghost_1", ByteSpan(Bytes{})).is_ok());

  auto listing = clouds[0]->list("/lock").value();
  observer.break_stale_locks(*clouds[0], listing);  // first sight: recorded
  EXPECT_EQ(clouds[0]->list("/lock").value().size(), 1u);

  clock.advance(50.0);
  listing = clouds[0]->list("/lock").value();
  observer.break_stale_locks(*clouds[0], listing);  // still fresh
  EXPECT_EQ(clouds[0]->list("/lock").value().size(), 1u);

  clock.advance(60.0);  // total 110 > 100
  listing = clouds[0]->list("/lock").value();
  observer.break_stale_locks(*clouds[0], listing);
  EXPECT_TRUE(clouds[0]->list("/lock").value().empty());
}

}  // namespace
}  // namespace unidrive::lock
