// Robustness / fuzz-style tests: every parser that consumes bytes from a
// cloud must survive arbitrary garbage (truncated, bit-flipped, random)
// without crashing, looping, or fabricating state — clouds are untrusted.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_seed.h"
#include "common/serial.h"
#include "crypto/crc32.h"
#include "crypto/des.h"
#include "metadata/codec.h"
#include "metadata/delta.h"
#include "metadata/image.h"
#include "metadata/version_file.h"

UNIDRIVE_REGISTER_SEED_LISTENER()

namespace unidrive {
namespace {

using unidrive::testing::test_seed;

// --- random garbage into every decoder -----------------------------------------

TEST(RobustnessTest, ImageDeserializeSurvivesRandomBytes) {
  Rng rng(test_seed(1));
  for (int trial = 0; trial < 300; ++trial) {
    const Bytes junk = rng.bytes(rng.next_below(2000));
    auto result = metadata::SyncFolderImage::deserialize(ByteSpan(junk));
    // Must return (ok or error), never crash; random bytes essentially
    // never form a valid image (magic + structure).
    (void)result.is_ok();
  }
}

TEST(RobustnessTest, DeltaDeserializeSurvivesRandomBytes) {
  Rng rng(test_seed(2));
  for (int trial = 0; trial < 300; ++trial) {
    const Bytes junk = rng.bytes(rng.next_below(2000));
    (void)metadata::DeltaLog::deserialize(ByteSpan(junk));
  }
}

TEST(RobustnessTest, VersionFileSurvivesRandomBytes) {
  Rng rng(test_seed(3));
  for (int trial = 0; trial < 300; ++trial) {
    const Bytes junk = rng.bytes(rng.next_below(100));
    (void)metadata::parse_version_file(ByteSpan(junk));
  }
}

TEST(RobustnessTest, DesDecryptSurvivesRandomBytes) {
  Rng rng(test_seed(4));
  const auto key = crypto::des_key_from_passphrase("k");
  for (int trial = 0; trial < 300; ++trial) {
    const Bytes junk = rng.bytes(rng.next_below(512));
    (void)crypto::des_cbc_decrypt(key, ByteSpan(junk));
  }
}

TEST(RobustnessTest, CodecSurvivesRandomBytes) {
  Rng rng(test_seed(5));
  const metadata::MetadataCodec codec("pass");
  for (int trial = 0; trial < 200; ++trial) {
    const Bytes junk = rng.bytes(rng.next_below(1024));
    (void)codec.decode_image(ByteSpan(junk));
    (void)codec.decode_delta(ByteSpan(junk));
  }
}

// --- bit flips in VALID payloads -------------------------------------------------

metadata::SyncFolderImage sample_image() {
  metadata::SyncFolderImage image;
  image.set_version({"dev", 9, 1.5});
  image.add_dir("/d");
  for (int i = 0; i < 10; ++i) {
    metadata::SegmentInfo seg;
    seg.id = "seg" + std::to_string(i);
    seg.size = 1000 + i;
    seg.blocks = {{0, 0}, {1, 1}, {2, 2}};
    image.upsert_segment(seg);
    metadata::FileSnapshot snap;
    snap.path = "/f" + std::to_string(i);
    snap.size = 1000 + i;
    snap.content_hash = "cafe" + std::to_string(i);
    snap.segment_ids = {seg.id};
    image.upsert_file(snap);
  }
  return image;
}

TEST(RobustnessTest, ImageBitFlipsNeverCrash) {
  const Bytes valid = sample_image().serialize();
  Rng rng(test_seed(6));
  for (int trial = 0; trial < 500; ++trial) {
    Bytes mutated = valid;
    const std::size_t flips = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 << rng.next_below(8));
    }
    auto result = metadata::SyncFolderImage::deserialize(ByteSpan(mutated));
    if (result.is_ok()) {
      // If it parses, internal invariants must still hold (refcounts are
      // recomputed on deserialize).
      metadata::SyncFolderImage copy = result.value();
      copy.rebuild_refcounts();
      EXPECT_TRUE(copy == result.value());
    }
  }
}

TEST(RobustnessTest, ImageTruncationsNeverCrash) {
  const Bytes valid = sample_image().serialize();
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const ByteSpan prefix(valid.data(), len);
    auto result = metadata::SyncFolderImage::deserialize(prefix);
    EXPECT_FALSE(result.is_ok()) << "truncated prefix parsed at " << len;
  }
}

TEST(RobustnessTest, EncryptedImageBitFlipsDetected) {
  const metadata::MetadataCodec codec("pass");
  const Bytes cipher = codec.encode_image(sample_image());
  Rng rng(test_seed(7));
  int parsed_ok = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = cipher;
    mutated[rng.next_below(mutated.size())] ^= 0x01;
    if (codec.decode_image(ByteSpan(mutated)).is_ok()) ++parsed_ok;
  }
  // CBC avalanche + structural checks: corruption essentially never yields
  // a valid image.
  EXPECT_LE(parsed_ok, 2);
}

// --- adversarial varints / nested sizes ------------------------------------------

TEST(RobustnessTest, HugeLengthPrefixRejectedWithoutAllocation) {
  // A length prefix claiming 2^60 bytes must fail cleanly (bounds-checked
  // against the remaining buffer), not attempt the allocation.
  BinaryWriter w;
  w.put_varint(1ULL << 60);
  w.put_raw(Bytes(16, 0xAB));
  BinaryReader r{ByteSpan(w.data())};
  auto result = r.get_bytes();
  EXPECT_FALSE(result.is_ok());
}

TEST(RobustnessTest, DeltaLogWithHostileRecordCountStops) {
  // A forged record header with an enormous change count must terminate.
  BinaryWriter body;
  metadata::serialize_version(body, {"dev", 1, 0});
  body.put_varint(1ULL << 50);  // claims 2^50 changes

  BinaryWriter log;
  log.put_u32(0x474C4455);  // delta magic
  log.put_varint(body.size());
  log.put_u32(crypto::crc32c(ByteSpan(body.data())));
  log.put_raw(ByteSpan(body.data()));

  auto result = metadata::DeltaLog::deserialize(ByteSpan(log.data()));
  ASSERT_TRUE(result.is_ok());          // tolerant parser keeps the prefix
  EXPECT_EQ(result.value().size(), 0u); // ...which is empty here
}

}  // namespace
}  // namespace unidrive
