#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/e2e_baselines.h"
#include "baselines/intuitive.h"
#include "baselines/native_app.h"
#include "sim/profiles.h"

namespace unidrive::baselines {
namespace {

using sim::CloudKind;
using sim::CloudSet;
using sim::SimEnv;

CloudSet clean_set(SimEnv& env, std::size_t location_index,
                   std::uint64_t seed) {
  return sim::make_cloud_set(env, sim::planetlab_locations()[location_index],
                             seed, /*with_failures=*/false);
}

TEST(NativeAppTest, UploadTimeScalesWithSize) {
  SimEnv env(1);
  CloudSet set = clean_set(env, 0, 1);
  const double t1 =
      native_upload_time(env, *set.clouds[0], CloudKind::kDropbox, 1 << 20);
  const double t8 =
      native_upload_time(env, *set.clouds[0], CloudKind::kDropbox, 8 << 20);
  ASSERT_GT(t1, 0);
  ASSERT_GT(t8, 0);
  EXPECT_GT(t8, t1 * 2);
}

TEST(NativeAppTest, FasterCloudFasterTransfer) {
  SimEnv env(2);
  CloudSet set = clean_set(env, 0, 2);  // Princeton: Dropbox >> DBank
  const double dropbox =
      native_upload_time(env, *set.clouds[0], CloudKind::kDropbox, 4 << 20);
  const double dbank =
      native_upload_time(env, *set.clouds[4], CloudKind::kDBank, 4 << 20);
  EXPECT_LT(dropbox, dbank / 3);
}

TEST(NativeAppTest, BatchCompletesAllFiles) {
  SimEnv env(3);
  CloudSet set = clean_set(env, 0, 3);
  const auto result = native_transfer_batch(
      env, *set.clouds[0], CloudKind::kDropbox,
      std::vector<std::uint64_t>(10, 1 << 20), /*download=*/false);
  EXPECT_TRUE(result.success);
  for (const double t : result.file_done_time) EXPECT_GE(t, 0);
}

TEST(NativeAppTest, MultiChunkFilesSplitAtFourMb) {
  SimEnv env(4);
  CloudSet set = clean_set(env, 0, 4);
  // A 9 MB file (3 chunks) on a 2-connection client must take longer than
  // a pure bandwidth division would if chunks were unlimited-parallel.
  const double t =
      native_upload_time(env, *set.clouds[1], CloudKind::kOneDrive, 9 << 20);
  EXPECT_GT(t, 0);
}

TEST(NativeAppTest, DownloadWorksToo) {
  SimEnv env(5);
  CloudSet set = clean_set(env, 0, 5);
  const double t = native_download_time(env, *set.clouds[0],
                                        CloudKind::kDropbox, 4 << 20);
  EXPECT_GT(t, 0);
}

TEST(NativeAppTest, SurvivesTransientFailures) {
  SimEnv env(6);
  CloudSet set = sim::make_cloud_set(env, sim::planetlab_locations()[0], 6,
                                     /*with_failures=*/true);
  const auto result = native_transfer_batch(
      env, *set.clouds[0], CloudKind::kDropbox,
      std::vector<std::uint64_t>(5, 1 << 20), /*download=*/false);
  EXPECT_TRUE(result.success);
}

TEST(IntuitiveTest, SlowedByTheSlowestCloud) {
  SimEnv env(7);
  CloudSet set = clean_set(env, 0, 7);  // US: DBank is the crawler
  const double intuitive = intuitive_upload_time(env, set, 10 << 20);
  const double native_fast =
      native_upload_time(env, *set.clouds[0], CloudKind::kDropbox, 10 << 20);
  ASSERT_GT(intuitive, 0);
  ASSERT_GT(native_fast, 0);
  // Each cloud moves only 1/5 of the file, but DBank's 1 Mbps on 2 MB still
  // dominates Dropbox's 24 Mbps on the whole 10 MB.
  EXPECT_GT(intuitive, native_fast);
}

TEST(IntuitiveTest, BatchReportsPerFileTimes) {
  SimEnv env(8);
  CloudSet set = clean_set(env, 0, 8);
  const auto result = intuitive_transfer_batch(
      env, set, std::vector<std::uint64_t>(5, 1 << 20), /*download=*/false);
  EXPECT_TRUE(result.success);
  for (const double t : result.file_done_time) EXPECT_GE(t, 0);
}

TEST(IntuitiveTest, DownloadDirection) {
  SimEnv env(9);
  CloudSet set = clean_set(env, 0, 9);
  const double t = intuitive_download_time(env, set, 5 << 20);
  EXPECT_GT(t, 0);
}

// --- end-to-end baselines ------------------------------------------------------

TEST(BaselineE2ETest, NativeSyncReachesAllDownloaders) {
  SimEnv env(20);
  CloudSet up = clean_set(env, 0, 20);
  CloudSet down1 = clean_set(env, 1, 21);
  CloudSet down2 = clean_set(env, 3, 22);

  BaselineE2EConfig config;
  config.num_files = 10;
  config.file_size = 1 << 20;
  const auto result = native_e2e(
      env, *up.clouds[0], {down1.clouds[0].get(), down2.clouds[0].get()},
      CloudKind::kDropbox, config);
  ASSERT_TRUE(result.success);
  EXPECT_GT(result.upload_complete, 0);
  EXPECT_GT(result.batch_sync_time, result.upload_complete * 0.5);
  ASSERT_EQ(result.file_sync_time.size(), 2u);
  for (const auto& device : result.file_sync_time) {
    for (const double t : device) EXPECT_GT(t, 0);
  }
}

TEST(BaselineE2ETest, FilesArriveIncrementally) {
  SimEnv env(23);
  CloudSet up = clean_set(env, 0, 23);
  CloudSet down = clean_set(env, 1, 24);
  BaselineE2EConfig config;
  config.num_files = 20;
  config.file_size = 1 << 20;
  config.poll_interval = 2.0;
  const auto result = native_e2e(env, *up.clouds[0], {down.clouds[0].get()},
                                 CloudKind::kDropbox, config);
  ASSERT_TRUE(result.success);
  auto times = result.file_sync_time[0];
  std::sort(times.begin(), times.end());
  // Streaming: the first file lands well before the last.
  EXPECT_LT(times.front(), times.back() * 0.75);
}

TEST(BaselineE2ETest, IntuitiveSlowerThanFastNative) {
  // The defining weakness: the intuitive multi-cloud batch is bound by the
  // slowest cloud even though each cloud moves only 1/5 of each file.
  BaselineE2EConfig config;
  config.num_files = 15;
  config.file_size = 1 << 20;

  SimEnv env1(25);
  CloudSet up1 = clean_set(env1, 0, 25);
  CloudSet down1 = clean_set(env1, 1, 26);
  std::vector<const CloudSet*> downs = {&down1};
  const auto intuitive = intuitive_e2e(env1, up1, downs, config);
  ASSERT_TRUE(intuitive.success);

  SimEnv env2(25);
  CloudSet up2 = clean_set(env2, 0, 25);
  CloudSet down2 = clean_set(env2, 1, 26);
  const auto native = native_e2e(env2, *up2.clouds[0], {down2.clouds[0].get()},
                                 CloudKind::kDropbox, config);
  ASSERT_TRUE(native.success);

  EXPECT_GT(intuitive.batch_sync_time, native.batch_sync_time);
}

TEST(BaselineE2ETest, SurvivesTransientFailures) {
  SimEnv env(27);
  CloudSet up = sim::make_cloud_set(env, sim::planetlab_locations()[0], 27,
                                    /*with_failures=*/true);
  CloudSet down = sim::make_cloud_set(env, sim::planetlab_locations()[1], 28,
                                      /*with_failures=*/true);
  BaselineE2EConfig config;
  config.num_files = 8;
  config.file_size = 512 << 10;
  const auto result = native_e2e(env, *up.clouds[0], {down.clouds[0].get()},
                                 CloudKind::kDropbox, config);
  EXPECT_TRUE(result.success);
}

}  // namespace
}  // namespace unidrive::baselines
