// Tests for the sharded metadata plane: routing, manifest codec (including
// round-trip fuzzing and corruption rejection), the KV engine, the
// transactional ShardedMetaStore, the scoped LockManager — and the
// concurrent-writer property test (zero lost updates across disjoint
// shards; run it under TSan to certify the locking).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>

#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "common/clock.h"
#include "common/rng.h"
#include "lock/lock_manager.h"
#include "metadata/changelist.h"
#include "metadata/kv.h"
#include "metadata/shard.h"
#include "metadata/sharded_store.h"
#include "test_seed.h"

UNIDRIVE_REGISTER_SEED_LISTENER();

namespace unidrive::metadata {
namespace {

cloud::MultiCloud make_clouds(int n) {
  cloud::MultiCloud clouds;
  for (int i = 0; i < n; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i)));
  }
  return clouds;
}

// Uniform int in [lo, hi] from the repo's deterministic Rng.
int rand_int(Rng& rng, int lo, int hi) {
  return lo + static_cast<int>(
                  rng.next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

VersionStamp stamp(const std::string& device, std::uint64_t counter) {
  VersionStamp v;
  v.device = device;
  v.counter = counter;
  return v;
}

FileSnapshot snapshot(const std::string& path, const std::string& device) {
  FileSnapshot s;
  s.path = path;
  s.size = path.size();
  s.content_hash = "hash-" + path;
  s.origin_device = device;
  return s;
}

// --- routing ----------------------------------------------------------------

TEST(ShardRoutingTest, WholeSubtreeLandsInOneShard) {
  const ShardId docs = shard_of_path("/docs/a.txt", 16);
  EXPECT_EQ(shard_of_path("/docs/sub/deep/b.txt", 16), docs);
  EXPECT_EQ(shard_of_path("/docs", 16), docs);
  // Root-level files route by their own name.
  EXPECT_EQ(shard_of_path("/top.txt", 16), shard_of_path("/top.txt", 16));
}

TEST(ShardRoutingTest, RoutingIsStableAndBounded) {
  Rng rng(testing::test_seed(0x5eed0001));
  for (int i = 0; i < 200; ++i) {
    const std::string path = "/d" + std::to_string(rand_int(rng, 0, 50)) +
                             "/f" + std::to_string(i);
    const auto n = static_cast<std::uint32_t>(rand_int(rng, 1, 32));
    const ShardId id = shard_of_path(path, n);
    EXPECT_LT(id, n);
    EXPECT_EQ(id, shard_of_path(path, n));  // deterministic
  }
  EXPECT_EQ(shard_of_path("/any", 1), 0u);
  EXPECT_EQ(shard_of_segment("seg", 0), 0u);
}

TEST(ShardRoutingTest, ChangesRouteByKind) {
  Change file = Change::upsert_file(snapshot("/docs/a", "dev"));
  EXPECT_EQ(shard_of_change(file, 16), shard_of_path("/docs/a", 16));

  SegmentInfo seg;
  seg.id = "abc123";
  Change up = Change::upsert_segment(seg);
  EXPECT_EQ(shard_of_change(up, 16), shard_of_segment("abc123", 16));
  Change drop = Change::drop_segment("abc123");
  EXPECT_EQ(shard_of_change(drop, 16), shard_of_segment("abc123", 16));
}

TEST(ShardRoutingTest, SplitGroupsByShardSortedAndComplete) {
  std::vector<Change> changes;
  for (int i = 0; i < 40; ++i) {
    changes.push_back(Change::upsert_file(
        snapshot("/d" + std::to_string(i % 7) + "/f" + std::to_string(i),
                 "dev")));
  }
  const auto slices = split_changes_by_shard(changes, 4);
  std::size_t total = 0;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(slices[i - 1].shard, slices[i].shard);
    }
    total += slices[i].changes.size();
    for (const Change& c : slices[i].changes) {
      EXPECT_EQ(shard_of_change(c, 4), slices[i].shard);
    }
  }
  EXPECT_EQ(total, changes.size());
}

// --- manifest codec ---------------------------------------------------------

ShardManifest random_manifest(Rng& rng) {
  ShardManifest m;
  m.num_shards = static_cast<std::uint32_t>(rand_int(rng, 1, 64));
  m.version = stamp("dev" + std::to_string(rand_int(rng, 0, 9)),
                    static_cast<std::uint64_t>(rand_int(rng, 1, 1 << 20)));
  const int n_entries =
      rand_int(rng, 0, static_cast<int>(m.num_shards) - 1);
  std::set<ShardId> ids;
  while (static_cast<int>(ids.size()) < n_entries) {
    ids.insert(static_cast<ShardId>(
        rand_int(rng, 0, static_cast<int>(m.num_shards) - 1)));
  }
  for (const ShardId id : ids) {
    ShardEntry e;
    e.id = id;
    e.version = stamp("w" + std::to_string(rand_int(rng, 0, 5)),
                      static_cast<std::uint64_t>(rand_int(rng, 1, 4096)));
    if (rand_int(rng, 0, 1) == 1) {
      e.base_key = shard_base_key(id, e.version);
      e.base_size = static_cast<std::uint64_t>(rand_int(rng, 1, 1 << 24));
    }
    const int nd = rand_int(rng, 0, 5);
    for (int j = 0; j < nd; ++j) {
      DeltaRef d;
      d.key = shard_delta_key(id, stamp("w", static_cast<std::uint64_t>(j)));
      d.size = static_cast<std::uint64_t>(rand_int(rng, 1, 1 << 16));
      e.deltas.push_back(std::move(d));
    }
    m.entries.push_back(std::move(e));
  }
  return m;
}

TEST(ShardManifestTest, SerializeRoundTripFuzz) {
  Rng rng(testing::test_seed(0x5eed0002));
  for (int iter = 0; iter < 200; ++iter) {
    const ShardManifest m = random_manifest(rng);
    const Bytes wire = m.serialize();
    auto back = ShardManifest::deserialize(ByteSpan(wire));
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), m);
    // Round-trip is byte-stable (canonical encoding).
    EXPECT_EQ(back.value().serialize(), wire);
  }
}

TEST(ShardManifestTest, EveryTruncationIsRejected) {
  Rng rng(testing::test_seed(0x5eed0003));
  const ShardManifest m = random_manifest(rng);
  const Bytes wire = m.serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    auto r = ShardManifest::deserialize(ByteSpan(wire.data(), len));
    EXPECT_FALSE(r.is_ok()) << "truncation at " << len << " parsed";
  }
}

TEST(ShardManifestTest, BitFlipFuzzNeverCrashesOrBreaksInvariants) {
  Rng rng(testing::test_seed(0x5eed0004));
  for (int iter = 0; iter < 400; ++iter) {
    const ShardManifest m = random_manifest(rng);
    Bytes wire = m.serialize();
    if (wire.empty()) continue;
    const std::size_t byte = static_cast<std::size_t>(
        rand_int(rng, 0, static_cast<int>(wire.size()) - 1));
    wire[byte] ^= static_cast<std::uint8_t>(1 << rand_int(rng, 0, 7));
    auto r = ShardManifest::deserialize(ByteSpan(wire));
    if (!r.is_ok()) continue;  // rejected — fine
    // Accepted mutants must still satisfy the structural invariants the
    // store relies on: non-zero shard count, strictly ordered in-range ids.
    const ShardManifest& mm = r.value();
    EXPECT_GT(mm.num_shards, 0u);
    for (std::size_t i = 0; i < mm.entries.size(); ++i) {
      EXPECT_LT(mm.entries[i].id, mm.num_shards);
      if (i > 0) {
        EXPECT_LT(mm.entries[i - 1].id, mm.entries[i].id);
      }
    }
  }
}

TEST(ShardManifestTest, UpsertKeepsEntriesSorted) {
  ShardManifest m;
  m.num_shards = 8;
  for (const ShardId id : {5u, 1u, 3u, 1u, 7u, 0u}) {
    ShardEntry e;
    e.id = id;
    e.version = stamp("dev", id + 1);
    m.upsert(e);
  }
  ASSERT_EQ(m.entries.size(), 5u);
  for (std::size_t i = 1; i < m.entries.size(); ++i) {
    EXPECT_LT(m.entries[i - 1].id, m.entries[i].id);
  }
  EXPECT_NE(m.find(3), nullptr);
  EXPECT_EQ(m.find(4), nullptr);
  // The duplicate upsert replaced, not duplicated.
  EXPECT_EQ(m.find(1)->version.counter, 2u);
}

TEST(RootPointerTest, RoundTripAndBadMagic) {
  RootPointer p;
  p.version = stamp("devA", 42);
  p.manifest_key = manifest_key(p.version);
  const Bytes wire = p.serialize();
  auto back = RootPointer::deserialize(ByteSpan(wire));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), p);

  Bytes bad = wire;
  bad[0] ^= 0xFF;
  EXPECT_EQ(RootPointer::deserialize(ByteSpan(bad)).code(),
            ErrorCode::kCorrupt);
}

// --- KV engine --------------------------------------------------------------

TEST(KvStoreTest, PutReplicatesToAllAndGetReturnsFirstValid) {
  auto clouds = make_clouds(3);
  KvStore kv(clouds);
  const Bytes value = bytes_from_string("payload");
  ASSERT_TRUE(kv.put("b0/1_dev", ByteSpan(value)).is_ok());
  for (const auto& c : clouds) {
    EXPECT_TRUE(c->download("/meta/kv/b0/1_dev").is_ok());
  }
  auto got = kv.get("b0/1_dev");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), value);

  kv.remove("b0/1_dev");
  EXPECT_EQ(kv.get("b0/1_dev").code(), ErrorCode::kNotFound);
}

TEST(KvStoreTest, PutFailsWithoutMajority) {
  auto inner = make_clouds(3);
  cloud::MultiCloud clouds;
  std::vector<std::shared_ptr<cloud::FaultyCloud>> faulty;
  for (const auto& c : inner) {
    auto f = std::make_shared<cloud::FaultyCloud>(c, cloud::FaultProfile{},
                                                  7);
    faulty.push_back(f);
    clouds.push_back(f);
  }
  faulty[0]->set_outage(true);
  faulty[1]->set_outage(true);
  KvStore kv(clouds);
  const Bytes value = bytes_from_string("x");
  EXPECT_EQ(kv.put("k", ByteSpan(value)).code(), ErrorCode::kUnavailable);
  // 2/3 reachable again: majority restored.
  faulty[1]->set_outage(false);
  EXPECT_TRUE(kv.put("k", ByteSpan(value)).is_ok());
}

TEST(KvStoreTest, EmptyCloudSetIsRejectedEverywhere) {
  KvStore kv(cloud::MultiCloud{});
  const Bytes value = bytes_from_string("x");
  EXPECT_EQ(kv.put("k", ByteSpan(value)).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(kv.get("k").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(kv.list("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(kv.fetch_root().code(), ErrorCode::kInvalidArgument);
  RootPointer p;
  EXPECT_EQ(kv.put_root(p, std::nullopt).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(kv.majority(), 1u);
}

TEST(KvStoreTest, GetValidatorSkipsCorruptCopies) {
  auto clouds = make_clouds(3);
  KvStore kv(clouds);
  const Bytes good = bytes_from_string("good");
  ASSERT_TRUE(kv.put("obj", ByteSpan(good)).is_ok());
  // Corrupt the first cloud's copy in place.
  const Bytes bad = bytes_from_string("BAD!");
  ASSERT_TRUE(clouds[0]->upload("/meta/kv/obj", ByteSpan(bad)).is_ok());

  auto got = kv.get("obj", [&](ByteSpan b) {
    return b.size() == good.size() &&
           std::equal(b.begin(), b.end(), good.begin());
  });
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), good);

  // All copies corrupt -> kCorrupt (copies exist, none validate).
  for (const auto& c : clouds) {
    ASSERT_TRUE(c->upload("/meta/kv/obj", ByteSpan(bad)).is_ok());
  }
  EXPECT_EQ(kv.get("obj", [&](ByteSpan b) {
                return b.size() == good.size() &&
                       std::equal(b.begin(), b.end(), good.begin());
              }).code(),
            ErrorCode::kCorrupt);
}

TEST(KvStoreTest, RootFenceRejectsStaleWriters) {
  auto clouds = make_clouds(3);
  KvStore kv(clouds);

  RootPointer r1;
  r1.version = stamp("devA", 1);
  r1.manifest_key = "m/1_devA";
  ASSERT_TRUE(kv.put_root(r1, std::nullopt).is_ok());

  RootPointer r2;
  r2.version = stamp("devA", 2);
  r2.manifest_key = "m/2_devA";
  ASSERT_TRUE(kv.put_root(r2, r1.version).is_ok());

  // A writer that believes no root exists, or fenced on the superseded
  // version, is refused — the pointer can never regress.
  RootPointer r3;
  r3.version = stamp("devB", 3);
  r3.manifest_key = "m/3_devB";
  EXPECT_EQ(kv.put_root(r3, std::nullopt).code(), ErrorCode::kConflict);
  EXPECT_EQ(kv.put_root(r3, r1.version).code(), ErrorCode::kConflict);
  ASSERT_TRUE(kv.put_root(r3, r2.version).is_ok());

  auto root = kv.fetch_root();
  ASSERT_TRUE(root.is_ok());
  EXPECT_EQ(root.value(), r3);
}

TEST(KvStoreTest, FetchRootTakesNewestAcrossClouds) {
  auto clouds = make_clouds(3);
  KvStore kv(clouds);
  RootPointer old_root;
  old_root.version = stamp("devA", 1);
  old_root.manifest_key = "m/1_devA";
  RootPointer new_root;
  new_root.version = stamp("devA", 5);
  new_root.manifest_key = "m/5_devA";
  // A minority cloud lags with an old root; read-from-all takes the newest.
  ASSERT_TRUE(
      clouds[0]->upload("/meta/kv/root", ByteSpan(old_root.serialize()))
          .is_ok());
  ASSERT_TRUE(
      clouds[1]->upload("/meta/kv/root", ByteSpan(new_root.serialize()))
          .is_ok());
  auto got = kv.fetch_root();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), new_root);
}

// --- ShardedMetaStore -------------------------------------------------------

ShardConfig small_shards() {
  ShardConfig c;
  c.num_shards = 8;
  return c;
}

// One full commit through the store API: stage each dirty shard, then flip.
Status commit_changes(ShardedMetaStore& store, const std::vector<Change>& cs,
                      const SyncFolderImage& full_next,
                      const VersionStamp& commit_stamp,
                      const DeltaPolicy& policy = {}) {
  ShardManifest fenced;
  auto m = store.fetch_manifest();
  if (m.is_ok()) {
    fenced = std::move(m).take();
  } else if (m.code() != ErrorCode::kNotFound) {
    return m.status();
  } else {
    fenced.num_shards = store.num_shards();
  }
  std::vector<ShardEntry> dirty;
  for (const auto& slice : split_changes_by_shard(cs, store.num_shards())) {
    auto e = store.publish_shard(slice.shard, fenced.find(slice.shard),
                                 slice.changes, full_next, commit_stamp,
                                 policy);
    if (!e.is_ok()) return e.status();
    dirty.push_back(std::move(e).take());
  }
  auto flipped = store.commit_manifest(dirty, fenced, commit_stamp);
  return flipped.status();
}

SyncFolderImage image_of(const std::vector<Change>& cs) {
  SyncFolderImage img;
  for (const Change& c : cs) apply_change(img, c);
  return img;
}

TEST(ShardedMetaStoreTest, PublishThenFetchRoundTripsAcrossProcesses) {
  auto clouds = make_clouds(3);
  ShardedMetaStore writer(clouds, "pass", small_shards());

  std::vector<Change> cs;
  for (int i = 0; i < 20; ++i) {
    cs.push_back(Change::upsert_file(
        snapshot("/dir" + std::to_string(i % 5) + "/f" + std::to_string(i),
                 "devA")));
  }
  cs.push_back(Change::add_dir("/dir0"));
  SyncFolderImage full = image_of(cs);
  ASSERT_TRUE(commit_changes(writer, cs, full, stamp("devA", 1)).is_ok());

  // A different "process" (fresh store, cold cache) sees the same state.
  ShardedMetaStore reader(clouds, "pass", small_shards());
  auto fetched = reader.fetch_latest();
  ASSERT_TRUE(fetched.is_ok()) << fetched.status().to_string();
  EXPECT_EQ(fetched.value().image.files().size(), 20u);
  EXPECT_EQ(fetched.value().version, stamp("devA", 1));
  for (int i = 0; i < 20; ++i) {
    const std::string path =
        "/dir" + std::to_string(i % 5) + "/f" + std::to_string(i);
    EXPECT_NE(fetched.value().image.find_file(path), nullptr) << path;
  }
}

TEST(ShardedMetaStoreTest, WrongPassphraseCannotRead) {
  auto clouds = make_clouds(3);
  ShardedMetaStore writer(clouds, "pass", small_shards());
  std::vector<Change> cs{Change::upsert_file(snapshot("/a", "devA"))};
  ASSERT_TRUE(
      commit_changes(writer, cs, image_of(cs), stamp("devA", 1)).is_ok());

  ShardedMetaStore wrong(clouds, "other", small_shards());
  EXPECT_FALSE(wrong.fetch_latest().is_ok());
}

TEST(ShardedMetaStoreTest, CommitTouchesOnlyDirtyShards) {
  auto clouds = make_clouds(3);
  ShardedMetaStore store(clouds, "pass", small_shards());

  std::vector<Change> seed_cs;
  for (int i = 0; i < 32; ++i) {
    seed_cs.push_back(Change::upsert_file(
        snapshot("/d" + std::to_string(i) + "/f", "devA")));
  }
  SyncFolderImage full = image_of(seed_cs);
  ASSERT_TRUE(commit_changes(store, seed_cs, full, stamp("devA", 1)).is_ok());
  auto before = store.fetch_manifest();
  ASSERT_TRUE(before.is_ok());

  // Touch exactly one subtree.
  std::vector<Change> one{Change::upsert_file(snapshot("/d3/f", "devA"))};
  apply_change(full, one.front());
  ASSERT_TRUE(commit_changes(store, one, full, stamp("devA", 2)).is_ok());

  auto after = store.fetch_manifest();
  ASSERT_TRUE(after.is_ok());
  const ShardId dirty_shard = shard_of_path("/d3/f", store.num_shards());
  std::size_t advanced = 0;
  for (const ShardEntry& e : after.value().entries) {
    const ShardEntry* was = before.value().find(e.id);
    ASSERT_NE(was, nullptr);
    if (!(was->version == e.version)) {
      ++advanced;
      EXPECT_EQ(e.id, dirty_shard);
    } else {
      EXPECT_EQ(*was, e);  // clean shards: byte-identical entries
    }
  }
  EXPECT_EQ(advanced, 1u);
  EXPECT_EQ(after.value().version, stamp("devA", 2));
}

TEST(ShardedMetaStoreTest, ShortCircuitCacheServesUnchangedShards) {
  auto clouds = make_clouds(3);
  ManualClock clock;
  auto obs = std::make_shared<obs::Observability>(clock);
  ShardedMetaStore store(clouds, "pass", small_shards(), obs);

  std::vector<Change> cs;
  for (int i = 0; i < 8; ++i) {
    cs.push_back(Change::upsert_file(
        snapshot("/d" + std::to_string(i) + "/f", "devA")));
  }
  ASSERT_TRUE(
      commit_changes(store, cs, image_of(cs), stamp("devA", 1)).is_ok());

  ASSERT_TRUE(store.fetch_latest().is_ok());
  const std::uint64_t hits_before = obs->metrics.snapshot().counter_value(
      "meta.shard.fetch.short_circuit");
  ASSERT_TRUE(store.fetch_latest().is_ok());
  const std::uint64_t hits_after = obs->metrics.snapshot().counter_value(
      "meta.shard.fetch.short_circuit");
  // Every shard was unchanged: the second assembly short-circuits.
  EXPECT_GE(hits_after - hits_before, 1u);

  store.clear_cache();
  ASSERT_TRUE(store.fetch_latest().is_ok());  // cold re-read still works
}

TEST(ShardedMetaStoreTest, CompactionFoldsChainAndPrunesObjects) {
  auto clouds = make_clouds(3);
  ShardConfig cfg = small_shards();
  cfg.max_delta_objects = 3;
  ManualClock clock;
  auto obs = std::make_shared<obs::Observability>(clock);
  ShardedMetaStore store(clouds, "pass", cfg, obs);

  // Same subtree every commit: the delta chain grows until the bound folds
  // it into a fresh base.
  SyncFolderImage full;
  for (std::uint64_t round = 1; round <= 10; ++round) {
    FileSnapshot s = snapshot("/hot/f" + std::to_string(round), "devA");
    std::vector<Change> cs{Change::upsert_file(s)};
    apply_change(full, cs.front());
    ASSERT_TRUE(commit_changes(store, cs, full, stamp("devA", round),
                               DeltaPolicy{.merge_ratio = 1e9,
                                           .merge_floor = 1u << 30})
                    .is_ok());
    auto m = store.fetch_manifest();
    ASSERT_TRUE(m.is_ok());
    const ShardEntry* e =
        m.value().find(shard_of_path("/hot/x", store.num_shards()));
    ASSERT_NE(e, nullptr);
    EXPECT_LE(e->deltas.size(), cfg.max_delta_objects);
  }
  const auto snap = obs->metrics.snapshot();
  EXPECT_GE(snap.counter_value("meta.shard.compactions"), 2u);
  EXPECT_GE(snap.counter_value("meta.shard.pruned"), 1u);

  // A cold reader still assembles the full folded state.
  ShardedMetaStore reader(clouds, "pass", cfg);
  auto fetched = reader.fetch_latest();
  ASSERT_TRUE(fetched.is_ok());
  EXPECT_EQ(fetched.value().image.files().size(), 10u);
}

TEST(ShardedMetaStoreTest, StaleWriterGetsFencedConflict) {
  auto clouds = make_clouds(3);
  ShardedMetaStore a(clouds, "pass", small_shards());
  ShardedMetaStore b(clouds, "pass", small_shards());

  std::vector<Change> seed_cs{Change::upsert_file(snapshot("/d/f0", "devA"))};
  SyncFolderImage full = image_of(seed_cs);
  ASSERT_TRUE(commit_changes(a, seed_cs, full, stamp("devA", 1)).is_ok());

  // Both read the same fenced manifest...
  auto fenced_a = a.fetch_manifest();
  auto fenced_b = b.fetch_manifest();
  ASSERT_TRUE(fenced_a.is_ok());
  ASSERT_TRUE(fenced_b.is_ok());

  // ...A commits the shard first...
  std::vector<Change> ca{Change::upsert_file(snapshot("/d/f1", "devA"))};
  SyncFolderImage full_a = full;
  apply_change(full_a, ca.front());
  const ShardId shard = shard_of_path("/d/f1", a.num_shards());
  auto ea = a.publish_shard(shard, fenced_a.value().find(shard), ca, full_a,
                            stamp("devA", 2), DeltaPolicy{});
  ASSERT_TRUE(ea.is_ok());
  ASSERT_TRUE(
      a.commit_manifest({ea.value()}, fenced_a.value(), stamp("devA", 2))
          .is_ok());

  // ...so B's commit of the SAME shard against the stale fence must lose
  // cleanly (kConflict), never silently clobber A's update.
  std::vector<Change> cb{Change::upsert_file(snapshot("/d/f2", "devB"))};
  SyncFolderImage full_b = full;
  apply_change(full_b, cb.front());
  auto eb = b.publish_shard(shard, fenced_b.value().find(shard), cb, full_b,
                            stamp("devB", 2), DeltaPolicy{});
  ASSERT_TRUE(eb.is_ok());
  EXPECT_EQ(
      b.commit_manifest({eb.value()}, fenced_b.value(), stamp("devB", 2))
          .code(),
      ErrorCode::kConflict);

  // A's file survived.
  auto latest = b.fetch_latest();
  ASSERT_TRUE(latest.is_ok());
  EXPECT_NE(latest.value().image.find_file("/d/f1"), nullptr);
}

TEST(ShardedMetaStoreTest, DisjointShardCommitFromStaleFenceSucceeds) {
  auto clouds = make_clouds(3);
  ShardedMetaStore a(clouds, "pass", small_shards());
  ShardedMetaStore b(clouds, "pass", small_shards());

  // Two top dirs guaranteed to live in different shards.
  std::string dir_a = "/a0";
  std::string dir_b;
  for (int i = 0; i < 64; ++i) {
    const std::string cand = "/b" + std::to_string(i);
    if (shard_of_path(cand + "/f", 8) != shard_of_path(dir_a + "/f", 8)) {
      dir_b = cand;
      break;
    }
  }
  ASSERT_FALSE(dir_b.empty());

  std::vector<Change> seed_cs{
      Change::upsert_file(snapshot(dir_a + "/seed", "devA"))};
  ASSERT_TRUE(commit_changes(a, seed_cs, image_of(seed_cs), stamp("devA", 1))
                  .is_ok());

  auto fenced_a = a.fetch_manifest();
  auto fenced_b = b.fetch_manifest();
  ASSERT_TRUE(fenced_a.is_ok());
  ASSERT_TRUE(fenced_b.is_ok());

  // A commits its shard; B then commits a DIFFERENT shard from the same
  // (now stale) fence — per-shard fencing lets it through, and the final
  // manifest version still advances past both.
  std::vector<Change> ca{Change::upsert_file(snapshot(dir_a + "/f", "devA"))};
  SyncFolderImage fa = image_of(seed_cs);
  apply_change(fa, ca.front());
  ASSERT_TRUE(commit_changes(a, ca, fa, stamp("devA", 2)).is_ok());

  std::vector<Change> cb{Change::upsert_file(snapshot(dir_b + "/f", "devB"))};
  SyncFolderImage fb = image_of(cb);
  const ShardId shard_b = shard_of_path(dir_b + "/f", b.num_shards());
  auto eb = b.publish_shard(shard_b, fenced_b.value().find(shard_b), cb, fb,
                            stamp("devB", 2), DeltaPolicy{});
  ASSERT_TRUE(eb.is_ok());
  auto flipped =
      b.commit_manifest({eb.value()}, fenced_b.value(), stamp("devB", 2));
  ASSERT_TRUE(flipped.is_ok()) << flipped.status().to_string();
  // The manifest stamp dominates A's concurrent commit (no regression).
  EXPECT_GT(flipped.value().version.counter, 2u);

  auto latest = a.fetch_latest();
  ASSERT_TRUE(latest.is_ok());
  EXPECT_NE(latest.value().image.find_file(dir_a + "/f"), nullptr);
  EXPECT_NE(latest.value().image.find_file(dir_b + "/f"), nullptr);
}

TEST(ShardedMetaStoreTest, HasCloudUpdateComparesRootVersion) {
  auto clouds = make_clouds(3);
  ShardedMetaStore store(clouds, "pass", small_shards());
  EXPECT_FALSE(store.has_cloud_update(stamp("devA", 0)));
  std::vector<Change> cs{Change::upsert_file(snapshot("/a", "devA"))};
  ASSERT_TRUE(
      commit_changes(store, cs, image_of(cs), stamp("devA", 1)).is_ok());
  EXPECT_TRUE(store.has_cloud_update(stamp("devA", 0)));
  EXPECT_FALSE(store.has_cloud_update(stamp("devA", 1)));
}

}  // namespace
}  // namespace unidrive::metadata

// --- LockManager ------------------------------------------------------------

namespace unidrive::lock {
namespace {

cloud::MultiCloud make_clouds(int n) {
  cloud::MultiCloud clouds;
  for (int i = 0; i < n; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i)));
  }
  return clouds;
}

SleepFn clock_sleep(ManualClock& clock) {
  return [&clock](Duration d) { clock.advance(d); };
}

LockConfig fast_config() {
  LockConfig c;
  c.retry.backoff_base = 0.01;
  c.retry.backoff_cap = 0.1;
  return c;
}

TEST(LockScopeTest, CanonicalOrderIsShardsAscendingRootLast) {
  std::vector<Scope> scopes{Scope::root(), Scope::of_shard(7),
                            Scope::of_shard(0), Scope::of_shard(3)};
  std::sort(scopes.begin(), scopes.end());
  EXPECT_EQ(scopes[0], Scope::of_shard(0));
  EXPECT_EQ(scopes[1], Scope::of_shard(3));
  EXPECT_EQ(scopes[2], Scope::of_shard(7));
  EXPECT_EQ(scopes[3], Scope::root());
  EXPECT_EQ(scopes[3].to_string(), "root");
  EXPECT_EQ(scopes[0].to_string(), "s0");
}

TEST(LockManagerTest, DisjointScopesNeverContend) {
  auto clouds = make_clouds(3);
  ManualClock clock;
  LockManager a(clouds, "devA", fast_config(), clock, Rng(1),
                clock_sleep(clock));
  LockManager b(clouds, "devB", fast_config(), clock, Rng(2),
                clock_sleep(clock));

  ASSERT_TRUE(a.acquire(Scope::of_shard(1)).is_ok());
  // A different shard AND the root are both free while s1 is held.
  ASSERT_TRUE(b.acquire(Scope::of_shard(2)).is_ok());
  ASSERT_TRUE(b.acquire(Scope::root()).is_ok());
  EXPECT_TRUE(a.held(Scope::of_shard(1)));
  EXPECT_TRUE(b.held(Scope::of_shard(2)));
  EXPECT_FALSE(b.held(Scope::of_shard(1)));
  a.release_all();
  b.release_all();
}

TEST(LockManagerTest, SameScopeContends) {
  auto clouds = make_clouds(3);
  ManualClock clock;
  LockManager a(clouds, "devA", fast_config(), clock, Rng(1),
                clock_sleep(clock));
  LockConfig cfg_b = fast_config();
  cfg_b.retry.max_attempts = 3;
  LockManager b(clouds, "devB", cfg_b, clock, Rng(2), clock_sleep(clock));

  ASSERT_TRUE(a.acquire(Scope::of_shard(4)).is_ok());
  EXPECT_EQ(b.acquire(Scope::of_shard(4)).code(),
            ErrorCode::kLockContention);
  a.release_all();
  EXPECT_TRUE(b.acquire(Scope::of_shard(4)).is_ok());
  b.release_all();
}

TEST(LockManagerTest, AcquireAllIsAllOrNothing) {
  auto clouds = make_clouds(3);
  ManualClock clock;
  LockManager a(clouds, "devA", fast_config(), clock, Rng(1),
                clock_sleep(clock));
  LockConfig cfg_b = fast_config();
  cfg_b.retry.max_attempts = 2;
  LockManager b(clouds, "devB", cfg_b, clock, Rng(2), clock_sleep(clock));

  ASSERT_TRUE(a.acquire(Scope::of_shard(2)).is_ok());
  // B wants s1+s2+root; s2 is taken, so B must end up holding NOTHING.
  const Status s = b.acquire_all(
      {Scope::of_shard(1), Scope::of_shard(2), Scope::root()});
  EXPECT_FALSE(s.is_ok());
  EXPECT_FALSE(b.held(Scope::of_shard(1)));
  EXPECT_FALSE(b.held(Scope::root()));
  // The rolled-back scopes left no lock files behind.
  for (const auto& c : clouds) {
    EXPECT_TRUE(c->list("/lock/s1").value().empty());
    EXPECT_TRUE(c->list("/lock").value().empty());
  }
  a.release_all();
}

TEST(LockManagerTest, RootScopeUsesPreShardDirectory) {
  auto clouds = make_clouds(3);
  ManualClock clock;
  LockManager m(clouds, "devA", fast_config(), clock, Rng(1),
                clock_sleep(clock));
  ASSERT_TRUE(m.acquire(Scope::root()).is_ok());
  // Root lock files live directly in the pre-shard /lock directory, so a
  // pre-refactor holder and the root scope exclude each other.
  for (const auto& c : clouds) {
    EXPECT_EQ(c->list("/lock").value().size(), 1u);
  }
  ASSERT_TRUE(m.acquire(Scope::of_shard(3)).is_ok());
  for (const auto& c : clouds) {
    // Nested scope dirs are not immediate children files of /lock listings
    // used by the root protocol (list returns immediate children only).
    EXPECT_EQ(c->list("/lock/s3").value().size(), 1u);
  }
  m.release_all();
  for (const auto& c : clouds) {
    EXPECT_TRUE(c->list("/lock").value().empty());
    EXPECT_TRUE(c->list("/lock/s3").value().empty());
  }
}

TEST(LockManagerTest, AcquireAllDedupsScopes) {
  auto clouds = make_clouds(3);
  ManualClock clock;
  LockManager m(clouds, "devA", fast_config(), clock, Rng(1),
                clock_sleep(clock));
  ASSERT_TRUE(m.acquire_all({Scope::of_shard(1), Scope::of_shard(1),
                             Scope::root(), Scope::root()})
                  .is_ok());
  EXPECT_TRUE(m.held(Scope::of_shard(1)));
  EXPECT_TRUE(m.held(Scope::root()));
  m.release_all();
  EXPECT_FALSE(m.held(Scope::of_shard(1)));
}

}  // namespace
}  // namespace unidrive::lock

// --- concurrent writers (the tentpole guarantee) ----------------------------

namespace unidrive::metadata {
namespace {

// N writer threads, each committing to its OWN top-level directory
// (disjoint shards by construction) through its own ShardedMetaStore and
// LockManager over the SAME clouds. The token oracle records every file
// each writer committed; after the dust settles the assembled image must
// contain every token — zero lost updates. Run under TSan to certify the
// locking protocol (tests/CMakeLists.txt wires this binary into the
// sanitizer sweep).
TEST(ConcurrentWritersTest, DisjointShardCommitsLoseNoUpdates) {
  constexpr int kWriters = 4;
  constexpr int kRounds = 6;
  const std::uint64_t base_seed = testing::test_seed(0x5eedc0de);

  cloud::MultiCloud clouds;
  for (int i = 0; i < 3; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i)));
  }
  ShardConfig cfg;
  cfg.num_shards = 16;

  // Writer w owns subtree /w<w>; routing sends the whole subtree to one
  // shard, and distinct writers may even share a shard — the per-shard
  // lock, not luck, is what must serialize them.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const std::string device = "dev" + std::to_string(w);
      ShardedMetaStore store(clouds, "pass", cfg);
      lock::LockConfig lk;
      lk.retry.backoff_base = 0.0005;
      lk.retry.backoff_cap = 0.005;
      lk.retry.max_attempts = 64;
      lock::LockManager locks(clouds, device, lk, RealClock::instance(),
                              Rng(base_seed + static_cast<std::uint64_t>(w)));
      SyncFolderImage mine;  // this writer's subtree state
      for (int r = 0; r < kRounds; ++r) {
        const std::string path =
            "/w" + std::to_string(w) + "/token" + std::to_string(r);
        std::vector<Change> cs{Change::upsert_file(
            FileSnapshot{path, 0.0, 8, "h-" + path, {}, device})};
        apply_change(mine, cs.front());
        const ShardId shard = shard_of_path(path, cfg.num_shards);

        bool committed = false;
        for (int attempt = 0; attempt < 32 && !committed; ++attempt) {
          if (!locks.acquire(lock::Scope::of_shard(shard)).is_ok()) continue;
          ShardManifest fenced;
          auto m = store.fetch_manifest();
          if (m.is_ok()) {
            fenced = std::move(m).take();
          } else if (m.code() != ErrorCode::kNotFound) {
            locks.release_all();
            continue;
          } else {
            fenced.num_shards = cfg.num_shards;
          }
          const std::uint64_t counter = fenced.version.counter + 1;
          auto entry = store.publish_shard(
              shard, fenced.find(shard), cs, mine,
              VersionStamp{device, counter, 0.0}, DeltaPolicy{});
          if (!entry.is_ok()) {
            locks.release_all();
            continue;
          }
          if (!locks.acquire(lock::Scope::root()).is_ok()) {
            locks.release_all();
            continue;
          }
          auto flipped =
              store.commit_manifest({entry.value()}, fenced,
                                    VersionStamp{device, counter, 0.0});
          locks.release_all();
          committed = flipped.is_ok();
          // kConflict = a foreign root flip between our fetch and our lock;
          // clean retry from a fresh fence.
        }
        if (!committed) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // The oracle: every token every writer committed is present.
  ShardedMetaStore reader(clouds, "pass", cfg);
  auto latest = reader.fetch_latest();
  ASSERT_TRUE(latest.is_ok()) << latest.status().to_string();
  for (int w = 0; w < kWriters; ++w) {
    for (int r = 0; r < kRounds; ++r) {
      const std::string path =
          "/w" + std::to_string(w) + "/token" + std::to_string(r);
      EXPECT_NE(latest.value().image.find_file(path), nullptr)
          << "lost update: " << path;
    }
  }
  EXPECT_EQ(latest.value().image.files().size(),
            static_cast<std::size_t>(kWriters * kRounds));
}

}  // namespace
}  // namespace unidrive::metadata
