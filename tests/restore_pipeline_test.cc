// Tests for the streaming restore path: parallel RS decode equivalence,
// the verified k-subset search, the incremental StreamingDownloadDriver,
// LocalFs::FileWriter semantics, and the end-to-end DownloadPipeline —
// bounded-memory admission under slow clouds, cancellation under injected
// hangs, corrupt-shard search convergence with out-of-order arrivals, and
// the monolithic (pipeline-disabled) fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <thread>

#include "cloud/async.h"
#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "common/executor.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/download_pipeline.h"
#include "core/local_fs.h"
#include "crypto/sha1.h"
#include "erasure/rs.h"
#include "metadata/image.h"
#include "metadata/types.h"
#include "obs/obs.h"
#include "sched/streaming_driver.h"

namespace unidrive::core {
namespace {

using std::chrono::milliseconds;

cloud::MultiCloud make_clouds(int n) {
  cloud::MultiCloud clouds;
  for (int i = 0; i < n; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i)));
  }
  return clouds;
}

// Adds per-request latency to the inner cloud's downloads (uploads pass
// through untouched) so completions arrive out of order and the admission
// gate actually fills up.
class SlowCloud final : public cloud::CloudProvider {
 public:
  SlowCloud(cloud::CloudPtr inner, milliseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}

  [[nodiscard]] cloud::CloudId id() const noexcept override {
    return inner_->id();
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override {
    return inner_->upload(path, data);
  }
  Result<Bytes> download(const std::string& path) override {
    std::this_thread::sleep_for(delay_);
    return inner_->download(path);
  }
  Status create_dir(const std::string& path) override {
    return inner_->create_dir(path);
  }
  Result<std::vector<cloud::FileInfo>> list(const std::string& dir) override {
    return inner_->list(dir);
  }
  Status remove(const std::string& path) override {
    return inner_->remove(path);
  }

 private:
  cloud::CloudPtr inner_;
  milliseconds delay_;
};

// Segments `content` at `theta`, encodes `blocks_per_segment` distinct
// blocks per segment with `code`, uploads block b to cloud (b % clouds),
// records everything in `image`, and returns the file's snapshot.
metadata::FileSnapshot publish_file(const std::string& path,
                                    const Bytes& content, std::size_t theta,
                                    const erasure::RsCode& code,
                                    std::uint32_t blocks_per_segment,
                                    const cloud::MultiCloud& clouds,
                                    metadata::SyncFolderImage& image) {
  metadata::FileSnapshot snap;
  snap.path = path;
  snap.size = content.size();
  snap.content_hash = crypto::Sha1::hex(ByteSpan(content));
  for (std::size_t off = 0; off < content.size(); off += theta) {
    const std::size_t len = std::min(theta, content.size() - off);
    const Bytes seg(content.begin() + off, content.begin() + off + len);
    const std::string id = crypto::Sha1::hex(ByteSpan(seg));
    snap.segment_ids.push_back(id);
    if (image.find_segment(id) != nullptr) continue;  // dedup
    std::vector<std::uint32_t> indices;
    for (std::uint32_t b = 0; b < blocks_per_segment; ++b) {
      indices.push_back(b);
    }
    metadata::SegmentInfo info;
    info.id = id;
    info.size = len;
    info.refcount = 1;
    for (const erasure::Shard& shard : code.encode_shards(ByteSpan(seg),
                                                          indices)) {
      const auto target = static_cast<cloud::CloudId>(
          shard.index % clouds.size());
      EXPECT_TRUE(clouds[target]
                      ->upload(metadata::block_path(id, shard.index),
                               ByteSpan(shard.data))
                      .is_ok());
      info.blocks.push_back({shard.index, target});
    }
    image.upsert_segment(info);
  }
  image.upsert_file(snap);
  return snap;
}

// find_cloud over an explicit provider table (wrapped or raw).
FindCloudFn table_lookup(const std::vector<cloud::CloudProvider*>& table) {
  return [&table](cloud::CloudId id) -> cloud::CloudProvider* {
    return table[id];
  };
}

// --- parallel decode --------------------------------------------------------

TEST(ParallelDecodeTest, MatchesSerialDecodeOnArbitrarySubsets) {
  const erasure::RsCode code(16, 4);
  Rng rng(21);
  const Bytes segment = rng.bytes(200001);  // deliberately not shard-aligned
  const std::vector<erasure::Shard> all = code.encode(ByteSpan(segment));

  // An unsorted, non-contiguous k-subset, as the corrupt-shard search
  // produces them.
  const std::vector<erasure::Shard> subset = {all[5], all[9], all[2],
                                              all[11]};
  const auto serial = code.decode(subset, segment.size());
  ASSERT_TRUE(serial.is_ok());
  ASSERT_EQ(serial.value(), segment);

  for (const std::size_t threads : {1, 4}) {
    Executor executor(threads);
    const auto parallel =
        code.decode_shards_parallel(subset, segment.size(), executor);
    ASSERT_TRUE(parallel.is_ok());
    EXPECT_EQ(parallel.value(), segment) << threads << " threads";
  }
}

TEST(ParallelDecodeTest, SafeFromPoolThreadAndRejectsBadInput) {
  const erasure::RsCode code(8, 3);
  Rng rng(22);
  const Bytes segment = rng.bytes(60000);
  const auto all = code.encode(ByteSpan(segment));

  // Fan-out from a pool thread must not deadlock (decode tasks run on the
  // same executor the row fan-out uses).
  Executor executor(1);
  std::atomic<bool> ok{false};
  executor.submit([&] {
    const std::vector<erasure::Shard> subset = {all[1], all[4], all[6]};
    const auto decoded =
        code.decode_shards_parallel(subset, segment.size(), executor);
    ok.store(decoded.is_ok() && decoded.value() == segment);
  });
  for (int spin = 0; spin < 5000 && !ok.load(); ++spin) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_TRUE(ok.load());

  // Too few shards fail the same way the serial path does.
  const std::vector<erasure::Shard> short_set = {all[0], all[1]};
  EXPECT_FALSE(code.decode_shards_parallel(short_set, segment.size(),
                                           executor)
                   .is_ok());
}

// --- decode_verified --------------------------------------------------------

TEST(DecodeVerifiedTest, FindsCleanSubsetAroundOneCorruptShard) {
  const erasure::RsCode code(16, 3);
  Rng rng(23);
  const Bytes segment = rng.bytes(90001);
  metadata::SegmentInfo info;
  info.id = crypto::Sha1::hex(ByteSpan(segment));
  info.size = segment.size();

  std::vector<erasure::Shard> shards =
      code.encode_shards(ByteSpan(segment), {0, 1, 2, 3});
  shards[1].data[7] ^= 0xFF;  // silent corruption, size unchanged

  Executor executor(4);
  for (Executor* exec : {static_cast<Executor*>(nullptr), &executor}) {
    const auto decoded = decode_verified(code, shards, info, 3, exec);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value(), segment);
  }
}

TEST(DecodeVerifiedTest, FailsWhenNoCleanSubsetExists) {
  const erasure::RsCode code(16, 3);
  Rng rng(24);
  const Bytes segment = rng.bytes(30000);
  metadata::SegmentInfo info;
  info.id = crypto::Sha1::hex(ByteSpan(segment));
  info.size = segment.size();

  // Two corrupt shards among four: every 3-subset contains at least one.
  std::vector<erasure::Shard> shards =
      code.encode_shards(ByteSpan(segment), {0, 1, 2, 3});
  shards[0].data[0] ^= 0x01;
  shards[3].data[5] ^= 0x80;
  const auto decoded = decode_verified(code, shards, info, 3, nullptr);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.code(), ErrorCode::kCorrupt);
}

// --- StreamingDownloadDriver ------------------------------------------------

TEST(StreamingDownloadDriverTest, IncrementalFeedSettlesEverySegment) {
  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);

  std::mutex mu;
  std::map<std::string, std::set<std::uint32_t>> fetched;
  const sched::TransferFn transfer = [&](const sched::BlockTask& task) {
    std::lock_guard<std::mutex> g(mu);
    fetched[task.segment_id].insert(task.block_index);
    return Status::ok();
  };

  std::mutex settled_mu;
  std::map<std::string, bool> settled;
  sched::StreamingDownloadDriver driver(
      /*k=*/2, {0, 1, 2}, sched::DriverConfig{2, 3}, monitor, executor,
      transfer, nullptr, nullptr, [&](const std::string& id, bool ok) {
        std::lock_guard<std::mutex> g(settled_mu);
        settled[id] = ok;
      });

  // Files arrive one by one while fetches are already running.
  for (int i = 0; i < 3; ++i) {
    sched::DownloadFileSpec spec;
    spec.path = "/f" + std::to_string(i);
    sched::DownloadSegmentSpec seg;
    seg.id = "seg" + std::to_string(i);
    seg.size = 64 << 10;
    for (std::uint32_t b = 0; b < 3; ++b) {
      seg.locations.push_back({b, static_cast<cloud::CloudId>(b)});
    }
    spec.segments.push_back(std::move(seg));
    driver.add_file(std::move(spec));
    std::this_thread::sleep_for(milliseconds(2));
  }
  driver.close();
  driver.wait();

  for (int i = 0; i < 3; ++i) {
    const std::string id = "seg" + std::to_string(i);
    ASSERT_EQ(settled.count(id), 1u) << id;
    EXPECT_TRUE(settled[id]);
    // The budget asks for k distinct blocks; hedging may add more.
    EXPECT_GE(fetched[id].size(), 2u);
  }
}

TEST(StreamingDownloadDriverTest, CancelFailsPendingSegmentsWithoutDeadlock) {
  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> entered{0};
  const sched::TransferFn transfer = [&](const sched::BlockTask&) {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
    return Status::ok();
  };

  std::mutex settled_mu;
  std::map<std::string, bool> settled;
  sched::StreamingDownloadDriver driver(
      /*k=*/2, {0, 1}, sched::DriverConfig{2, 3}, monitor, executor, transfer,
      nullptr, nullptr, [&](const std::string& id, bool ok) {
        std::lock_guard<std::mutex> g(settled_mu);
        settled[id] = ok;
      });

  sched::DownloadFileSpec spec;
  spec.path = "/wedged";
  sched::DownloadSegmentSpec seg;
  seg.id = "wedged-seg";
  seg.size = 4 << 10;
  seg.locations = {{0, 0}, {1, 1}};
  spec.segments.push_back(std::move(seg));
  driver.add_file(std::move(spec));

  for (int spin = 0; spin < 5000 && entered.load() == 0; ++spin) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_GT(entered.load(), 0);

  driver.cancel();  // pending segment settles ok=false immediately
  {
    std::lock_guard<std::mutex> g(settled_mu);
    ASSERT_EQ(settled.count("wedged-seg"), 1u);
    EXPECT_FALSE(settled["wedged-seg"]);
  }
  {
    std::lock_guard<std::mutex> g(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  driver.wait();  // stuck transfers drained, no deadlock
}

// --- LocalFs::FileWriter ----------------------------------------------------

TEST(FileWriterTest, BufferedWriterPublishesOnlyOnCommit) {
  MemoryLocalFs fs;
  auto writer = fs.open_write("/w.txt");
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE(writer.value()->append(ByteSpan(bytes_from_string("he"))).is_ok());
  ASSERT_TRUE(
      writer.value()->append(ByteSpan(bytes_from_string("llo"))).is_ok());
  EXPECT_FALSE(fs.read("/w.txt").is_ok());  // nothing visible pre-commit
  ASSERT_TRUE(writer.value()->commit().is_ok());
  EXPECT_EQ(fs.read("/w.txt").value(), bytes_from_string("hello"));
  // The writer is closed: further appends and commits are rejected.
  EXPECT_FALSE(writer.value()->append(ByteSpan(bytes_from_string("x"))).is_ok());
  EXPECT_FALSE(writer.value()->commit().is_ok());
}

TEST(FileWriterTest, AbortAndDestructionLeaveNoTrace) {
  MemoryLocalFs fs;
  {
    auto writer = fs.open_write("/a.bin");
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE(writer.value()->append(ByteSpan(bytes_from_string("xx"))).is_ok());
    writer.value()->abort();
    writer.value()->abort();  // idempotent
  }
  {
    auto writer = fs.open_write("/b.bin");
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE(writer.value()->append(ByteSpan(bytes_from_string("yy"))).is_ok());
    // destroyed without commit
  }
  EXPECT_FALSE(fs.read("/a.bin").is_ok());
  EXPECT_FALSE(fs.read("/b.bin").is_ok());
  EXPECT_TRUE(fs.list_files().empty());
}

TEST(FileWriterTest, DiskWriterStreamsThroughPartFileAndRenames) {
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("unidrive_writer_test_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(root);
  {
    DiskLocalFs fs(root);
    auto writer = fs.open_write("/docs/out.bin");
    ASSERT_TRUE(writer.is_ok());
    Rng rng(31);
    const Bytes part1 = rng.bytes(10000);
    const Bytes part2 = rng.bytes(5000);
    ASSERT_TRUE(writer.value()->append(ByteSpan(part1)).is_ok());
    ASSERT_TRUE(writer.value()->append(ByteSpan(part2)).is_ok());
    EXPECT_FALSE(fs.read("/docs/out.bin").is_ok());  // only the .part exists
    ASSERT_TRUE(writer.value()->commit().is_ok());
    Bytes joined = part1;
    joined.insert(joined.end(), part2.begin(), part2.end());
    EXPECT_EQ(fs.read("/docs/out.bin").value(), joined);
    // The temp file was renamed away, not left beside the result.
    EXPECT_EQ(fs.list_files(),
              std::vector<std::string>{"/docs/out.bin"});

    auto aborted = fs.open_write("/docs/gone.bin");
    ASSERT_TRUE(aborted.is_ok());
    ASSERT_TRUE(aborted.value()->append(ByteSpan(part1)).is_ok());
    aborted.value()->abort();
    EXPECT_EQ(fs.list_files(),
              std::vector<std::string>{"/docs/out.bin"});
  }
  std::filesystem::remove_all(root);
}

// --- DownloadPipeline: end-to-end restores ----------------------------------

TEST(RestorePipelineTest, RestoresMultiFileBatchBitExact) {
  const std::size_t k = 3;
  const std::size_t theta = 64 << 10;
  const erasure::RsCode code(16, k);
  cloud::MultiCloud clouds = make_clouds(4);
  metadata::SyncFolderImage image;
  Rng rng(41);

  const Bytes big = rng.bytes(300 << 10);  // 5 segments
  // One shared segment: /dup duplicates /big's first segment, and repeats
  // it twice so one decoded plaintext feeds two file positions.
  Bytes dup(big.begin(), big.begin() + theta);
  dup.insert(dup.end(), big.begin(), big.begin() + theta);
  const Bytes empty;

  const auto snap_big =
      publish_file("/big.bin", big, theta, code, 5, clouds, image);
  const auto snap_dup =
      publish_file("/dup.bin", dup, theta, code, 5, clouds, image);
  const auto snap_empty =
      publish_file("/empty", empty, theta, code, 5, clouds, image);

  std::vector<cloud::CloudProvider*> table;
  for (const auto& c : clouds) table.push_back(c.get());
  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);
  auto obs = std::make_shared<obs::Observability>();
  MemoryLocalFs fs;
  DownloadPipeline pipeline(k, code, {0, 1, 2, 3}, sched::DriverConfig{2, 3},
                            monitor, executor, table_lookup(table),
                            PipelineConfig{}, fs, nullptr, obs);
  pipeline.add_file(snap_big, image);
  pipeline.add_file(snap_dup, image);
  pipeline.add_file(snap_empty, image);
  const auto results = pipeline.finish();

  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.status.is_ok()) << r.path << ": " << r.status.message();
  }
  EXPECT_EQ(fs.read("/big.bin").value(), big);
  EXPECT_EQ(fs.read("/dup.bin").value(), dup);
  EXPECT_EQ(fs.read("/empty").value(), empty);
  EXPECT_EQ(pipeline.inflight_bytes(), 0u);

  const auto metrics = obs->metrics.snapshot();
  EXPECT_EQ(metrics.gauge_value("restore.inflight_bytes"), 0.0);
  EXPECT_GT(metrics.gauge_value("restore.inflight_bytes_peak"), 0.0);
}

TEST(RestorePipelineTest, InflightBytesStayUnderCapUnderSlowClouds) {
  const std::size_t k = 2;
  const std::size_t theta = 64 << 10;
  const erasure::RsCode code(16, k);
  cloud::MultiCloud clouds = make_clouds(4);
  metadata::SyncFolderImage image;
  Rng rng(42);

  const Bytes content = rng.bytes(1 << 20);  // 16 segments
  const auto snap =
      publish_file("/slow.bin", content, theta, code, 4, clouds, image);

  // Every download takes a few milliseconds, so the producer runs far
  // ahead of the fetch stage and leans on the admission gate.
  std::vector<std::unique_ptr<SlowCloud>> slow;
  std::vector<cloud::CloudProvider*> table;
  for (const auto& c : clouds) {
    slow.push_back(std::make_unique<SlowCloud>(c, milliseconds(3)));
    table.push_back(slow.back().get());
  }

  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);
  auto obs = std::make_shared<obs::Observability>();
  MemoryLocalFs fs;
  PipelineConfig config;
  // A 64 KiB segment's restore footprint is 128 KiB (k shards of 32 KiB
  // plus the plaintext): at most four segments fit in flight at once.
  config.max_inflight_bytes = 512 << 10;
  DownloadPipeline pipeline(k, code, {0, 1, 2, 3}, sched::DriverConfig{2, 3},
                            monitor, executor, table_lookup(table), config,
                            fs, nullptr, obs);
  pipeline.add_file(snap, image);
  const auto results = pipeline.finish();

  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.is_ok()) << results[0].status.message();
  EXPECT_EQ(fs.read("/slow.bin").value(), content);

  const auto metrics = obs->metrics.snapshot();
  const double peak = metrics.gauge_value("restore.inflight_bytes_peak");
  EXPECT_GT(peak, 0.0);
  EXPECT_LE(peak, static_cast<double>(config.max_inflight_bytes));
  EXPECT_EQ(metrics.gauge_value("restore.inflight_bytes"), 0.0);
  EXPECT_EQ(pipeline.inflight_bytes(), 0u);
}

// Blocks every injected hang until the test opens the gate.
struct HangGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void release() {
    {
      std::lock_guard<std::mutex> g(mu);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
};

TEST(RestorePipelineTest, CancelUnderHangingCloudReleasesProducerAndBytes) {
  const std::size_t k = 2;
  const std::size_t theta = 64 << 10;
  const erasure::RsCode code(16, k);
  cloud::MultiCloud clouds = make_clouds(2);
  metadata::SyncFolderImage image;
  Rng rng(43);

  const Bytes content = rng.bytes(128 << 10);  // two 64 KiB segments
  const auto snap =
      publish_file("/hang.bin", content, theta, code, 2, clouds, image);

  HangGate gate;
  cloud::FaultProfile hang_profile;
  hang_profile.hang_rate = 1.0;
  hang_profile.hang_seconds = 1.0;
  std::vector<std::shared_ptr<cloud::FaultyCloud>> faulty;
  std::vector<cloud::CloudProvider*> table;
  for (std::size_t i = 0; i < clouds.size(); ++i) {
    faulty.push_back(std::make_shared<cloud::FaultyCloud>(
        clouds[i], hang_profile, /*seed=*/i + 1,
        [&gate](Duration) { gate.wait(); }));
    table.push_back(faulty.back().get());
  }

  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);
  MemoryLocalFs fs;
  PipelineConfig config;
  // One segment's footprint (128 KiB) fits, a second does not: the
  // producer must block on the admission gate while the first is wedged.
  config.max_inflight_bytes = 200 << 10;
  DownloadPipeline pipeline(k, code, {0, 1}, sched::DriverConfig{2, 3},
                            monitor, executor, table_lookup(table), config,
                            fs, nullptr, nullptr);

  std::atomic<bool> producer_done{false};
  std::thread producer([&] {
    pipeline.add_file(snap, image);
    producer_done.store(true);
  });

  // Wait until a fetch is actually stuck inside the injected hang.
  for (int spin = 0; spin < 5000; ++spin) {
    if (faulty[0]->hangs() + faulty[1]->hangs() > 0) break;
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_GT(faulty[0]->hangs() + faulty[1]->hangs(), 0u);
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(producer_done.load());

  pipeline.cancel();
  producer.join();  // released without the cloud ever answering
  EXPECT_TRUE(producer_done.load());

  gate.release();  // let the stuck transfers finish their current request
  const auto results = pipeline.finish();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].status.is_ok());
  // No reserved bytes leaked and no partial file survived the abort.
  EXPECT_EQ(pipeline.inflight_bytes(), 0u);
  EXPECT_FALSE(fs.read("/hang.bin").is_ok());
  EXPECT_TRUE(fs.list_files().empty());
}

// --- completion-based (async) transfer mode ----------------------------------

// Builds async twins of `providers` over `io`; the caller keeps the
// returned vector alive for the pipeline's lifetime.
cloud::AsyncMultiCloud async_twins(const cloud::MultiCloud& providers,
                                   Executor* io) {
  cloud::AsyncContext ctx;
  ctx.io = io;
  cloud::AsyncMultiCloud twins;
  for (const auto& p : providers) twins.push_back(cloud::to_async(p, ctx));
  return twins;
}

FindAsyncCloudFn async_lookup(const cloud::AsyncMultiCloud& twins) {
  return [&twins](cloud::CloudId id) -> cloud::AsyncCloud* {
    return twins[id].get();
  };
}

TEST(RestorePipelineTest, AsyncTransfersRestoreBitExact) {
  const std::size_t k = 3;
  const std::size_t theta = 64 << 10;
  const erasure::RsCode code(16, k);
  cloud::MultiCloud clouds = make_clouds(4);
  metadata::SyncFolderImage image;
  Rng rng(47);

  const Bytes big = rng.bytes(300 << 10);
  const auto snap =
      publish_file("/async.bin", big, theta, code, 5, clouds, image);

  std::vector<cloud::CloudProvider*> table;
  for (const auto& c : clouds) table.push_back(c.get());
  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);
  cloud::AsyncMultiCloud twins = async_twins(clouds, executor.get());
  MemoryLocalFs fs;
  DownloadPipeline pipeline(k, code, {0, 1, 2, 3}, sched::DriverConfig{2, 3},
                            monitor, executor, table_lookup(table),
                            PipelineConfig{}, fs, nullptr, nullptr,
                            async_lookup(twins));
  pipeline.add_file(snap, image);
  const auto results = pipeline.finish();

  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.is_ok()) << results[0].status.message();
  EXPECT_EQ(fs.read("/async.bin").value(), big);
  EXPECT_EQ(pipeline.inflight_bytes(), 0u);
}

// Cancel mid-flight with completion-based fetches wedged in an injected
// hang: the blocked producer and all reserved bytes must be released, and
// no partial file may survive.
TEST(RestorePipelineTest, AsyncCancelUnderHangingCloudReleasesProducer) {
  const std::size_t k = 2;
  const std::size_t theta = 64 << 10;
  const erasure::RsCode code(16, k);
  cloud::MultiCloud clouds = make_clouds(2);
  metadata::SyncFolderImage image;
  Rng rng(48);

  const Bytes content = rng.bytes(128 << 10);  // two 64 KiB segments
  const auto snap =
      publish_file("/ahang.bin", content, theta, code, 2, clouds, image);

  HangGate gate;
  cloud::FaultProfile hang_profile;
  hang_profile.hang_rate = 1.0;
  hang_profile.hang_seconds = 1.0;
  cloud::MultiCloud faulty;
  std::vector<std::shared_ptr<cloud::FaultyCloud>> handles;
  std::vector<cloud::CloudProvider*> table;
  for (std::size_t i = 0; i < clouds.size(); ++i) {
    auto f = std::make_shared<cloud::FaultyCloud>(
        clouds[i], hang_profile, /*seed=*/i + 1,
        [&gate](Duration) { gate.wait(); });
    handles.push_back(f);
    faulty.push_back(f);
    table.push_back(f.get());
  }

  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);
  cloud::AsyncMultiCloud twins = async_twins(faulty, executor.get());
  MemoryLocalFs fs;
  PipelineConfig config;
  config.max_inflight_bytes = 200 << 10;
  {
    DownloadPipeline pipeline(k, code, {0, 1}, sched::DriverConfig{2, 3},
                              monitor, executor, table_lookup(table), config,
                              fs, nullptr, nullptr, async_lookup(twins));

    std::atomic<bool> producer_done{false};
    std::thread producer([&] {
      pipeline.add_file(snap, image);
      producer_done.store(true);
    });

    for (int spin = 0; spin < 5000; ++spin) {
      if (handles[0]->hangs() + handles[1]->hangs() > 0) break;
      std::this_thread::sleep_for(milliseconds(1));
    }
    ASSERT_GT(handles[0]->hangs() + handles[1]->hangs(), 0u);
    std::this_thread::sleep_for(milliseconds(20));
    EXPECT_FALSE(producer_done.load());

    pipeline.cancel();
    producer.join();
    EXPECT_TRUE(producer_done.load());

    gate.release();  // let the wedged completions resolve
    const auto results = pipeline.finish();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].status.is_ok());
    EXPECT_EQ(pipeline.inflight_bytes(), 0u);
    EXPECT_FALSE(fs.read("/ahang.bin").is_ok());
    EXPECT_TRUE(fs.list_files().empty());
  }
}

TEST(RestorePipelineTest, CorruptShardSearchConvergesWithOutOfOrderBlocks) {
  const std::size_t k = 3;
  const std::size_t theta = 64 << 10;
  const erasure::RsCode code(16, k);
  cloud::MultiCloud clouds = make_clouds(4);
  metadata::SyncFolderImage image;
  Rng rng(44);

  const Bytes content = rng.bytes(384 << 10);  // 6 segments
  const auto snap =
      publish_file("/healed.bin", content, theta, code, 4, clouds, image);

  // Corrupt block 1 of the FIRST segment in place on its cloud. With
  // blocks 0..3 on clouds 0..3 and budget k=3, blocks {0,1,2} are fetched
  // first, the verified decode fails, and the search must pull block 3.
  const std::string& first_seg = snap.segment_ids.front();
  const Bytes junk = rng.bytes(code.shard_size(theta));
  ASSERT_TRUE(clouds[1]
                  ->upload(metadata::block_path(first_seg, 1), ByteSpan(junk))
                  .is_ok());

  // Skewed latencies: cloud 0 is slowest, so block arrivals — and whole
  // segment decodes — complete out of snapshot order; the writer must
  // still assemble in order.
  const milliseconds delays[] = {milliseconds(12), milliseconds(1),
                                 milliseconds(2), milliseconds(3)};
  std::vector<std::unique_ptr<SlowCloud>> slow;
  std::vector<cloud::CloudProvider*> table;
  for (std::size_t i = 0; i < clouds.size(); ++i) {
    slow.push_back(std::make_unique<SlowCloud>(clouds[i], delays[i]));
    table.push_back(slow.back().get());
  }

  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);
  MemoryLocalFs fs;
  DownloadPipeline pipeline(k, code, {0, 1, 2, 3}, sched::DriverConfig{2, 3},
                            monitor, executor, table_lookup(table),
                            PipelineConfig{}, fs, nullptr, nullptr);
  pipeline.add_file(snap, image);
  const auto results = pipeline.finish();

  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.is_ok()) << results[0].status.message();
  EXPECT_EQ(fs.read("/healed.bin").value(), content);
  EXPECT_EQ(pipeline.inflight_bytes(), 0u);
}

TEST(RestorePipelineTest, UnrecoverableCorruptionFailsWithoutPartialWrite) {
  const std::size_t k = 3;
  const std::size_t theta = 64 << 10;
  const erasure::RsCode code(16, k);
  cloud::MultiCloud clouds = make_clouds(3);
  metadata::SyncFolderImage image;
  Rng rng(45);

  const Bytes content = rng.bytes(100 << 10);  // 2 segments
  // Exactly k blocks per segment: after a corruption there is no extra
  // supply, so the search must exhaust and fail the file.
  const auto snap =
      publish_file("/doomed.bin", content, theta, code, 3, clouds, image);
  const std::string& first_seg = snap.segment_ids.front();
  const Bytes junk = rng.bytes(code.shard_size(theta));
  ASSERT_TRUE(clouds[2]
                  ->upload(metadata::block_path(first_seg, 2), ByteSpan(junk))
                  .is_ok());

  std::vector<cloud::CloudProvider*> table;
  for (const auto& c : clouds) table.push_back(c.get());
  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);
  MemoryLocalFs fs;
  DownloadPipeline pipeline(k, code, {0, 1, 2}, sched::DriverConfig{2, 3},
                            monitor, executor, table_lookup(table),
                            PipelineConfig{}, fs, nullptr, nullptr);
  pipeline.add_file(snap, image);
  const auto results = pipeline.finish();

  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].status.is_ok());
  EXPECT_EQ(results[0].status.code(), ErrorCode::kCorrupt);
  EXPECT_FALSE(fs.read("/doomed.bin").is_ok());
  EXPECT_TRUE(fs.list_files().empty());
  EXPECT_EQ(pipeline.inflight_bytes(), 0u);
}

TEST(RestorePipelineTest, MissingSegmentFailsOnlyThatFile) {
  const std::size_t k = 2;
  const std::size_t theta = 64 << 10;
  const erasure::RsCode code(16, k);
  cloud::MultiCloud clouds = make_clouds(3);
  metadata::SyncFolderImage image;
  Rng rng(46);

  const Bytes good = rng.bytes(80 << 10);
  const auto snap_good =
      publish_file("/good.bin", good, theta, code, 3, clouds, image);

  metadata::FileSnapshot snap_bad;
  snap_bad.path = "/bad.bin";
  snap_bad.size = 10;
  snap_bad.content_hash = "0000000000000000000000000000000000000000";
  snap_bad.segment_ids = {"not-a-segment"};

  std::vector<cloud::CloudProvider*> table;
  for (const auto& c : clouds) table.push_back(c.get());
  sched::ThroughputMonitor monitor;
  auto executor = std::make_shared<Executor>(4);
  MemoryLocalFs fs;
  DownloadPipeline pipeline(k, code, {0, 1, 2}, sched::DriverConfig{2, 3},
                            monitor, executor, table_lookup(table),
                            PipelineConfig{}, fs, nullptr, nullptr);
  pipeline.add_file(snap_good, image);
  pipeline.add_file(snap_bad, image);
  const auto results = pipeline.finish();

  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status.is_ok()) << results[0].status.message();
  EXPECT_FALSE(results[1].status.is_ok());
  EXPECT_EQ(fs.read("/good.bin").value(), good);
  EXPECT_FALSE(fs.read("/bad.bin").is_ok());
}

// --- fallback: pipeline-disabled restores still stream ----------------------

TEST(RestoreFallbackTest, MonolithicReaderMatchesPipelinedWriter) {
  cloud::MultiCloud clouds = make_clouds(4);
  auto fs_a = std::make_shared<MemoryLocalFs>();
  ClientConfig cfg_a;
  cfg_a.device = "a";
  cfg_a.theta = 64 << 10;
  cfg_a.lock.retry.backoff_base = 0.001;
  cfg_a.lock.retry.backoff_cap = 0.01;
  UniDriveClient a(clouds, fs_a, cfg_a);

  Rng rng(47);
  const Bytes data = rng.bytes(300 << 10);
  ASSERT_TRUE(fs_a->write("/data.bin", ByteSpan(data)).is_ok());
  ASSERT_TRUE(fs_a->write("/tiny", ByteSpan(bytes_from_string("t"))).is_ok());
  const auto report = a.sync();
  ASSERT_TRUE(report.is_ok());
  ASSERT_TRUE(report.value().committed);

  // The reader takes the segment-by-segment FileWriter path, which must
  // produce byte-identical results to the streaming pipeline.
  auto fs_b = std::make_shared<MemoryLocalFs>();
  ClientConfig cfg_b = cfg_a;
  cfg_b.device = "b";
  cfg_b.pipeline.enabled = false;
  UniDriveClient b(clouds, fs_b, cfg_b);
  const auto applied = b.sync();
  ASSERT_TRUE(applied.is_ok());
  EXPECT_TRUE(applied.value().applied_cloud);
  EXPECT_TRUE(applied.value().materialize.is_ok());
  EXPECT_EQ(fs_b->read("/data.bin").value(), data);
  EXPECT_EQ(fs_b->read("/tiny").value(), bytes_from_string("t"));
}

}  // namespace
}  // namespace unidrive::core
