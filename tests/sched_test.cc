#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cloud/memory_cloud.h"
#include "common/rng.h"
#include "sched/download_scheduler.h"
#include "sched/monitor.h"
#include "sched/plan.h"
#include "sched/rebalance.h"
#include "sched/threaded_driver.h"
#include "sched/upload_scheduler.h"

namespace unidrive::sched {
namespace {

CodeParams paper_params() {
  CodeParams p;  // defaults: N=5, k=3, Ks=2, Kr=3
  return p;
}

std::vector<cloud::CloudId> five_clouds() { return {0, 1, 2, 3, 4}; }

// --- CodeParams ----------------------------------------------------------------

TEST(CodeParamsTest, PaperDefaults) {
  const CodeParams p = paper_params();
  ASSERT_TRUE(p.validate().is_ok());
  EXPECT_EQ(p.fair_share(), 1u);       // ceil(3/3)
  EXPECT_EQ(p.max_per_cloud(), 2u);    // ceil(3/1) - 1
  EXPECT_EQ(p.normal_blocks(), 5u);    // 1 * 5
  EXPECT_EQ(p.code_n(), 10u);          // ceil(3/2) * 5
  EXPECT_EQ(p.max_total_blocks(), 10u);
}

TEST(CodeParamsTest, NoSecurityRequirement) {
  CodeParams p;
  p.ks = 1;
  ASSERT_TRUE(p.validate().is_ok());
  EXPECT_EQ(p.max_per_cloud(), p.k);  // a single cloud may hold everything
}

TEST(CodeParamsTest, RejectsBadOrdering) {
  CodeParams p;
  p.ks = 4;
  p.kr = 3;  // Ks > Kr
  EXPECT_FALSE(p.validate().is_ok());
  p.ks = 2;
  p.kr = 6;  // Kr > N
  EXPECT_FALSE(p.validate().is_ok());
}

TEST(CodeParamsTest, RejectsInfeasibleSecurity) {
  CodeParams p;
  p.k = 2;
  p.ks = 3;
  p.kr = 3;
  // max_per_cloud = ceil(2/2)-1 = 0 < fair_share -> infeasible.
  EXPECT_FALSE(p.validate().is_ok());
}

TEST(CodeParamsTest, StorageEfficiencyPaperExample) {
  // Paper Section 1: N=3 vendors, tolerate one down (Kr=2): 3x100 GB raw
  // gives 200 GB of data -> efficiency 2/3; replication gives only 150 GB.
  CodeParams p;
  p.num_clouds = 3;
  p.k = 2;
  p.ks = 1;
  p.kr = 2;
  ASSERT_TRUE(p.validate().is_ok());
  EXPECT_DOUBLE_EQ(p.storage_efficiency(), 2.0 / 3.0);
  // Replication-based: one full copy must survive any single outage ->
  // every byte stored twice -> 1/2 efficiency. UniDrive wins.
  EXPECT_GT(p.storage_efficiency(), 0.5);
}

// --- ThroughputMonitor -----------------------------------------------------------

TEST(MonitorTest, DefaultEstimateForUnknownClouds) {
  ThroughputMonitor m(1000.0);
  EXPECT_DOUBLE_EQ(m.estimate(0, Direction::kUpload), 1000.0);
}

TEST(MonitorTest, RecordsAndRanks) {
  ThroughputMonitor m;
  m.record(0, Direction::kUpload, 1 << 20, 1.0);   // 1 MiB/s
  m.record(1, Direction::kUpload, 8 << 20, 1.0);   // 8 MiB/s
  m.record(2, Direction::kUpload, 4 << 20, 1.0);   // 4 MiB/s
  const auto ranked = m.ranked(Direction::kUpload, {0, 1, 2});
  EXPECT_EQ(ranked, (std::vector<cloud::CloudId>{1, 2, 0}));
}

TEST(MonitorTest, EwmaAdaptsToChange) {
  ThroughputMonitor m;
  for (int i = 0; i < 20; ++i) m.record(0, Direction::kUpload, 1000, 1.0);
  const double before = m.estimate(0, Direction::kUpload);
  for (int i = 0; i < 20; ++i) m.record(0, Direction::kUpload, 100000, 1.0);
  const double after = m.estimate(0, Direction::kUpload);
  EXPECT_GT(after, before * 10);
}

TEST(MonitorTest, DirectionsIndependent) {
  ThroughputMonitor m(500.0);
  m.record(0, Direction::kUpload, 1 << 20, 1.0);
  EXPECT_DOUBLE_EQ(m.estimate(0, Direction::kDownload), 500.0);
}

TEST(MonitorTest, IgnoresDegenerateSamples) {
  ThroughputMonitor m(500.0);
  m.record(0, Direction::kUpload, 0, 1.0);
  m.record(0, Direction::kUpload, 100, 0.0);
  EXPECT_DOUBLE_EQ(m.estimate(0, Direction::kUpload), 500.0);
}

TEST(MonitorTest, UnknownCloudsRankBelowMeasuredOnes) {
  // Critical for hedging: a cloud with NO samples must never outrank a
  // measured one — otherwise stragglers on unmeasured clouds look "fast"
  // and are never hedged (the default estimate is 0 for exactly this).
  ThroughputMonitor m;
  m.record(1, Direction::kDownload, 1000, 1.0);   // slow but measured
  const auto ranked = m.ranked(Direction::kDownload, {0, 1, 2});
  EXPECT_EQ(ranked.front(), 1u);
}

TEST(MonitorTest, ResetForgetsEverything) {
  ThroughputMonitor m(42.0);
  m.record(0, Direction::kUpload, 1e6, 1.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.estimate(0, Direction::kUpload), 42.0);
}

// --- UploadScheduler --------------------------------------------------------------

UploadFileSpec one_file(const std::string& name, std::uint64_t size = 3000) {
  UploadFileSpec f;
  f.path = "/" + name;
  f.segments.push_back({name + "_seg", size});
  return f;
}

// Drain the scheduler sequentially, simulating instant completions.
// Returns per-cloud block counts for the single segment.
std::map<cloud::CloudId, int> drain_round_robin(UploadScheduler& s) {
  std::map<cloud::CloudId, int> counts;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const cloud::CloudId c : five_clouds()) {
      auto task = s.next_task(c);
      if (task.has_value()) {
        s.on_complete(*task, true);
        ++counts[c];
        progress = true;
      }
    }
  }
  return counts;
}

TEST(UploadSchedulerTest, EvenAssignmentWithoutStragglers) {
  UploadScheduler s(paper_params(), five_clouds(), {one_file("a")});
  const auto counts = drain_round_robin(s);
  // All clouds equally fast -> exactly the fair share each, no over-prov.
  for (const cloud::CloudId c : five_clouds()) {
    EXPECT_EQ(counts.at(c), 1) << "cloud " << c;
  }
  EXPECT_TRUE(s.all_available());
  EXPECT_TRUE(s.all_reliable());
  EXPECT_TRUE(s.finished());
}

TEST(UploadSchedulerTest, SecurityCapNeverViolated) {
  // Simulate two dead-slow clouds: they never complete. Fast clouds must
  // over-provision but never exceed max_per_cloud blocks.
  UploadScheduler s(paper_params(), five_clouds(), {one_file("a")});
  std::map<cloud::CloudId, int> counts;
  // Clouds 3 and 4 accept tasks but never finish.
  std::vector<BlockTask> stuck;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const cloud::CloudId c : five_clouds()) {
      auto task = s.next_task(c);
      if (!task.has_value()) continue;
      progress = true;
      if (c >= 3) {
        stuck.push_back(*task);
      } else {
        s.on_complete(*task, true);
        ++counts[c];
      }
    }
  }
  for (const auto& [c, n] : counts) {
    EXPECT_LE(n, static_cast<int>(paper_params().max_per_cloud()));
  }
  // Availability reached via the three fast clouds (3 fast clouds x up to
  // 2 blocks each >= k = 3).
  EXPECT_TRUE(s.all_available());
}

TEST(UploadSchedulerTest, OverProvisioningKicksInForSlowClouds) {
  UploadScheduler s(paper_params(), five_clouds(), {one_file("a")});
  // Cloud 0 is fast and polls repeatedly; others are asleep.
  int cloud0_blocks = 0;
  while (true) {
    auto task = s.next_task(0);
    if (!task.has_value()) break;
    s.on_complete(*task, true);
    ++cloud0_blocks;
  }
  // Fair share is 1, but cloud 0 may take up to the security cap (2).
  EXPECT_EQ(cloud0_blocks, 2);
  EXPECT_FALSE(s.all_available());  // 2 < k = 3 distinct blocks so far
  const auto ov = s.overprovisioned_blocks();
  EXPECT_EQ(ov.size(), 1u);  // the second block is surplus
}

TEST(UploadSchedulerTest, AvailabilityFirstOrdering) {
  // Two files; all clouds work on file 0 until it is available.
  UploadScheduler s(paper_params(), five_clouds(),
                    {one_file("a"), one_file("b")});
  // First three completions should all belong to file 0.
  for (int i = 0; i < 3; ++i) {
    auto task = s.next_task(static_cast<cloud::CloudId>(i));
    ASSERT_TRUE(task.has_value());
    EXPECT_EQ(task->file_index, 0u);
    s.on_complete(*task, true);
  }
  EXPECT_TRUE(s.file_available(0));
  // Next tasks switch to file 1 even though file 0 is not yet reliable.
  auto task = s.next_task(3);
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->file_index, 1u);
  s.on_complete(*task, true);
}

TEST(UploadSchedulerTest, ReliabilityPhaseFillsFairShares) {
  UploadScheduler s(paper_params(), five_clouds(),
                    {one_file("a"), one_file("b")});
  drain_round_robin(s);
  EXPECT_TRUE(s.all_reliable());
  // Each segment must have >= fair_share blocks on every cloud.
  for (const std::string seg : {"a_seg", "b_seg"}) {
    std::map<cloud::CloudId, int> per_cloud;
    for (const auto& loc : s.locations(seg)) ++per_cloud[loc.cloud];
    for (const cloud::CloudId c : five_clouds()) {
      EXPECT_GE(per_cloud[c], 1) << seg << " cloud " << c;
    }
  }
}

TEST(UploadSchedulerTest, FailedUploadRetried) {
  UploadScheduler s(paper_params(), five_clouds(), {one_file("a")});
  auto task = s.next_task(0);
  ASSERT_TRUE(task.has_value());
  s.on_complete(*task, false);  // fail once
  auto retry = s.next_task(0);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->block_index, task->block_index);  // same home block
  s.on_complete(*retry, true);
}

TEST(UploadSchedulerTest, DisabledCloudGetsNoTasks) {
  UploadScheduler s(paper_params(), five_clouds(), {one_file("a")});
  s.set_cloud_enabled(2, false);
  EXPECT_FALSE(s.next_task(2).has_value());
}

TEST(UploadSchedulerTest, DisabledCloudBlocksRehomed) {
  UploadScheduler s(paper_params(), five_clouds(), {one_file("a")});
  s.set_cloud_enabled(2, false);
  const auto counts = drain_round_robin(s);
  EXPECT_EQ(counts.count(2), 0u);
  EXPECT_TRUE(s.all_available());
  // Reliability is evaluated against *enabled* clouds only.
  EXPECT_TRUE(s.all_reliable());
  std::size_t total = 0;
  for (const auto& [c, n] : counts) total += n;
  EXPECT_GE(total, paper_params().k);
}

TEST(UploadSchedulerTest, BlockBytesComputedFromSegmentSize) {
  UploadScheduler s(paper_params(), five_clouds(), {one_file("a", 3001)});
  auto task = s.next_task(0);
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->bytes, 1001u);  // ceil(3001 / 3)
}

TEST(UploadSchedulerTest, LocationsReflectCompletedOnly) {
  UploadScheduler s(paper_params(), five_clouds(), {one_file("a")});
  auto t0 = s.next_task(0);
  ASSERT_TRUE(t0.has_value());
  EXPECT_TRUE(s.locations("a_seg").empty());  // in flight, not done
  s.on_complete(*t0, true);
  EXPECT_EQ(s.locations("a_seg").size(), 1u);
}

TEST(UploadSchedulerTest, MultiSegmentFile) {
  UploadFileSpec f;
  f.path = "/big";
  f.segments.push_back({"seg1", 3000});
  f.segments.push_back({"seg2", 3000});
  UploadScheduler s(paper_params(), five_clouds(), {f});
  drain_round_robin(s);
  EXPECT_TRUE(s.all_reliable());
  EXPECT_EQ(s.locations("seg1").size(), 5u);
  EXPECT_EQ(s.locations("seg2").size(), 5u);
}

// --- DownloadScheduler -------------------------------------------------------------

DownloadFileSpec downloadable_file(const std::string& name,
                                   std::size_t blocks_per_cloud = 1) {
  DownloadFileSpec f;
  f.path = "/" + name;
  DownloadSegmentSpec seg;
  seg.id = name + "_seg";
  seg.size = 3000;
  std::uint32_t index = 0;
  for (cloud::CloudId c = 0; c < 5; ++c) {
    for (std::size_t b = 0; b < blocks_per_cloud; ++b) {
      seg.locations.push_back({index++, c});
    }
  }
  f.segments.push_back(seg);
  return f;
}

TEST(DownloadSchedulerTest, FetchesExactlyKBlocks) {
  DownloadScheduler s(3, {downloadable_file("a")});
  std::size_t fetched = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const cloud::CloudId c : five_clouds()) {
      auto task = s.next_task(c);
      if (task.has_value()) {
        s.on_complete(*task, true);
        ++fetched;
        progress = true;
      }
    }
  }
  EXPECT_EQ(fetched, 3u);
  EXPECT_TRUE(s.all_complete());
  EXPECT_TRUE(s.finished());
}

TEST(DownloadSchedulerTest, NeverOverRequests) {
  DownloadScheduler s(3, {downloadable_file("a")});
  // Grab 3 tasks without completing them; a 4th must not be issued.
  std::vector<BlockTask> tasks;
  for (const cloud::CloudId c : five_clouds()) {
    auto task = s.next_task(c);
    if (task.has_value()) tasks.push_back(*task);
  }
  EXPECT_EQ(tasks.size(), 3u);
}

TEST(DownloadSchedulerTest, FailedFetchRetriedThenExhausted) {
  DownloadScheduler s(3, {downloadable_file("a")});
  // Transient failures: the same (block, cloud) source is retried a few
  // times before the scheduler stops considering it.
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto t = s.next_task(0);
    ASSERT_TRUE(t.has_value()) << "attempt " << attempt;
    s.on_complete(*t, false);
  }
  // Source exhausted now; cloud 0 has no other block (1 per cloud).
  EXPECT_FALSE(s.next_task(0).has_value());
  // Other clouds can still complete the job.
  std::size_t fetched = 0;
  for (const cloud::CloudId c : {1, 2, 3, 4}) {
    auto task = s.next_task(c);
    if (task.has_value()) {
      s.on_complete(*task, true);
      ++fetched;
    }
  }
  EXPECT_GE(fetched, 3u);
  EXPECT_TRUE(s.all_complete());
}

TEST(DownloadSchedulerTest, FastCloudWithExtraBlocksServesMore) {
  // Over-provisioned layout: cloud 0 holds 2 blocks, others 1 each.
  DownloadFileSpec f;
  f.path = "/a";
  DownloadSegmentSpec seg;
  seg.id = "s";
  seg.size = 3000;
  seg.locations = {{0, 0}, {5, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}};
  f.segments.push_back(seg);
  DownloadScheduler s(3, {f});
  // Fast cloud 0 polls first (driver polls fastest first): gets both blocks.
  auto a = s.next_task(0);
  auto b = s.next_task(0);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  s.on_complete(*a, true);
  s.on_complete(*b, true);
  // One more block from any other cloud completes the segment.
  auto c = s.next_task(3);
  ASSERT_TRUE(c.has_value());
  s.on_complete(*c, true);
  EXPECT_TRUE(s.all_complete());
}

TEST(DownloadSchedulerTest, StuckWhenTooFewBlocksReachable) {
  DownloadFileSpec f = downloadable_file("a");
  DownloadScheduler s(3, {f});
  // Disable 3 of 5 clouds: only 2 distinct blocks reachable < k=3.
  s.set_cloud_enabled(0, false);
  s.set_cloud_enabled(1, false);
  s.set_cloud_enabled(2, false);
  for (const cloud::CloudId c : {3, 4}) {
    auto task = s.next_task(c);
    if (task.has_value()) s.on_complete(*task, true);
  }
  EXPECT_FALSE(s.all_complete());
  EXPECT_TRUE(s.finished());  // stuck, nothing in flight
  EXPECT_TRUE(s.file_failed(0));
}

TEST(DownloadSchedulerTest, FilesCompleteInOrder) {
  DownloadScheduler s(3, {downloadable_file("a"), downloadable_file("b")});
  // File 0 saturates first (k = 3 requests); only then do the remaining
  // idle connections spill over to file 1 — availability-first: later files
  // never steal capacity that file 0 could still use.
  std::vector<BlockTask> tasks;
  for (const cloud::CloudId c : five_clouds()) {
    auto task = s.next_task(c);
    if (task.has_value()) tasks.push_back(*task);
  }
  ASSERT_EQ(tasks.size(), 5u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(tasks[i].file_index, 0u);
  for (std::size_t i = 3; i < 5; ++i) EXPECT_EQ(tasks[i].file_index, 1u);
}

TEST(DownloadSchedulerTest, FetchedBlocksReported) {
  DownloadScheduler s(3, {downloadable_file("a")});
  auto t = s.next_task(1);
  ASSERT_TRUE(t.has_value());
  s.on_complete(*t, true);
  const auto blocks = s.fetched_blocks("a_seg");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], t->block_index);
}

// --- ThreadedTransferDriver ---------------------------------------------------------

TEST(ThreadedDriverTest, CompletesUploadJob) {
  ThroughputMonitor monitor;
  DriverConfig cfg;
  cfg.connections_per_cloud = 2;
  ThreadedTransferDriver driver(five_clouds(), cfg, monitor);

  UploadScheduler scheduler(paper_params(), five_clouds(),
                            {one_file("a"), one_file("b"), one_file("c")});
  std::atomic<int> transfers{0};
  driver.run_upload(scheduler, [&](const BlockTask&) {
    ++transfers;
    return Status::ok();
  });
  EXPECT_TRUE(scheduler.finished());
  EXPECT_TRUE(scheduler.all_reliable());
  EXPECT_GE(transfers.load(), 15);  // 3 files x 5 normal blocks
}

TEST(ThreadedDriverTest, ToleratesFailuresAndStillCompletes) {
  ThroughputMonitor monitor;
  ThreadedTransferDriver driver(five_clouds(), DriverConfig{}, monitor);
  UploadScheduler scheduler(paper_params(), five_clouds(), {one_file("a")});
  std::atomic<int> attempt{0};
  Rng rng(3);
  std::mutex rng_mutex;
  driver.run_upload(scheduler, [&](const BlockTask&) -> Status {
    ++attempt;
    std::lock_guard<std::mutex> g(rng_mutex);
    if (rng.bernoulli(0.3)) {
      return make_error(ErrorCode::kUnavailable, "flaky");
    }
    return Status::ok();
  });
  EXPECT_TRUE(scheduler.finished());
  EXPECT_TRUE(scheduler.all_available());
}

TEST(ThreadedDriverTest, RecordsThroughputSamples) {
  ThroughputMonitor monitor(123.0);
  ThreadedTransferDriver driver(five_clouds(), DriverConfig{}, monitor);
  UploadScheduler scheduler(paper_params(), five_clouds(), {one_file("a")});
  driver.run_upload(scheduler, [](const BlockTask&) { return Status::ok(); });
  // At least one cloud's estimate moved off the default.
  bool moved = false;
  for (const cloud::CloudId c : five_clouds()) {
    if (monitor.estimate(c, Direction::kUpload) != 123.0) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(ThreadedDriverTest, DownloadJobCompletes) {
  ThroughputMonitor monitor;
  ThreadedTransferDriver driver(five_clouds(), DriverConfig{}, monitor);
  DownloadScheduler scheduler(3, {downloadable_file("a"),
                                  downloadable_file("b")});
  driver.run_download(scheduler,
                      [](const BlockTask&) { return Status::ok(); });
  EXPECT_TRUE(scheduler.all_complete());
}

// --- Rebalancer -------------------------------------------------------------------

metadata::SyncFolderImage image_with_segment() {
  metadata::SyncFolderImage image;
  metadata::SegmentInfo seg;
  seg.id = "s1";
  seg.size = 3000;
  seg.blocks = {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}};
  image.upsert_segment(seg);
  metadata::FileSnapshot snap;
  snap.path = "/f";
  snap.size = 3000;
  snap.segment_ids = {"s1"};
  image.upsert_file(snap);
  return image;
}

TEST(RebalanceTest, RemoveCloudReHomesItsBlocks) {
  auto image = image_with_segment();
  CodeParams params;
  params.num_clouds = 4;  // after removal
  const auto plan = plan_remove_cloud(image, 4, {0, 1, 2, 3}, params);
  // Everything on cloud 4 must be deleted; a replacement must be planned.
  ASSERT_EQ(plan.deletions.size(), 1u);
  EXPECT_EQ(plan.deletions[0].cloud, 4u);
  ASSERT_GE(plan.moves.size(), 1u);
  EXPECT_NE(plan.moves[0].to_cloud, 4u);

  apply_rebalance(image, plan);
  const auto* seg = image.find_segment("s1");
  std::set<std::uint32_t> distinct;
  for (const auto& b : seg->blocks) {
    EXPECT_NE(b.cloud, 4u);
    distinct.insert(b.block_index);
  }
  EXPECT_GE(distinct.size(), params.k);
}

TEST(RebalanceTest, AddCloudGivesFairShare) {
  auto image = image_with_segment();
  CodeParams params;
  params.num_clouds = 6;  // after addition
  const auto plan = plan_add_cloud(image, 5, {0, 1, 2, 3, 4, 5}, params);
  ASSERT_GE(plan.moves.size(), 1u);
  bool new_cloud_served = false;
  for (const auto& m : plan.moves) {
    if (m.to_cloud == 5) new_cloud_served = true;
  }
  EXPECT_TRUE(new_cloud_served);

  apply_rebalance(image, plan);
  const auto* seg = image.find_segment("s1");
  std::map<cloud::CloudId, int> per_cloud;
  std::set<std::uint32_t> distinct;
  for (const auto& b : seg->blocks) {
    ++per_cloud[b.cloud];
    distinct.insert(b.block_index);
    EXPECT_LE(per_cloud[b.cloud], static_cast<int>(params.max_per_cloud()));
  }
  EXPECT_GE(per_cloud[5], static_cast<int>(params.fair_share()));
  EXPECT_GE(distinct.size(), params.k);
}

TEST(RebalanceTest, EmptyImageEmptyPlan) {
  metadata::SyncFolderImage image;
  CodeParams params;
  EXPECT_TRUE(plan_remove_cloud(image, 0, {1, 2, 3, 4}, params).empty());
  EXPECT_TRUE(plan_add_cloud(image, 5, {0, 1, 2, 3, 4, 5}, params).empty());
}

TEST(RebalanceTest, UnreferencedSegmentsIgnored) {
  metadata::SyncFolderImage image;
  metadata::SegmentInfo seg;
  seg.id = "garbage";
  seg.blocks = {{0, 4}};
  image.upsert_segment(seg);  // refcount 0
  CodeParams params;
  params.num_clouds = 4;
  EXPECT_TRUE(plan_remove_cloud(image, 4, {0, 1, 2, 3}, params).empty());
}

}  // namespace
}  // namespace unidrive::sched
