// Cross-module integration tests: whole-client scenarios under injected
// faults — crashed lock holders, quota exhaustion, tampered blocks,
// concurrent devices, and real-disk folders.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "cloud/quota_cloud.h"
#include "common/rng.h"
#include "core/client.h"
#include "lock/quorum_lock.h"
#include "metadata/types.h"
#include "obs/obs.h"
#include "workload/files.h"

namespace unidrive {
namespace {

using core::ClientConfig;
using core::MemoryLocalFs;
using core::UniDriveClient;

cloud::MultiCloud make_clouds(int n) {
  cloud::MultiCloud clouds;
  for (int i = 0; i < n; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i)));
  }
  return clouds;
}

ClientConfig fast_config(const std::string& device) {
  ClientConfig config;
  config.device = device;
  config.theta = 64 << 10;
  config.lock.retry.backoff_base = 0.001;
  config.lock.retry.backoff_cap = 0.01;
  config.driver.connections_per_cloud = 2;
  return config;
}

// --- observability of a full round -------------------------------------------------

// One sync round over flaky clouds, verified through the public obs API: the
// per-cloud data-upload counters must account for every block the scheduler
// recorded, the quorum-lock acquisition must have left a span, and the
// injected failures must show up in the retry counters.
TEST(IntegrationTest, MetricsAccountForFullSyncRound) {
  auto raw = make_clouds(5);
  cloud::MultiCloud clouds;
  cloud::FaultProfile profile;
  profile.base_failure_rate = 0.25;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    clouds.push_back(std::make_shared<cloud::FaultyCloud>(
        raw[i], profile, /*seed=*/100 + i));
  }

  ClientConfig config = fast_config("devA");
  // Plenty of fast retries so the round completes despite the 25% failure
  // rate, and a breaker loose enough that no cloud trips mid-test.
  config.retry.max_attempts = 10;
  config.retry.backoff_base = 0.0005;
  config.retry.backoff_cap = 0.002;
  config.breaker.consecutive_failures_to_open = 50;
  config.breaker.window_failure_ratio_to_open = 0.95;

  auto fs = std::make_shared<MemoryLocalFs>();
  UniDriveClient client(clouds, fs, config);
  Rng rng(21);
  const Bytes content = rng.bytes(150000);
  ASSERT_TRUE(fs->write("/observed", ByteSpan(content)).is_ok());
  auto report = client.sync();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  ASSERT_TRUE(report.value().committed);

  const obs::MetricsSnapshot& m = report.value().metrics;

  // Every block location recorded in the committed image corresponds to
  // exactly one successful data-area upload on that cloud — the metering
  // decorator sits below the retry layer, so retries never double-count.
  std::map<cloud::CloudId, std::uint64_t> blocks_per_cloud;
  std::uint64_t total_blocks = 0;
  for (const auto& [id, seg] : client.image().segments()) {
    for (const auto& loc : seg.blocks) {
      ++blocks_per_cloud[loc.cloud];
      ++total_blocks;
    }
  }
  ASSERT_GT(total_blocks, 0u);
  std::uint64_t uploaded_ok = 0;
  for (std::size_t i = 0; i < clouds.size(); ++i) {
    const std::string name = "cloud.cloud" + std::to_string(i);
    const std::uint64_t ok = m.counter_value(name + ".upload.data.ok");
    EXPECT_EQ(ok, blocks_per_cloud[static_cast<cloud::CloudId>(i)])
        << "cloud " << i;
    uploaded_ok += ok;
  }
  EXPECT_EQ(uploaded_ok, total_blocks);
  EXPECT_EQ(m.counter_value("sched.blocks.placed"), total_blocks);

  // The injected 25% failure rate must be visible as retries/attempt
  // inflation somewhere across the five clouds.
  std::uint64_t retries = 0;
  std::uint64_t attempts = 0;
  for (std::size_t i = 0; i < clouds.size(); ++i) {
    const std::string prefix = "retry.cloud" + std::to_string(i) + ".";
    retries += m.counter_value(prefix + "retries");
    attempts += m.counter_value(prefix + "attempts");
  }
  EXPECT_GT(retries, 0u);
  EXPECT_GT(attempts, retries);

  // The commit went through the quorum lock, and the round left a root span.
  const obs::ObsPtr& sink = client.observability();
  ASSERT_NE(sink, nullptr);
  EXPECT_TRUE(sink->tracer.find("lock.acquire").has_value());
  EXPECT_TRUE(sink->tracer.find("sync.round").has_value());
  EXPECT_TRUE(sink->tracer.find("meta.publish").has_value());
  EXPECT_GE(m.counter_value("lock.acquired"), 1u);
  EXPECT_GE(m.counter_value("sync.rounds"), 1u);

  // The snapshot serializes: the bench/CLI metrics.json path.
  const std::string json = obs::DumpJson(*sink);
  EXPECT_NE(json.find("sched.blocks.placed"), std::string::npos);
}

// --- crashed lock holder ---------------------------------------------------------

TEST(IntegrationTest, SyncRecoversFromCrashedLockHolder) {
  auto clouds = make_clouds(5);

  // A "crashed" device left its lock files behind and will never refresh.
  ManualClock dead_clock;
  lock::LockConfig dead_config;
  lock::QuorumLock dead_lock(clouds, "crashed-device", dead_config,
                             dead_clock, Rng(1),
                             [&dead_clock](Duration d) { dead_clock.advance(d); });
  ASSERT_TRUE(dead_lock.acquire().is_ok());
  // (no release, no refresh — the device is gone)

  // A healthy client with an aggressive staleness threshold must sync by
  // breaking the stale lock. Each backoff advances its clock past dT.
  ClientConfig config = fast_config("survivor");
  config.lock.stale_after = 0.5;
  config.lock.retry.backoff_base = 0.4;
  config.lock.retry.backoff_cap = 0.7;
  config.lock.retry.max_attempts = 30;
  auto fs = std::make_shared<MemoryLocalFs>();
  auto clock = std::make_shared<ManualClock>();
  // Client sleeps are real; use a thread-advancing manual clock via lock
  // config's sleep hook — the client uses real_sleep, so instead rely on
  // RealClock: stale_after 0.5 s with real backoffs ~0.4-0.7 s works.
  UniDriveClient client(clouds, fs, config);
  ASSERT_TRUE(fs->write("/f", ByteSpan(bytes_from_string("data"))).is_ok());
  auto report = client.sync();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().committed);
}

// --- quota exhaustion --------------------------------------------------------------

TEST(IntegrationTest, SyncSurvivesOneCloudOutOfQuota) {
  auto raw = make_clouds(5);
  cloud::MultiCloud clouds;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i == 2) {
      // Cloud 2 can hold metadata-sized objects but no data blocks.
      clouds.push_back(std::make_shared<cloud::QuotaCloud>(raw[i], 4 << 10));
    } else {
      clouds.push_back(raw[i]);
    }
  }
  auto fs = std::make_shared<MemoryLocalFs>();
  UniDriveClient client(clouds, fs, fast_config("devA"));
  Rng rng(7);
  const Bytes content = rng.bytes(120000);
  ASSERT_TRUE(fs->write("/big", ByteSpan(content)).is_ok());
  auto report = client.sync();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();

  // A fresh device recovers the file without cloud 2's help.
  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient reader(clouds, fs_b, fast_config("devB"));
  ASSERT_TRUE(reader.sync().is_ok());
  EXPECT_EQ(fs_b->read("/big").value(), content);
}

// --- tampered blocks ----------------------------------------------------------------

TEST(IntegrationTest, TamperedBlockDetectedAndRoutedAround) {
  auto clouds = make_clouds(5);
  auto fs = std::make_shared<MemoryLocalFs>();
  UniDriveClient writer(clouds, fs, fast_config("devA"));
  Rng rng(8);
  const Bytes content = rng.bytes(90000);
  ASSERT_TRUE(fs->write("/precious", ByteSpan(content)).is_ok());
  ASSERT_TRUE(writer.sync().is_ok());

  // Corrupt EVERY stored block on cloud 0 (silent bit rot / malicious CCS).
  auto* evil = static_cast<cloud::MemoryCloud*>(clouds[0].get());
  auto listing = evil->list("/data");
  ASSERT_TRUE(listing.is_ok());
  for (const auto& f : listing.value()) {
    auto data = evil->download("/data/" + f.name);
    ASSERT_TRUE(data.is_ok());
    Bytes garbled = data.value();
    for (std::size_t i = 0; i < garbled.size(); i += 97) garbled[i] ^= 0xA5;
    ASSERT_TRUE(evil->upload("/data/" + f.name, ByteSpan(garbled)).is_ok());
  }

  // A fresh reader must still produce bit-exact content (the integrity
  // check rejects combinations containing the tampered shard and the
  // client decodes from other blocks).
  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient reader(clouds, fs_b, fast_config("devB"));
  auto report = reader.sync();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(fs_b->read("/precious").value(), content);
}

TEST(IntegrationTest, AllBlocksTamperedFailsLoudly) {
  auto clouds = make_clouds(5);
  auto fs = std::make_shared<MemoryLocalFs>();
  UniDriveClient writer(clouds, fs, fast_config("devA"));
  Rng rng(9);
  ASSERT_TRUE(fs->write("/f", ByteSpan(rng.bytes(50000))).is_ok());
  ASSERT_TRUE(writer.sync().is_ok());

  for (const auto& c : clouds) {
    auto* memory = static_cast<cloud::MemoryCloud*>(c.get());
    auto listing = memory->list("/data");
    ASSERT_TRUE(listing.is_ok());
    for (const auto& f : listing.value()) {
      auto data = memory->download("/data/" + f.name);
      Bytes garbled = data.value();
      garbled[0] ^= 0xFF;
      ASSERT_TRUE(memory->upload("/data/" + f.name, ByteSpan(garbled)).is_ok());
    }
  }

  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient reader(clouds, fs_b, fast_config("devB"));
  const auto report = reader.sync();
  // The sync must fail with a corruption error — never write garbage.
  ASSERT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kCorrupt);
  EXPECT_EQ(fs_b->read("/f").code(), ErrorCode::kNotFound);
}

// --- concurrent devices ---------------------------------------------------------------

TEST(IntegrationTest, ConcurrentClientsOnDistinctFilesBothCommit) {
  auto clouds = make_clouds(5);
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient a(clouds, fs_a, fast_config("devA"));
  UniDriveClient b(clouds, fs_b, fast_config("devB"));

  Rng rng(10);
  ASSERT_TRUE(fs_a->write("/from_a", ByteSpan(rng.bytes(30000))).is_ok());
  ASSERT_TRUE(fs_b->write("/from_b", ByteSpan(rng.bytes(30000))).is_ok());

  std::atomic<bool> ok_a{false}, ok_b{false};
  std::thread ta([&] { ok_a = a.sync().is_ok(); });
  std::thread tb([&] { ok_b = b.sync().is_ok(); });
  ta.join();
  tb.join();
  EXPECT_TRUE(ok_a.load());
  EXPECT_TRUE(ok_b.load());

  // Another round each; both folders converge to both files.
  ASSERT_TRUE(a.sync().is_ok());
  ASSERT_TRUE(b.sync().is_ok());
  EXPECT_TRUE(fs_a->read("/from_b").is_ok());
  EXPECT_TRUE(fs_b->read("/from_a").is_ok());
}

TEST(IntegrationTest, ManyRoundsRandomOpsConverge) {
  // Randomized soak: two devices make random adds/edits/deletes and sync in
  // random order; after a final settle round, folders and metadata agree.
  auto clouds = make_clouds(5);
  auto fs_a = std::make_shared<MemoryLocalFs>();
  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient a(clouds, fs_a, fast_config("devA"));
  UniDriveClient b(clouds, fs_b, fast_config("devB"));
  Rng rng(11);

  for (int round = 0; round < 6; ++round) {
    for (int op = 0; op < 3; ++op) {
      auto& fs = rng.bernoulli(0.5) ? fs_a : fs_b;
      const std::string path = "/f" + std::to_string(rng.next_below(6));
      if (rng.bernoulli(0.25) && fs->read(path).is_ok()) {
        ASSERT_TRUE(fs->remove(path).is_ok());
      } else {
        ASSERT_TRUE(fs->write(path, ByteSpan(rng.bytes(
                                  1000 + rng.next_below(40000)))).is_ok());
      }
    }
    if (rng.bernoulli(0.5)) {
      ASSERT_TRUE(a.sync().is_ok());
      ASSERT_TRUE(b.sync().is_ok());
    } else {
      ASSERT_TRUE(b.sync().is_ok());
      ASSERT_TRUE(a.sync().is_ok());
    }
  }
  // Settle: a full extra round with no new edits.
  ASSERT_TRUE(a.sync().is_ok());
  ASSERT_TRUE(b.sync().is_ok());
  ASSERT_TRUE(a.sync().is_ok());

  const auto files_a = fs_a->list_files();
  const auto files_b = fs_b->list_files();
  EXPECT_EQ(files_a, files_b);
  for (const std::string& path : files_a) {
    EXPECT_EQ(fs_a->read(path).value(), fs_b->read(path).value()) << path;
  }
  // Metadata invariant: refcount rebuild is a no-op on the committed image.
  metadata::SyncFolderImage copy = a.image();
  copy.rebuild_refcounts();
  EXPECT_TRUE(copy == a.image());
}

// --- real disk ------------------------------------------------------------------------

TEST(IntegrationTest, DiskBackedClientsRoundTrip) {
  const auto root =
      std::filesystem::temp_directory_path() / "unidrive_integration";
  std::filesystem::remove_all(root);

  auto clouds = make_clouds(5);
  auto fs_a = std::make_shared<core::DiskLocalFs>((root / "a").string());
  auto fs_b = std::make_shared<core::DiskLocalFs>((root / "b").string());
  UniDriveClient a(clouds, fs_a, fast_config("devA"));
  UniDriveClient b(clouds, fs_b, fast_config("devB"));

  Rng rng(12);
  const Bytes content = rng.bytes(150000);
  ASSERT_TRUE(fs_a->write("/nested/dir/file.bin", ByteSpan(content)).is_ok());
  ASSERT_TRUE(a.sync().is_ok());
  ASSERT_TRUE(b.sync().is_ok());
  EXPECT_EQ(fs_b->read("/nested/dir/file.bin").value(), content);

  ASSERT_TRUE(fs_b->remove("/nested/dir/file.bin").is_ok());
  ASSERT_TRUE(b.sync().is_ok());
  ASSERT_TRUE(a.sync().is_ok());
  EXPECT_EQ(fs_a->read("/nested/dir/file.bin").code(), ErrorCode::kNotFound);

  std::filesystem::remove_all(root);
}

// --- client restart (state persistence) -----------------------------------------------

TEST(IntegrationTest, RestartedClientDoesNotConflictWithItself) {
  const auto state_dir =
      std::filesystem::temp_directory_path() / "unidrive_state_test";
  std::filesystem::remove_all(state_dir);
  std::filesystem::create_directories(state_dir);

  auto clouds = make_clouds(5);
  auto fs = std::make_shared<MemoryLocalFs>();
  ClientConfig config = fast_config("devA");
  config.state_file = (state_dir / "client.state").string();

  {
    UniDriveClient client(clouds, fs, config);
    ASSERT_TRUE(fs->write("/f", ByteSpan(bytes_from_string("v1"))).is_ok());
    ASSERT_TRUE(client.sync().is_ok());
  }  // process "exits"

  // New process: edits the file and syncs. Without persisted state this
  // would manufacture a self-conflict (local edit vs "unknown" cloud file).
  {
    UniDriveClient client(clouds, fs, config);
    ASSERT_TRUE(fs->write("/f", ByteSpan(bytes_from_string("v2"))).is_ok());
    auto report = client.sync();
    ASSERT_TRUE(report.is_ok());
    EXPECT_TRUE(report.value().conflicts.empty());
    EXPECT_TRUE(report.value().committed);
    // The superseded v1 is in the history, like in a long-lived client.
    EXPECT_EQ(client.file_history("/f").size(), 1u);
  }

  // Corrupt state files are discarded, not trusted.
  {
    std::ofstream out(config.state_file, std::ios::trunc);
    out << "garbage";
  }
  {
    UniDriveClient client(clouds, fs, config);
    auto report = client.sync();  // falls back to a cloud fetch; may
                                  // produce a (harmless) self-merge
    EXPECT_TRUE(report.is_ok());
  }
  std::filesystem::remove_all(state_dir);
}

// --- add/remove cloud under data -----------------------------------------------------

TEST(IntegrationTest, MembershipChangeWithoutLocalCopyRepairsFromClouds) {
  // An administering device with an EMPTY folder removes a cloud: moved
  // blocks must be reconstructed by fetching + decoding from the surviving
  // clouds (the repair path), not from local files it does not have.
  auto clouds = make_clouds(5);
  {
    auto fs = std::make_shared<MemoryLocalFs>();
    UniDriveClient writer(clouds, fs, fast_config("writer"));
    Rng rng(21);
    ASSERT_TRUE(fs->write("/payload", ByteSpan(rng.bytes(120000))).is_ok());
    ASSERT_TRUE(writer.sync().is_ok());
  }

  auto admin_fs = std::make_shared<MemoryLocalFs>();  // stays empty
  UniDriveClient admin(clouds, admin_fs, fast_config("admin"));
  // Do NOT sync (no local copy); administer membership directly.
  ASSERT_TRUE(admin.remove_cloud(4).is_ok());

  // Data is still recoverable from the 4 remaining clouds — even with one
  // of them additionally down (Kr = 3).
  cloud::MultiCloud degraded;
  for (const auto& c : admin.clouds()) {
    auto faulty =
        std::make_shared<cloud::FaultyCloud>(c, cloud::FaultProfile{}, 1);
    if (c->id() == 0) faulty->set_outage(true);
    degraded.push_back(faulty);
  }
  auto reader_fs = std::make_shared<MemoryLocalFs>();
  UniDriveClient reader(degraded, reader_fs, fast_config("reader"));
  ASSERT_TRUE(reader.sync().is_ok());
  EXPECT_TRUE(reader_fs->read("/payload").is_ok());
}

TEST(IntegrationTest, MembershipChurnKeepsDataRecoverable) {
  auto clouds = make_clouds(5);
  auto fs = std::make_shared<MemoryLocalFs>();
  UniDriveClient client(clouds, fs, fast_config("devA"));
  Rng rng(13);
  const Bytes content = rng.bytes(200000);
  ASSERT_TRUE(fs->write("/data", ByteSpan(content)).is_ok());
  ASSERT_TRUE(client.sync().is_ok());

  // Remove cloud 1, add cloud 5, remove cloud 3 — data must survive all.
  ASSERT_TRUE(client.remove_cloud(1).is_ok());
  ASSERT_TRUE(client
                  .add_cloud(std::make_shared<cloud::MemoryCloud>(5, "fresh"))
                  .is_ok());
  ASSERT_TRUE(client.remove_cloud(3).is_ok());

  auto fs_b = std::make_shared<MemoryLocalFs>();
  UniDriveClient reader(client.clouds(), fs_b, fast_config("devB"));
  ASSERT_TRUE(reader.sync().is_ok());
  EXPECT_EQ(fs_b->read("/data").value(), content);

  // Security invariant still holds on the new membership.
  const auto params = reader.code_params();
  for (const auto& [id, seg] : reader.image().segments()) {
    std::map<cloud::CloudId, std::size_t> per_cloud;
    for (const auto& b : seg.blocks) ++per_cloud[b.cloud];
    for (const auto& [c, n] : per_cloud) {
      EXPECT_LE(n, params.max_per_cloud()) << "segment " << id;
    }
  }
}

}  // namespace
}  // namespace unidrive
