#include <gtest/gtest.h>

#include <memory>

#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "common/rng.h"
#include "metadata/codec.h"
#include "metadata/delta.h"
#include "metadata/diff.h"
#include "metadata/image.h"
#include "metadata/store.h"
#include "metadata/version_file.h"

namespace unidrive::metadata {
namespace {

FileSnapshot make_snapshot(const std::string& path, const std::string& hash,
                           std::vector<std::string> segments = {}) {
  FileSnapshot s;
  s.path = path;
  s.size = 100;
  s.content_hash = hash;
  s.segment_ids = std::move(segments);
  s.origin_device = "dev";
  return s;
}

SegmentInfo make_segment(const std::string& id, std::uint64_t size = 100) {
  SegmentInfo s;
  s.id = id;
  s.size = size;
  s.blocks = {{0, 1}, {1, 2}, {2, 3}};
  return s;
}

// --- VersionStamp -------------------------------------------------------------

TEST(VersionStampTest, Ordering) {
  const VersionStamp a{"dev1", 1, 0};
  const VersionStamp b{"dev1", 2, 0};
  const VersionStamp c{"dev2", 2, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);  // device name tiebreak
  EXPECT_FALSE(c < b);
  EXPECT_TRUE(b == VersionStamp({"dev1", 2, 99}));  // timestamp ignored
}

TEST(VersionFileTest, RoundTrip) {
  const VersionStamp v{"laptop", 42, 123.5};
  const Bytes data = serialize_version_file(v);
  EXPECT_LT(data.size(), 64u);  // "small version file"
  auto parsed = parse_version_file(ByteSpan(data));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value() == v);
  EXPECT_DOUBLE_EQ(parsed.value().timestamp, 123.5);
}

TEST(VersionFileTest, RejectsGarbage) {
  const Bytes junk = bytes_from_string("not a version file");
  EXPECT_EQ(parse_version_file(ByteSpan(junk)).code(), ErrorCode::kCorrupt);
}

// --- SyncFolderImage ------------------------------------------------------------

TEST(ImageTest, UpsertAndFind) {
  SyncFolderImage image;
  image.upsert_file(make_snapshot("/a.txt", "h1"));
  ASSERT_NE(image.find_file("/a.txt"), nullptr);
  EXPECT_EQ(image.find_file("/a.txt")->content_hash, "h1");
  EXPECT_EQ(image.find_file("/missing"), nullptr);
}

TEST(ImageTest, RefcountsTrackFileReferences) {
  SyncFolderImage image;
  image.upsert_segment(make_segment("s1"));
  image.upsert_file(make_snapshot("/a", "h1", {"s1"}));
  image.upsert_file(make_snapshot("/b", "h2", {"s1"}));  // dedup: shared seg
  EXPECT_EQ(image.find_segment("s1")->refcount, 2u);
  image.delete_file("/a");
  EXPECT_EQ(image.find_segment("s1")->refcount, 1u);
  image.delete_file("/b");
  EXPECT_EQ(image.find_segment("s1")->refcount, 0u);
  EXPECT_EQ(image.garbage_segments(), std::vector<std::string>{"s1"});
}

TEST(ImageTest, EditRetiresOldSnapshotIntoHistory) {
  SyncFolderImage image;
  image.upsert_segment(make_segment("old"));
  image.upsert_segment(make_segment("new"));
  image.upsert_file(make_snapshot("/f", "h1", {"old"}));
  image.upsert_file(make_snapshot("/f", "h2", {"new"}));  // edit
  // The superseded snapshot lives in the history and keeps its segments
  // referenced (that is what makes old versions restorable).
  EXPECT_EQ(image.find_segment("old")->refcount, 1u);
  EXPECT_EQ(image.find_segment("new")->refcount, 1u);
  const auto hist = image.history("/f");
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[0].content_hash, "h1");
}

TEST(ImageTest, HistoryDepthBounded) {
  SyncFolderImage image;
  for (int i = 0; i <= 10; ++i) {
    const std::string seg = "s" + std::to_string(i);
    image.upsert_segment(make_segment(seg));
    image.upsert_file(make_snapshot("/f", "v" + std::to_string(i), {seg}));
  }
  const auto hist = image.history("/f");
  EXPECT_EQ(hist.size(), SyncFolderImage::kHistoryDepth);
  EXPECT_EQ(hist[0].content_hash, "v9");  // most recent first
  // Segments referenced only by evicted history entries drop to zero.
  EXPECT_EQ(image.find_segment("s0")->refcount, 0u);
  EXPECT_EQ(image.find_segment("s9")->refcount, 1u);   // in history
  EXPECT_EQ(image.find_segment("s10")->refcount, 1u);  // current
}

TEST(ImageTest, DeleteReleasesHistoryToo) {
  SyncFolderImage image;
  image.upsert_segment(make_segment("a"));
  image.upsert_segment(make_segment("b"));
  image.upsert_file(make_snapshot("/f", "h1", {"a"}));
  image.upsert_file(make_snapshot("/f", "h2", {"b"}));
  image.delete_file("/f");
  EXPECT_EQ(image.find_segment("a")->refcount, 0u);
  EXPECT_EQ(image.find_segment("b")->refcount, 0u);
  EXPECT_TRUE(image.history("/f").empty());
}

TEST(ImageTest, IdenticalUpsertIsNoop) {
  SyncFolderImage image;
  image.upsert_segment(make_segment("s"));
  const auto snap = make_snapshot("/f", "h", {"s"});
  image.upsert_file(snap);
  image.upsert_file(snap);  // replay (e.g. delta re-application)
  EXPECT_EQ(image.find_segment("s")->refcount, 1u);
  EXPECT_TRUE(image.history("/f").empty());
}

TEST(ImageTest, UpsertSegmentPreservesRefcount) {
  SyncFolderImage image;
  image.upsert_file(make_snapshot("/f", "h", {"s1"}));
  SegmentInfo updated = make_segment("s1");
  updated.blocks.push_back({5, 4});
  image.upsert_segment(updated);
  EXPECT_EQ(image.find_segment("s1")->refcount, 1u);
  EXPECT_EQ(image.find_segment("s1")->blocks.size(), 4u);
}

TEST(ImageTest, RebuildRefcountsIsIdempotentOnConsistentImage) {
  SyncFolderImage image;
  image.upsert_segment(make_segment("s1"));
  image.upsert_segment(make_segment("s2"));
  image.upsert_file(make_snapshot("/a", "h1", {"s1", "s2"}));
  image.upsert_file(make_snapshot("/b", "h2", {"s2"}));
  SyncFolderImage copy = image;
  copy.rebuild_refcounts();
  EXPECT_TRUE(copy == image);
}

TEST(ImageTest, SerializationRoundTrip) {
  SyncFolderImage image;
  image.set_version({"dev", 7, 100.0});
  image.add_dir("/docs");
  image.upsert_segment(make_segment("s1", 12345));
  image.upsert_file(make_snapshot("/docs/a.txt", "hash_a", {"s1"}));
  image.upsert_file(make_snapshot("/docs/a.txt", "hash_a2", {"s1"}));  // history
  image.upsert_file(make_snapshot("/b.bin", "hash_b"));

  const Bytes data = image.serialize();
  auto restored = SyncFolderImage::deserialize(ByteSpan(data));
  ASSERT_TRUE(restored.is_ok());
  EXPECT_TRUE(restored.value() == image);
}

TEST(ImageTest, DeserializeRejectsCorruption) {
  SyncFolderImage image;
  image.upsert_file(make_snapshot("/a", "h"));
  Bytes data = image.serialize();
  data[0] ^= 0xFF;  // break magic
  EXPECT_EQ(SyncFolderImage::deserialize(ByteSpan(data)).code(),
            ErrorCode::kCorrupt);
  Bytes truncated(image.serialize());
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(SyncFolderImage::deserialize(ByteSpan(truncated)).is_ok());
}

// --- ChangedFileList -------------------------------------------------------------

TEST(ChangeListTest, AggregationKeepsLastFileOp) {
  ChangedFileList list;
  list.record(Change::upsert_file(make_snapshot("/f", "v1")));
  list.record(Change::upsert_file(make_snapshot("/f", "v2")));
  list.record(Change::upsert_file(make_snapshot("/f", "v3")));
  const auto agg = list.aggregated();
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0].snapshot->content_hash, "v3");
}

TEST(ChangeListTest, AggregationAddThenDeleteKeepsDelete) {
  ChangedFileList list;
  list.record(Change::upsert_file(make_snapshot("/f", "v1")));
  list.record(Change::delete_file("/f"));
  const auto agg = list.aggregated();
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0].kind, ChangeKind::kDeleteFile);
}

TEST(ChangeListTest, SegmentsOrderedBeforeFiles) {
  ChangedFileList list;
  list.record(Change::upsert_file(make_snapshot("/f", "v1", {"s1"})));
  list.record(Change::upsert_segment(make_segment("s1")));
  const auto agg = list.aggregated();
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg[0].kind, ChangeKind::kUpsertSegment);
  EXPECT_EQ(agg[1].kind, ChangeKind::kUpsertFile);
}

TEST(ChangeTest, SerializationRoundTripAllKinds) {
  std::vector<Change> changes = {
      Change::upsert_file(make_snapshot("/f", "h", {"s1", "s2"})),
      Change::delete_file("/g"),
      Change::add_dir("/d"),
      Change::delete_dir("/e"),
      Change::upsert_segment(make_segment("s9", 777)),
      Change::drop_segment("s0"),
  };
  for (const Change& c : changes) {
    BinaryWriter w;
    serialize_change(w, c);
    BinaryReader r{ByteSpan(w.data())};
    auto back = deserialize_change(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().kind, c.kind);
    EXPECT_EQ(back.value().path, c.path);
    if (c.snapshot.has_value()) {
      EXPECT_TRUE(*back.value().snapshot == *c.snapshot);
    }
    if (c.segment.has_value()) {
      EXPECT_TRUE(*back.value().segment == *c.segment);
    }
  }
}

// --- diff / merge ---------------------------------------------------------------

TEST(DiffTest, DetectsAddModifyDelete) {
  SyncFolderImage from, to;
  from.upsert_file(make_snapshot("/keep", "same"));
  from.upsert_file(make_snapshot("/mod", "v1"));
  from.upsert_file(make_snapshot("/del", "gone"));
  to.upsert_file(make_snapshot("/keep", "same"));
  to.upsert_file(make_snapshot("/mod", "v2"));
  to.upsert_file(make_snapshot("/new", "fresh"));

  const ImageDiff d = diff_images(from, to);
  ASSERT_EQ(d.files.size(), 3u);
  EXPECT_EQ(d.files.at("/mod").kind, EntryChangeKind::kModified);
  EXPECT_EQ(d.files.at("/new").kind, EntryChangeKind::kAdded);
  EXPECT_EQ(d.files.at("/del").kind, EntryChangeKind::kDeleted);
}

TEST(DiffTest, EmptyDiffForIdenticalImages) {
  SyncFolderImage a;
  a.upsert_file(make_snapshot("/f", "h"));
  EXPECT_TRUE(diff_images(a, a).empty());
}

TEST(DiffTest, DirectoriesDiffed) {
  SyncFolderImage from, to;
  from.add_dir("/old");
  to.add_dir("/new");
  const ImageDiff d = diff_images(from, to);
  EXPECT_EQ(d.added_dirs, std::vector<std::string>{"/new"});
  EXPECT_EQ(d.removed_dirs, std::vector<std::string>{"/old"});
}

TEST(MergeTest, DisjointUpdatesMergeCleanly) {
  SyncFolderImage base;
  base.upsert_file(make_snapshot("/shared", "v0"));
  SyncFolderImage local = base;
  local.upsert_file(make_snapshot("/local_new", "l1"));
  SyncFolderImage cloud = base;
  cloud.upsert_file(make_snapshot("/cloud_new", "c1"));

  const MergeResult m = merge_images(base, local, cloud, "devA");
  EXPECT_TRUE(m.conflicts.empty());
  EXPECT_NE(m.merged.find_file("/local_new"), nullptr);
  EXPECT_NE(m.merged.find_file("/cloud_new"), nullptr);
  EXPECT_NE(m.merged.find_file("/shared"), nullptr);
}

TEST(MergeTest, CoincidentalIdenticalUpdatesNoConflict) {
  SyncFolderImage base;
  SyncFolderImage local = base, cloud = base;
  local.upsert_file(make_snapshot("/f", "same"));
  cloud.upsert_file(make_snapshot("/f", "same"));
  const MergeResult m = merge_images(base, local, cloud, "devA");
  EXPECT_TRUE(m.conflicts.empty());
  EXPECT_EQ(m.merged.find_file("/f")->content_hash, "same");
}

TEST(MergeTest, ConflictingEditsKeepBoth) {
  SyncFolderImage base;
  base.upsert_file(make_snapshot("/f", "v0"));
  SyncFolderImage local = base, cloud = base;
  local.upsert_file(make_snapshot("/f", "local_v"));
  cloud.upsert_file(make_snapshot("/f", "cloud_v"));

  const MergeResult m = merge_images(base, local, cloud, "devA");
  ASSERT_EQ(m.conflicts.size(), 1u);
  EXPECT_EQ(m.conflicts[0].path, "/f");
  // Cloud wins the original path; local kept as conflict copy.
  EXPECT_EQ(m.merged.find_file("/f")->content_hash, "cloud_v");
  const FileSnapshot* copy = m.merged.find_file(m.conflicts[0].conflict_copy);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->content_hash, "local_v");
}

TEST(MergeTest, LocalDeleteVsCloudEditIsConflict) {
  SyncFolderImage base;
  base.upsert_file(make_snapshot("/f", "v0"));
  SyncFolderImage local = base, cloud = base;
  local.delete_file("/f");
  cloud.upsert_file(make_snapshot("/f", "v1"));
  const MergeResult m = merge_images(base, local, cloud, "devA");
  ASSERT_EQ(m.conflicts.size(), 1u);
  // The deletion loses; the cloud edit survives; no conflict copy needed.
  EXPECT_NE(m.merged.find_file("/f"), nullptr);
  EXPECT_TRUE(m.conflicts[0].conflict_copy.empty());
}

TEST(MergeTest, BothDeleteNoConflict) {
  SyncFolderImage base;
  base.upsert_file(make_snapshot("/f", "v0"));
  SyncFolderImage local = base, cloud = base;
  local.delete_file("/f");
  cloud.delete_file("/f");
  const MergeResult m = merge_images(base, local, cloud, "devA");
  EXPECT_TRUE(m.conflicts.empty());
  EXPECT_EQ(m.merged.find_file("/f"), nullptr);
}

TEST(MergeTest, SegmentPoolsUnioned) {
  SyncFolderImage base;
  SyncFolderImage local = base, cloud = base;
  local.upsert_segment(make_segment("s_local"));
  local.upsert_file(make_snapshot("/l", "h1", {"s_local"}));
  cloud.upsert_segment(make_segment("s_cloud"));
  cloud.upsert_file(make_snapshot("/c", "h2", {"s_cloud"}));
  const MergeResult m = merge_images(base, local, cloud, "devA");
  EXPECT_NE(m.merged.find_segment("s_local"), nullptr);
  EXPECT_NE(m.merged.find_segment("s_cloud"), nullptr);
  EXPECT_EQ(m.merged.find_segment("s_local")->refcount, 1u);
}

TEST(MergeTest, BlockLocationsMergedPerSegment) {
  SyncFolderImage base;
  base.upsert_segment(make_segment("s"));
  SyncFolderImage local = base, cloud = base;
  SegmentInfo* ls = local.find_segment_mutable("s");
  ls->blocks.push_back({7, 4});
  const MergeResult m = merge_images(base, local, cloud, "devA");
  const SegmentInfo* merged = m.merged.find_segment("s");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->blocks.size(), 4u);  // 3 originals + the new location
}

// --- delta log -------------------------------------------------------------------

TEST(DeltaLogTest, SerializeRoundTrip) {
  DeltaLog log;
  CommitRecord r1;
  r1.version = {"dev", 1, 10.0};
  r1.changes.push_back(Change::upsert_file(make_snapshot("/a", "h1")));
  log.append(r1);
  CommitRecord r2;
  r2.version = {"dev", 2, 20.0};
  r2.changes.push_back(Change::delete_file("/a"));
  r2.changes.push_back(Change::add_dir("/d"));
  log.append(r2);

  auto restored = DeltaLog::deserialize(ByteSpan(log.serialize()));
  ASSERT_TRUE(restored.is_ok());
  ASSERT_EQ(restored.value().size(), 2u);
  EXPECT_TRUE(restored.value().records()[1].version == r2.version);
  EXPECT_EQ(restored.value().records()[1].changes.size(), 2u);
}

TEST(DeltaLogTest, TornTailRecoversPrefix) {
  DeltaLog log;
  for (int i = 1; i <= 3; ++i) {
    CommitRecord r;
    r.version = {"dev", static_cast<std::uint64_t>(i), 0.0};
    r.changes.push_back(
        Change::upsert_file(make_snapshot("/f" + std::to_string(i), "h")));
    log.append(r);
  }
  Bytes data = log.serialize();
  data.resize(data.size() - 5);  // tear the last record
  auto restored = DeltaLog::deserialize(ByteSpan(data));
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value().size(), 2u);
}

TEST(DeltaLogTest, CorruptMiddleRecordStopsReplay) {
  DeltaLog log;
  for (int i = 1; i <= 3; ++i) {
    CommitRecord r;
    r.version = {"dev", static_cast<std::uint64_t>(i), 0.0};
    r.changes.push_back(Change::add_dir("/d" + std::to_string(i)));
    log.append(r);
  }
  Bytes data = log.serialize();
  data[data.size() / 2] ^= 0xFF;  // flip a bit mid-log
  auto restored = DeltaLog::deserialize(ByteSpan(data));
  ASSERT_TRUE(restored.is_ok());
  EXPECT_LT(restored.value().size(), 3u);
}

TEST(DeltaLogTest, ApplyAdvancesVersionAndSkipsApplied) {
  SyncFolderImage image;
  image.set_version({"dev", 1, 0.0});

  DeltaLog log;
  CommitRecord r1;  // already applied (version 1)
  r1.version = {"dev", 1, 0.0};
  r1.changes.push_back(Change::upsert_file(make_snapshot("/old", "h")));
  log.append(r1);
  CommitRecord r2;
  r2.version = {"dev", 2, 0.0};
  r2.changes.push_back(Change::upsert_file(make_snapshot("/new", "h")));
  log.append(r2);

  apply_delta(image, log);
  EXPECT_EQ(image.find_file("/old"), nullptr);  // skipped
  EXPECT_NE(image.find_file("/new"), nullptr);
  EXPECT_EQ(image.version().counter, 2u);
}

TEST(DeltaPolicyTest, Threshold) {
  DeltaPolicy policy;  // 25% of base, floor 10 KiB
  EXPECT_FALSE(policy.should_merge(100 << 10, 9 << 10));
  EXPECT_FALSE(policy.should_merge(100 << 10, 20 << 10));
  EXPECT_TRUE(policy.should_merge(100 << 10, 26 << 10));
  EXPECT_TRUE(policy.should_merge(1 << 10, 11 << 10));  // floor dominates
}

// --- codec -----------------------------------------------------------------------

TEST(CodecTest, ImageEncryptionRoundTrip) {
  MetadataCodec codec("passphrase");
  SyncFolderImage image;
  image.upsert_file(make_snapshot("/secret.txt", "hash"));
  const Bytes cipher = codec.encode_image(image);
  auto back = codec.decode_image(ByteSpan(cipher));
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back.value() == image);
}

TEST(CodecTest, CiphertextIsOpaque) {
  MetadataCodec codec("passphrase");
  SyncFolderImage image;
  image.upsert_file(make_snapshot("/very_secret_filename.txt", "h"));
  const Bytes cipher = codec.encode_image(image);
  const std::string as_string = string_from_bytes(ByteSpan(cipher));
  EXPECT_EQ(as_string.find("very_secret_filename"), std::string::npos);
}

TEST(CodecTest, WrongPassphraseFails) {
  MetadataCodec codec("right");
  MetadataCodec wrong("wrong");
  SyncFolderImage image;
  image.upsert_file(make_snapshot("/f", "h"));
  const Bytes cipher = codec.encode_image(image);
  EXPECT_FALSE(wrong.decode_image(ByteSpan(cipher)).is_ok());
}

TEST(CodecTest, DeltaEncryptionRoundTrip) {
  MetadataCodec codec("p");
  DeltaLog log;
  CommitRecord r;
  r.version = {"dev", 1, 0.0};
  r.changes.push_back(Change::add_dir("/d"));
  log.append(r);
  auto back = codec.decode_delta(ByteSpan(codec.encode_delta(log)));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().size(), 1u);
}

// --- codec fuzz ------------------------------------------------------------------
//
// The metadata envelope is the one payload every device must agree on; a
// malformed byte stream (truncated upload, bit rot, a hostile provider) must
// surface as a decode error — never a crash, never a silently wrong image.

SyncFolderImage random_image(Rng& rng) {
  SyncFolderImage image;
  const std::size_t num_dirs = rng.next_below(4);
  for (std::size_t d = 0; d < num_dirs; ++d) {
    image.add_dir("/dir" + std::to_string(rng.next_below(100)));
  }
  const std::size_t num_files = 1 + rng.next_below(6);
  for (std::size_t f = 0; f < num_files; ++f) {
    std::vector<std::string> seg_ids;
    const std::size_t num_segments = rng.next_below(3);
    for (std::size_t s = 0; s < num_segments; ++s) {
      SegmentInfo seg;
      seg.id = "seg" + std::to_string(rng.next());
      seg.size = rng.next_below(1 << 20);
      const std::size_t num_blocks = rng.next_below(8);
      for (std::size_t b = 0; b < num_blocks; ++b) {
        seg.blocks.push_back({static_cast<std::uint32_t>(rng.next_below(32)),
                              static_cast<cloud::CloudId>(rng.next_below(5))});
      }
      image.upsert_segment(seg);
      seg_ids.push_back(seg.id);
    }
    FileSnapshot snap;
    snap.path = "/f" + std::to_string(f) + "_" + std::to_string(rng.next());
    snap.mtime = rng.next_double() * 1e9;
    snap.size = rng.next_below(1 << 22);
    snap.content_hash = "h" + std::to_string(rng.next());
    snap.segment_ids = std::move(seg_ids);
    snap.origin_device = "dev" + std::to_string(rng.next_below(4));
    image.upsert_file(snap);
  }
  image.set_version(VersionStamp{"dev" + std::to_string(rng.next_below(4)),
                                 rng.next_below(1000), rng.next_double()});
  return image;
}

TEST(CodecFuzzTest, RandomImagesRoundTrip) {
  MetadataCodec codec("fuzz-pass");
  Rng rng(0xF0220);
  for (int iter = 0; iter < 25; ++iter) {
    const SyncFolderImage image = random_image(rng);
    const Bytes cipher = codec.encode_image(image);
    auto back = codec.decode_image(ByteSpan(cipher));
    ASSERT_TRUE(back.is_ok()) << "iteration " << iter;
    EXPECT_TRUE(back.value() == image) << "iteration " << iter;
  }
}

TEST(CodecFuzzTest, TruncatedPayloadsErrorNeverCrash) {
  MetadataCodec codec("fuzz-pass");
  Rng rng(0xF0221);
  const SyncFolderImage image = random_image(rng);
  const Bytes cipher = codec.encode_image(image);
  ASSERT_GT(cipher.size(), 8u);
  // Every prefix length from a random sample, plus the always-nasty edges.
  std::vector<std::size_t> lengths = {0, 1, 7, 8, cipher.size() - 1};
  for (int i = 0; i < 40; ++i) lengths.push_back(rng.next_below(cipher.size()));
  for (const std::size_t len : lengths) {
    Bytes truncated(cipher.begin(),
                    cipher.begin() + static_cast<std::ptrdiff_t>(len));
    const auto result = codec.decode_image(ByteSpan(truncated));
    EXPECT_FALSE(result.is_ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(CodecFuzzTest, BitFlippedPayloadsErrorNeverCrash) {
  MetadataCodec codec("fuzz-pass");
  Rng rng(0xF0222);
  const SyncFolderImage image = random_image(rng);
  const Bytes cipher = codec.encode_image(image);
  for (int i = 0; i < 60; ++i) {
    Bytes corrupted = cipher;
    const std::size_t byte = rng.next_below(corrupted.size());
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    const auto result = codec.decode_image(ByteSpan(corrupted));
    EXPECT_FALSE(result.is_ok())
        << "bit flip in byte " << byte << " went undetected";
  }
}

TEST(CodecFuzzTest, DeltaLogSurvivesRoundTripAndRejectsCorruption) {
  MetadataCodec codec("fuzz-pass");
  Rng rng(0xF0223);
  DeltaLog log;
  const std::size_t num_commits = 1 + rng.next_below(5);
  for (std::size_t c = 0; c < num_commits; ++c) {
    CommitRecord record;
    record.version = {"dev" + std::to_string(rng.next_below(3)), c + 1,
                      rng.next_double()};
    record.changes.push_back(Change::add_dir("/d" + std::to_string(c)));
    log.append(record);
  }
  const Bytes cipher = codec.encode_delta(log);
  auto back = codec.decode_delta(ByteSpan(cipher));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().size(), num_commits);

  for (int i = 0; i < 30; ++i) {
    Bytes corrupted = cipher;
    if (rng.bernoulli(0.5)) {
      corrupted.resize(rng.next_below(corrupted.size()));
    } else {
      const std::size_t byte = rng.next_below(corrupted.size());
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    EXPECT_FALSE(codec.decode_delta(ByteSpan(corrupted)).is_ok());
  }
}

// --- MetaStore -------------------------------------------------------------------

cloud::MultiCloud make_clouds(int n) {
  cloud::MultiCloud clouds;
  for (int i = 0; i < n; ++i) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i)));
  }
  return clouds;
}

TEST(MetaStoreTest, PublishAndFetch) {
  auto clouds = make_clouds(5);
  MetaStore store(clouds, "pass");

  SyncFolderImage image;
  image.set_version({"dev", 1, 0.0});
  image.upsert_file(make_snapshot("/a", "h"));
  DeltaLog empty;
  ASSERT_TRUE(store.publish(image, empty, /*upload_base=*/true).is_ok());

  auto fetched = store.fetch_latest();
  ASSERT_TRUE(fetched.is_ok());
  EXPECT_TRUE(fetched.value().image == image);
  EXPECT_EQ(fetched.value().version.counter, 1u);
}

TEST(MetaStoreTest, NoMetadataIsNotFound) {
  auto clouds = make_clouds(5);
  MetaStore store(clouds, "pass");
  EXPECT_EQ(store.fetch_remote_version().code(), ErrorCode::kNotFound);
  EXPECT_EQ(store.fetch_latest().code(), ErrorCode::kNotFound);
}

TEST(MetaStoreTest, DeltaOnlyPublishAndReplay) {
  auto clouds = make_clouds(5);
  MetaStore store(clouds, "pass");

  SyncFolderImage base;
  base.set_version({"dev", 1, 0.0});
  DeltaLog empty;
  ASSERT_TRUE(store.publish(base, empty, true).is_ok());

  DeltaLog delta;
  CommitRecord r;
  r.version = {"dev", 2, 0.0};
  r.changes.push_back(Change::upsert_file(make_snapshot("/new", "h")));
  delta.append(r);
  ASSERT_TRUE(store.publish(base, delta, /*upload_base=*/false).is_ok());

  auto fetched = store.fetch_latest();
  ASSERT_TRUE(fetched.is_ok());
  EXPECT_EQ(fetched.value().version.counter, 2u);
  EXPECT_NE(fetched.value().image.find_file("/new"), nullptr);
}

TEST(MetaStoreTest, HasCloudUpdate) {
  auto clouds = make_clouds(3);
  MetaStore store(clouds, "pass");
  SyncFolderImage image;
  image.set_version({"dev", 5, 0.0});
  DeltaLog empty;
  ASSERT_TRUE(store.publish(image, empty, true).is_ok());

  EXPECT_TRUE(store.has_cloud_update(VersionStamp{"dev", 4, 0.0}));
  EXPECT_FALSE(store.has_cloud_update(VersionStamp{"dev", 5, 0.0}));
  EXPECT_FALSE(store.has_cloud_update(VersionStamp{"dev", 6, 0.0}));
}

TEST(MetaStoreTest, SurvivesMinorityOutage) {
  auto clouds = make_clouds(5);
  // Wrap two clouds in permanent outage.
  cloud::MultiCloud wrapped;
  for (std::size_t i = 0; i < clouds.size(); ++i) {
    if (i < 2) {
      auto faulty = std::make_shared<cloud::FaultyCloud>(
          clouds[i], cloud::FaultProfile{}, 1);
      faulty->set_outage(true);
      wrapped.push_back(faulty);
    } else {
      wrapped.push_back(clouds[i]);
    }
  }
  MetaStore store(wrapped, "pass");
  SyncFolderImage image;
  image.set_version({"dev", 1, 0.0});
  DeltaLog empty;
  ASSERT_TRUE(store.publish(image, empty, true).is_ok());
  ASSERT_TRUE(store.fetch_latest().is_ok());
}

TEST(MetaStoreTest, FailsWithMajorityDown) {
  auto clouds = make_clouds(5);
  cloud::MultiCloud wrapped;
  for (std::size_t i = 0; i < clouds.size(); ++i) {
    auto faulty = std::make_shared<cloud::FaultyCloud>(
        clouds[i], cloud::FaultProfile{}, 1);
    if (i < 3) faulty->set_outage(true);
    wrapped.push_back(faulty);
  }
  MetaStore store(wrapped, "pass");
  SyncFolderImage image;
  DeltaLog empty;
  EXPECT_FALSE(store.publish(image, empty, true).is_ok());
}

TEST(MetaStoreTest, FetchRawReturnsBaseAndDeltaSeparately) {
  auto clouds = make_clouds(3);
  MetaStore store(clouds, "pass");

  SyncFolderImage base;
  base.set_version({"dev", 1, 0.0});
  base.upsert_file(make_snapshot("/in_base", "h"));
  DeltaLog empty;
  ASSERT_TRUE(store.publish(base, empty, true).is_ok());

  DeltaLog delta;
  CommitRecord record;
  record.version = {"dev", 2, 0.0};
  record.changes.push_back(Change::upsert_file(make_snapshot("/in_delta", "h2")));
  delta.append(record);
  ASSERT_TRUE(store.publish(base, delta, /*upload_base=*/false).is_ok());

  auto raw = store.fetch_raw();
  ASSERT_TRUE(raw.is_ok());
  // The RAW pair preserves the separation: base has only the base file,
  // the delta has the un-folded commit.
  EXPECT_NE(raw.value().base.find_file("/in_base"), nullptr);
  EXPECT_EQ(raw.value().base.find_file("/in_delta"), nullptr);
  ASSERT_EQ(raw.value().delta.size(), 1u);
  EXPECT_EQ(raw.value().delta.records()[0].version.counter, 2u);
}

TEST(MergeTest, HistoryRetainedThroughMerge) {
  // The cloud image's history must survive a merge; local edits applied on
  // top push superseded snapshots into it.
  SyncFolderImage base;
  base.upsert_segment(make_segment("s0"));
  base.upsert_file(make_snapshot("/f", "v0", {"s0"}));
  SyncFolderImage cloud = base;
  cloud.upsert_segment(make_segment("s1"));
  cloud.upsert_file(make_snapshot("/f", "v1", {"s1"}));  // v0 -> history
  SyncFolderImage local = base;  // unchanged locally

  const MergeResult m = merge_images(base, local, cloud, "devA");
  const auto hist = m.merged.history("/f");
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[0].content_hash, "v0");
  // History's segments stay referenced after the merge's refcount rebuild.
  EXPECT_GE(m.merged.find_segment("s0")->refcount, 1u);
}

TEST(MetaStoreTest, ReadsNewestAmongClouds) {
  auto clouds = make_clouds(3);
  MetaStore store(clouds, "pass");
  SyncFolderImage v1;
  v1.set_version({"dev", 1, 0.0});
  DeltaLog empty;
  ASSERT_TRUE(store.publish(v1, empty, true).is_ok());

  // A second store writes v2 but only cloud 0 accepts (others in outage).
  cloud::MultiCloud partial;
  partial.push_back(clouds[0]);
  MetaStore store0(partial, "pass");
  SyncFolderImage v2;
  v2.set_version({"dev", 2, 0.0});
  v2.upsert_file(make_snapshot("/newer", "h"));
  ASSERT_TRUE(store0.publish(v2, empty, true).is_ok());

  // Full store must find v2 via cloud 0's version file.
  auto fetched = store.fetch_latest();
  ASSERT_TRUE(fetched.is_ok());
  EXPECT_EQ(fetched.value().version.counter, 2u);
}

TEST(MetaStoreTest, RefetchAtSameVersionShortCircuits) {
  auto clouds = make_clouds(3);
  ManualClock clock;
  auto obs = std::make_shared<obs::Observability>(clock);
  MetaStore store(clouds, "pass", obs);

  SyncFolderImage image;
  image.set_version({"dev", 1, 0.0});
  image.upsert_file(make_snapshot("/a", "h"));
  DeltaLog empty;
  ASSERT_TRUE(store.publish(image, empty, true).is_ok());

  ASSERT_TRUE(store.fetch_latest().is_ok());
  const std::uint64_t before =
      obs->metrics.snapshot().counter_value("meta.fetch.short_circuit");
  // Nothing newer was advertised: answered from the cache, no replay.
  auto again = store.fetch_latest();
  ASSERT_TRUE(again.is_ok());
  EXPECT_TRUE(again.value().image == image);
  EXPECT_EQ(obs->metrics.snapshot().counter_value("meta.fetch.short_circuit"),
            before + 1);

  // A newer publish invalidates the short circuit.
  SyncFolderImage v2 = image;
  v2.set_version({"dev", 2, 0.0});
  v2.upsert_file(make_snapshot("/b", "h2"));
  ASSERT_TRUE(store.publish(v2, empty, true).is_ok());
  auto fresh = store.fetch_latest();
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(fresh.value().version.counter, 2u);
  EXPECT_EQ(obs->metrics.snapshot().counter_value("meta.fetch.short_circuit"),
            before + 1);
}

TEST(MetaStoreTest, EmptyCloudSetIsRejectedNotTriviallySatisfied) {
  MetaStore store(cloud::MultiCloud{}, "pass");
  // majority() of zero clouds must be unreachable, not 0-out-of-0.
  EXPECT_EQ(store.majority(), 1u);
  SyncFolderImage image;
  image.set_version({"dev", 1, 0.0});
  DeltaLog empty;
  EXPECT_FALSE(store.publish(image, empty, true).is_ok());
  EXPECT_FALSE(store.fetch_latest().is_ok());
  EXPECT_FALSE(store.fetch_remote_version().is_ok());
  EXPECT_FALSE(store.has_cloud_update(VersionStamp{"dev", 0, 0.0}));
}

}  // namespace
}  // namespace unidrive::metadata
