// Tests for the completion-based async cloud layer (cloud/async.h), the
// timer wheel behind it, and the executor guarantees the drivers rely on:
//
//   - TimerWheel: firing order, cancel-averts, re-entrant cancel, pending
//     accounting, blocking sleep.
//   - Executor: a throwing fire-and-forget task must not kill the worker or
//     wedge the pool (regression for the submit exception guard), and
//     parallel_apply must rethrow after the fan-out drained.
//   - SyncAdapter: roundtrip, completion off the caller's stack, cancel of
//     a queued op averts the completion forever.
//   - AsyncLatentCloud: a 1-thread I/O pool holds many delayed requests
//     outstanding simultaneously — the multiplexing the async layer exists
//     for.
//   - AsyncRetryingCloud: success after transient failures, and the cancel
//     guarantee mid-retry (a cancelled handle never invokes its completion
//     after cancel() returns, even with a backoff timer armed).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cloud/async.h"
#include "cloud/health.h"
#include "cloud/latent_cloud.h"
#include "cloud/memory_cloud.h"
#include "cloud/retrying_cloud.h"
#include "common/executor.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/timer_wheel.h"

namespace unidrive::cloud {
namespace {

using namespace std::chrono_literals;

Bytes payload(const std::string& s) { return bytes_from_string(s); }

// Waits (real time, bounded) until `pred` holds. The async layer has no
// global quiesce hook, so completion-side assertions poll with a deadline.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds limit = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// One-shot completion latch: records the Status and wakes waiters.
struct StatusLatch {
  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  Status status;

  StatusCb cb() {
    return [this](Status s) {
      std::lock_guard<std::mutex> lock(mu);
      fired = true;
      status = std::move(s);
      cv.notify_all();
    };
  }
  bool wait(std::chrono::milliseconds limit = 5000ms) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, limit, [&] { return fired; });
  }
};

// --- TimerWheel ---------------------------------------------------------------

TEST(TimerWheelTest, FiresInDeadlineOrder) {
  TimerWheel wheel;
  std::mutex mu;
  std::vector<int> order;
  std::condition_variable cv;
  auto record = [&](int v) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(v);
    cv.notify_all();
  };
  // Armed out of order; must fire by deadline.
  wheel.schedule(0.09, [&] { record(3); });
  wheel.schedule(0.03, [&] { record(1); });
  wheel.schedule(0.06, [&] { record(2); });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return order.size() == 3; }));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheelTest, CancelAvertsAndDropsPending) {
  TimerWheel wheel;
  std::atomic<bool> fired{false};
  const TimerWheel::TimerId id = wheel.schedule(60.0, [&] { fired = true; });
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_EQ(wheel.pending(), 0u);
  // Cancelling twice (or a bogus id) reports "already gone", never blocks.
  EXPECT_FALSE(wheel.cancel(id));
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(fired.load());
}

TEST(TimerWheelTest, CancelFromOwnCallbackDoesNotDeadlock) {
  TimerWheel wheel;
  std::atomic<bool> done{false};
  auto id = std::make_shared<std::atomic<TimerWheel::TimerId>>(0);
  id->store(wheel.schedule(0.05, [&wheel, id, &done] {
    // Re-entrant cancel of the running timer must return immediately.
    wheel.cancel(id->load());
    done = true;
  }));
  EXPECT_TRUE(eventually([&] { return done.load(); }));
}

TEST(TimerWheelTest, CancelAfterFireReportsLate) {
  TimerWheel wheel;
  std::atomic<bool> fired{false};
  const TimerWheel::TimerId id = wheel.schedule(0.01, [&] { fired = true; });
  ASSERT_TRUE(eventually([&] { return fired.load(); }));
  // The callback already ran to completion: cancel must report "too late"
  // (and must not block — nothing is running).
  EXPECT_FALSE(wheel.cancel(id));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, ScheduleFromOwnCallbackFires) {
  TimerWheel wheel;
  std::atomic<bool> chained{false};
  wheel.schedule(0.01, [&wheel, &chained] {
    // Re-arming from the wheel thread is the retry-backoff idiom; it must
    // not deadlock on the wheel's own lock.
    wheel.schedule(0.01, [&chained] { chained = true; });
  });
  EXPECT_TRUE(eventually([&] { return chained.load(); }));
}

TEST(TimerWheelTest, IdenticalDeadlinesFireInScheduleOrder) {
  TimerWheel wheel;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> order;
  // Deliberately beyond the deadline the wheel thread is already waiting
  // on, all with the SAME deadline: the (deadline, id) heap must break the
  // tie by schedule order.
  for (int i = 0; i < 8; ++i) {
    wheel.schedule(0.05, [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return order.size() == 8; }));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TimerWheelTest, FarFutureTimerParksWithoutSpinning) {
  TimerWheel wheel;
  std::atomic<bool> fired{false};
  // ~3 years out: must park on the condition variable (not overflow or
  // busy-wait) and still be cancellable, and must not block destruction.
  const TimerWheel::TimerId far =
      wheel.schedule(1e8, [&] { fired = true; });
  // A short timer armed AFTER the far one must still fire on time (the
  // wheel re-evaluates its wait when an earlier deadline arrives).
  std::atomic<bool> near_fired{false};
  wheel.schedule(0.01, [&] { near_fired = true; });
  EXPECT_TRUE(eventually([&] { return near_fired.load(); }));
  EXPECT_TRUE(wheel.cancel(far));
  EXPECT_FALSE(fired.load());
}

TEST(TimerWheelTest, SleepBlocksForRoughlyTheDelay) {
  TimerWheel wheel;
  const auto t0 = std::chrono::steady_clock::now();
  wheel.sleep(0.05);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, 45ms);  // coarse lower bound; no upper (loaded CI)
}

TEST(TimerWheelTest, ManyTimersOneThread) {
  // The wheel's reason to exist: hundreds of pending delays, one thread.
  TimerWheel wheel;
  constexpr int kTimers = 200;
  std::atomic<int> fired{0};
  for (int i = 0; i < kTimers; ++i) {
    wheel.schedule(0.01 + 0.0001 * i, [&] { fired.fetch_add(1); });
  }
  EXPECT_TRUE(eventually([&] { return fired.load() == kTimers; }));
}

// --- Executor exception safety (submit guard regression) ----------------------

TEST(ExecutorTest, ThrowingSubmitDoesNotKillWorkerOrWedgePool) {
  Executor pool(1);  // single worker: if the throw killed it, nothing runs
  for (int i = 0; i < 3; ++i) {
    pool.submit([] { throw std::runtime_error("injected"); });
  }
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(eventually([&] { return ran.load(); }));
  // The pool still accepts and runs work after the throws.
  std::atomic<int> more{0};
  for (int i = 0; i < 8; ++i) pool.submit([&] { more.fetch_add(1); });
  EXPECT_TRUE(eventually([&] { return more.load() == 8; }));
}

TEST(ExecutorTest, ParallelApplyRethrowsAfterDraining) {
  Executor pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_apply(8,
                          [&](std::size_t i) {
                            if (i == 3) throw std::runtime_error("boom");
                            completed.fetch_add(1);
                          }),
      std::runtime_error);
  // Every non-throwing index ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 7);
}

TEST(ExecutorTest, ActiveCountsRunningTasks) {
  Executor pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> started{0};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      started.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    });
  }
  EXPECT_TRUE(eventually([&] { return started.load() == 2; }));
  EXPECT_EQ(pool.active(), 2u);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(eventually([&] { return pool.active() == 0; }));
}

// --- SyncAdapter --------------------------------------------------------------

struct AsyncRig {
  explicit AsyncRig(std::size_t threads = 2)
      : io(std::make_shared<Executor>(threads)) {
    ctx.io = io.get();
    ctx.wheel = &wheel;
  }
  // Wheel outlives the executor: queued I/O tasks may still arm timers
  // while the pool drains.
  TimerWheel wheel;
  std::shared_ptr<Executor> io;
  AsyncContext ctx;
};

TEST(SyncAdapterTest, UploadDownloadRoundTrip) {
  AsyncRig rig;
  auto mem = std::make_shared<MemoryCloud>(1, "m");
  SyncAdapter adapter(mem, rig.ctx);

  auto data = std::make_shared<const Bytes>(payload("async hello"));
  StatusLatch up;
  adapter.upload_async("/data/x", ByteSpan(*data), up.cb());
  ASSERT_TRUE(up.wait());
  EXPECT_TRUE(up.status.is_ok());

  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  Result<Bytes> got = Status::ok();
  adapter.download_async("/data/x", [&](Result<Bytes> r) {
    std::lock_guard<std::mutex> lock(mu);
    got = std::move(r);
    fired = true;
    cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return fired; }));
  }
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(string_from_bytes(ByteSpan(got.value())), "async hello");
}

TEST(SyncAdapterTest, CompletionNeverRunsOnCallerStack) {
  AsyncRig rig;
  auto mem = std::make_shared<MemoryCloud>(1, "m");
  SyncAdapter adapter(mem, rig.ctx);
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> same_stack{false};
  StatusLatch latch;
  auto data = std::make_shared<const Bytes>(payload("x"));
  adapter.upload_async("/p", ByteSpan(*data),
                       [&, cb = latch.cb()](Status s) {
                         if (std::this_thread::get_id() == caller) {
                           same_stack = true;
                         }
                         cb(std::move(s));
                       });
  ASSERT_TRUE(latch.wait());
  EXPECT_FALSE(same_stack.load());
}

TEST(SyncAdapterTest, CancelWhileQueuedAvertsCompletionForever) {
  AsyncRig rig(/*threads=*/1);
  auto mem = std::make_shared<MemoryCloud>(1, "m");
  SyncAdapter adapter(mem, rig.ctx);

  // Wedge the single I/O thread so the op stays queued behind it.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> blocker_running{false};
  rig.io->submit([&] {
    blocker_running = true;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  ASSERT_TRUE(eventually([&] { return blocker_running.load(); }));

  std::atomic<bool> completed{false};
  auto data = std::make_shared<const Bytes>(payload("never lands"));
  AsyncHandle handle = adapter.upload_async(
      "/p", ByteSpan(*data), [&](Status) { completed = true; });
  EXPECT_TRUE(handle.valid());
  EXPECT_TRUE(handle.cancel());  // still pending: averted

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  // Give the drained queue every chance to misbehave, then check nothing
  // fired and nothing was uploaded.
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(completed.load());
  EXPECT_EQ(mem->file_count(), 0u);
}

TEST(SyncAdapterTest, CancelAfterCompletionReportsAlreadyRan) {
  AsyncRig rig;
  auto mem = std::make_shared<MemoryCloud>(1, "m");
  SyncAdapter adapter(mem, rig.ctx);
  StatusLatch latch;
  auto data = std::make_shared<const Bytes>(payload("x"));
  AsyncHandle handle = adapter.upload_async("/p", ByteSpan(*data), latch.cb());
  ASSERT_TRUE(latch.wait());
  EXPECT_FALSE(handle.cancel());
  EXPECT_EQ(mem->file_count(), 1u);
}

// --- AsyncLatentCloud: the multiplexing claim ---------------------------------

// A 1-thread pool must hold many delayed requests outstanding at once:
// the latency waits live on the timer wheel, not on pool threads.
TEST(AsyncLatentCloudTest, OneThreadPoolMultiplexesManyDelayedRequests) {
  AsyncRig rig(/*threads=*/1);
  constexpr int kOps = 16;
  constexpr double kLatency = 0.25;  // per-request simulated latency

  LinkProfile profile;
  profile.request_latency_sec = kLatency;
  auto latent = std::make_shared<LatentCloud>(
      std::make_shared<MemoryCloud>(7, "slow"), profile, rig.wheel);
  AsyncCloudPtr cloud = to_async(latent, rig.ctx);

  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  auto data = std::make_shared<const Bytes>(payload("multiplexed"));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<AsyncHandle> handles;
  handles.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    handles.push_back(cloud->upload_async(
        "/blk/" + std::to_string(i), ByteSpan(*data), [&](Status s) {
          if (!s.is_ok()) failed.fetch_add(1);
          completed.fetch_add(1);
        }));
  }
  // All launched, none complete yet: every request is parked on the wheel
  // simultaneously while the single pool thread sits idle.
  EXPECT_EQ(handles.size(), static_cast<std::size_t>(kOps));
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(completed.load(), 0) << "requests resolved before their latency";

  ASSERT_TRUE(eventually([&] { return completed.load() == kOps; }, 10000ms));
  EXPECT_EQ(failed.load(), 0);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Serial execution would take kOps * kLatency = 4 s; multiplexed must be
  // far below it (expected ~kLatency + scheduling noise).
  EXPECT_LT(elapsed, kOps * kLatency / 2)
      << "1-thread pool serialized the latency waits";
  EXPECT_EQ(latent->inner()->id(), 7u);
}

// --- AsyncRetryingCloud -------------------------------------------------------

// Fails the first `failures` data requests with kUnavailable, then succeeds.
class FlakyCloud final : public CloudProvider {
 public:
  FlakyCloud(CloudPtr inner, int failures)
      : inner_(std::move(inner)), remaining_(failures) {}

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override {
    if (remaining_.fetch_sub(1) > 0) {
      return make_error(ErrorCode::kUnavailable, "injected flake");
    }
    return inner_->upload(path, data);
  }
  Result<Bytes> download(const std::string& path) override {
    if (remaining_.fetch_sub(1) > 0) {
      return make_error(ErrorCode::kUnavailable, "injected flake");
    }
    return inner_->download(path);
  }
  Status create_dir(const std::string& path) override {
    return inner_->create_dir(path);
  }
  Result<std::vector<FileInfo>> list(const std::string& dir) override {
    return inner_->list(dir);
  }
  Status remove(const std::string& path) override {
    return inner_->remove(path);
  }

  [[nodiscard]] int calls_denied() const noexcept {
    // How far below the initial budget the counter has been driven.
    return remaining_.load();
  }

 private:
  CloudPtr inner_;
  std::atomic<int> remaining_;
};

TEST(AsyncRetryingCloudTest, SucceedsAfterTransientFailures) {
  AsyncRig rig;
  auto mem = std::make_shared<MemoryCloud>(3, "flaky");
  auto flaky = std::make_shared<FlakyCloud>(mem, /*failures=*/2);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_base = 0.005;
  policy.backoff_cap = 0.02;
  auto blocking = std::make_shared<RetryingCloud>(flaky, policy);
  AsyncCloudPtr cloud = to_async(blocking, rig.ctx);

  StatusLatch latch;
  auto data = std::make_shared<const Bytes>(payload("third time lucky"));
  cloud->upload_async("/data/retry", ByteSpan(*data), latch.cb());
  ASSERT_TRUE(latch.wait());
  EXPECT_TRUE(latch.status.is_ok());
  EXPECT_EQ(mem->file_count(), 1u);
}

TEST(AsyncRetryingCloudTest, ExhaustedRetriesSurfaceTheTransientError) {
  AsyncRig rig;
  auto mem = std::make_shared<MemoryCloud>(3, "flaky");
  auto flaky = std::make_shared<FlakyCloud>(mem, /*failures=*/100);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base = 0.002;
  policy.backoff_cap = 0.01;
  auto blocking = std::make_shared<RetryingCloud>(flaky, policy);
  AsyncCloudPtr cloud = to_async(blocking, rig.ctx);

  StatusLatch latch;
  auto data = std::make_shared<const Bytes>(payload("doomed"));
  cloud->upload_async("/data/doomed", ByteSpan(*data), latch.cb());
  ASSERT_TRUE(latch.wait());
  EXPECT_EQ(latch.status.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(mem->file_count(), 0u);
}

// The satellite guarantee: after cancel() returns, the completion never
// runs — here with a multi-second backoff timer armed mid-retry, so the
// cancel must avert the wheel timer, not just the initial submit.
TEST(AsyncRetryingCloudTest, CancelMidRetryNeverInvokesCompletion) {
  AsyncRig rig;
  auto mem = std::make_shared<MemoryCloud>(3, "flaky");
  auto flaky = std::make_shared<FlakyCloud>(mem, /*failures=*/100);
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_base = 5.0;  // park the retry far in the future
  policy.backoff_cap = 10.0;
  auto blocking = std::make_shared<RetryingCloud>(flaky, policy);
  AsyncCloudPtr cloud = to_async(blocking, rig.ctx);

  std::atomic<bool> completed{false};
  auto data = std::make_shared<const Bytes>(payload("cancel me"));
  AsyncHandle handle = cloud->upload_async(
      "/data/cancel", ByteSpan(*data), [&](Status) { completed = true; });

  // Wait until the first attempt failed and the backoff timer is armed.
  ASSERT_TRUE(eventually([&] { return flaky->calls_denied() < 100; }));
  std::this_thread::sleep_for(20ms);  // let retry_on_result arm the timer
  ASSERT_FALSE(completed.load());

  EXPECT_TRUE(handle.cancel());
  // The contract: from this line on, the completion can never fire.
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(completed.load());
  EXPECT_EQ(rig.wheel.pending(), 0u) << "cancelled retry left its timer armed";
}

TEST(AsyncRetryingCloudTest, CancelBeforeFirstAttemptAverts) {
  AsyncRig rig(/*threads=*/1);
  auto mem = std::make_shared<MemoryCloud>(4, "m");
  auto blocking = std::make_shared<RetryingCloud>(mem, RetryPolicy{});
  AsyncCloudPtr cloud = to_async(blocking, rig.ctx);

  // Wedge the only I/O thread so the deferred first attempt stays queued.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> wedged{false};
  rig.io->submit([&] {
    wedged = true;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  ASSERT_TRUE(eventually([&] { return wedged.load(); }));

  std::atomic<bool> completed{false};
  auto data = std::make_shared<const Bytes>(payload("early cancel"));
  AsyncHandle handle = cloud->upload_async("/p", ByteSpan(*data),
                                           [&](Status) { completed = true; });
  EXPECT_TRUE(handle.cancel());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(completed.load());
  EXPECT_EQ(mem->file_count(), 0u);
}

// Breaker integration: an open circuit fails async calls fast with kOutage,
// off the caller's stack, exactly like the blocking surface.
TEST(AsyncRetryingCloudTest, OpenBreakerFailsFastWithOutage) {
  AsyncRig rig;
  auto mem = std::make_shared<MemoryCloud>(5, "down");
  BreakerConfig breaker;
  breaker.consecutive_failures_to_open = 1;
  breaker.open_duration = 3600;
  auto health = std::make_shared<CloudHealthRegistry>(breaker);
  // Trip the breaker.
  health->record(5, make_error(ErrorCode::kUnavailable, "boom"), 0.0);
  ASSERT_FALSE(health->allow_request(5));

  auto blocking = std::make_shared<RetryingCloud>(
      mem, RetryPolicy{}, health);
  AsyncCloudPtr cloud = to_async(blocking, rig.ctx);

  StatusLatch latch;
  auto data = std::make_shared<const Bytes>(payload("refused"));
  cloud->upload_async("/p", ByteSpan(*data), latch.cb());
  ASSERT_TRUE(latch.wait());
  EXPECT_EQ(latch.status.code(), ErrorCode::kOutage);
  EXPECT_EQ(mem->file_count(), 0u);
}

// High fan-out smoke: 8 async clouds, a 2-thread pool, a burst of uploads
// per cloud — everything completes, nothing deadlocks, data lands.
TEST(AsyncCloudTest, EightCloudsTwoThreadsHighFanOut) {
  AsyncRig rig(/*threads=*/2);
  constexpr int kClouds = 8;
  constexpr int kOpsPerCloud = 6;

  std::vector<std::shared_ptr<MemoryCloud>> mems;
  std::vector<AsyncCloudPtr> clouds;
  for (int i = 0; i < kClouds; ++i) {
    auto mem = std::make_shared<MemoryCloud>(static_cast<CloudId>(i),
                                             "c" + std::to_string(i));
    mems.push_back(mem);
    LinkProfile profile;
    profile.request_latency_sec = 0.02;
    auto latent = std::make_shared<LatentCloud>(mem, profile, rig.wheel);
    auto blocking = std::make_shared<RetryingCloud>(latent, RetryPolicy{});
    clouds.push_back(to_async(blocking, rig.ctx));
  }

  std::atomic<int> ok{0};
  auto data = std::make_shared<const Bytes>(payload("fan-out"));
  for (int c = 0; c < kClouds; ++c) {
    for (int i = 0; i < kOpsPerCloud; ++i) {
      clouds[c]->upload_async("/b/" + std::to_string(i), ByteSpan(*data),
                              [&](Status s) {
                                if (s.is_ok()) ok.fetch_add(1);
                              });
    }
  }
  ASSERT_TRUE(
      eventually([&] { return ok.load() == kClouds * kOpsPerCloud; }, 10000ms));
  for (const auto& mem : mems) {
    EXPECT_EQ(mem->file_count(), static_cast<std::size_t>(kOpsPerCloud));
  }
}

}  // namespace
}  // namespace unidrive::cloud
