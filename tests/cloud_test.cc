#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include <filesystem>

#include "cloud/directory_cloud.h"
#include "cloud/rate_limited_cloud.h"
#include "core/client.h"
#include "lock/quorum_lock.h"
#include "cloud/faulty_cloud.h"
#include "cloud/latent_cloud.h"
#include "cloud/memory_cloud.h"
#include "cloud/path.h"
#include "cloud/quota_cloud.h"
#include "cloud/stats_cloud.h"
#include "common/rng.h"

namespace unidrive::cloud {
namespace {

Bytes bytes(const std::string& s) { return bytes_from_string(s); }

// --- path helpers -------------------------------------------------------------

TEST(PathTest, Normalize) {
  EXPECT_EQ(normalize_path("/a/b/c"), "/a/b/c");
  EXPECT_EQ(normalize_path("a/b/c"), "/a/b/c");
  EXPECT_EQ(normalize_path("/a//b/"), "/a/b");
  EXPECT_EQ(normalize_path(""), "/");
  EXPECT_EQ(normalize_path("///"), "/");
}

TEST(PathTest, Split) {
  EXPECT_EQ(split_path("/a/b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_path("/").empty());
}

TEST(PathTest, ParentAndBasename) {
  EXPECT_EQ(parent_path("/a/b/c"), "/a/b");
  EXPECT_EQ(parent_path("/a"), "/");
  EXPECT_EQ(parent_path("/"), "/");
  EXPECT_EQ(basename("/a/b/c"), "c");
  EXPECT_EQ(basename("/"), "");
}

TEST(PathTest, Join) {
  EXPECT_EQ(join_path("/a", "b"), "/a/b");
  EXPECT_EQ(join_path("/", "b"), "/b");
  EXPECT_EQ(join_path("/a/", "b"), "/a/b");
}

// --- MemoryCloud ----------------------------------------------------------------

TEST(MemoryCloudTest, UploadDownloadRoundTrip) {
  MemoryCloud c(1, "test");
  ASSERT_TRUE(c.upload("/data/x", ByteSpan(bytes("hello"))).is_ok());
  auto got = c.download("/data/x");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(string_from_bytes(ByteSpan(got.value())), "hello");
}

TEST(MemoryCloudTest, DownloadMissingIsNotFound) {
  MemoryCloud c(1, "test");
  EXPECT_EQ(c.download("/nope").code(), ErrorCode::kNotFound);
}

TEST(MemoryCloudTest, UploadReplaces) {
  MemoryCloud c(1, "test");
  ASSERT_TRUE(c.upload("/f", ByteSpan(bytes("v1"))).is_ok());
  ASSERT_TRUE(c.upload("/f", ByteSpan(bytes("v2"))).is_ok());
  EXPECT_EQ(string_from_bytes(ByteSpan(c.download("/f").value())), "v2");
  EXPECT_EQ(c.file_count(), 1u);
}

TEST(MemoryCloudTest, ListImmediateChildrenOnly) {
  MemoryCloud c(1, "test");
  ASSERT_TRUE(c.upload("/dir/a", ByteSpan(bytes("1"))).is_ok());
  ASSERT_TRUE(c.upload("/dir/b", ByteSpan(bytes("22"))).is_ok());
  ASSERT_TRUE(c.upload("/dir/sub/c", ByteSpan(bytes("333"))).is_ok());
  ASSERT_TRUE(c.upload("/other/d", ByteSpan(bytes("4"))).is_ok());
  auto listing = c.list("/dir");
  ASSERT_TRUE(listing.is_ok());
  ASSERT_EQ(listing.value().size(), 2u);
  EXPECT_EQ(listing.value()[0].name, "a");
  EXPECT_EQ(listing.value()[0].size, 1u);
  EXPECT_EQ(listing.value()[1].name, "b");
  EXPECT_EQ(listing.value()[1].size, 2u);
}

TEST(MemoryCloudTest, ListEmptyDir) {
  MemoryCloud c(1, "test");
  auto listing = c.list("/empty");
  ASSERT_TRUE(listing.is_ok());
  EXPECT_TRUE(listing.value().empty());
}

TEST(MemoryCloudTest, ListPrefixCollision) {
  // "/lock" must not pick up "/lockers/x".
  MemoryCloud c(1, "test");
  ASSERT_TRUE(c.upload("/lockers/x", ByteSpan(bytes("1"))).is_ok());
  ASSERT_TRUE(c.upload("/lock/y", ByteSpan(bytes("2"))).is_ok());
  auto listing = c.list("/lock");
  ASSERT_TRUE(listing.is_ok());
  ASSERT_EQ(listing.value().size(), 1u);
  EXPECT_EQ(listing.value()[0].name, "y");
}

TEST(MemoryCloudTest, RemoveAndNotFound) {
  MemoryCloud c(1, "test");
  ASSERT_TRUE(c.upload("/f", ByteSpan(bytes("x"))).is_ok());
  EXPECT_TRUE(c.remove("/f").is_ok());
  EXPECT_EQ(c.remove("/f").code(), ErrorCode::kNotFound);
}

TEST(MemoryCloudTest, StoredBytesAccounting) {
  MemoryCloud c(1, "test");
  ASSERT_TRUE(c.upload("/a", ByteSpan(bytes("12345"))).is_ok());
  ASSERT_TRUE(c.upload("/b", ByteSpan(bytes("123"))).is_ok());
  EXPECT_EQ(c.stored_bytes(), 8u);
}

TEST(MemoryCloudTest, ConcurrentAccessIsSafe) {
  MemoryCloud c(1, "test");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string path = "/d/f" + std::to_string(t) + "_" + std::to_string(i);
        ASSERT_TRUE(c.upload(path, ByteSpan(bytes("x"))).is_ok());
        ASSERT_TRUE(c.download(path).is_ok());
        (void)c.list("/d");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.file_count(), 1600u);
}

TEST(MemoryCloudTest, ReadAfterWriteConsistency) {
  // The consistency contract the lock protocol relies on.
  MemoryCloud c(1, "test");
  ASSERT_TRUE(c.upload("/lock/l1", ByteSpan(Bytes{})).is_ok());
  auto listing = c.list("/lock");
  ASSERT_TRUE(listing.is_ok());
  ASSERT_EQ(listing.value().size(), 1u);
}

// --- FaultyCloud ----------------------------------------------------------------

TEST(FaultyCloudTest, ZeroFailureRatePassesThrough) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  FaultyCloud faulty(inner, FaultProfile{}, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(faulty.upload("/f" + std::to_string(i),
                              ByteSpan(bytes("x"))).is_ok());
  }
  EXPECT_EQ(faulty.failures(), 0u);
}

TEST(FaultyCloudTest, OutageFailsEverything) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  ASSERT_TRUE(inner->upload("/f", ByteSpan(bytes("x"))).is_ok());
  FaultyCloud faulty(inner, FaultProfile{}, 1);
  faulty.set_outage(true);
  EXPECT_EQ(faulty.download("/f").code(), ErrorCode::kOutage);
  EXPECT_EQ(faulty.upload("/g", ByteSpan(bytes("y"))).code(),
            ErrorCode::kOutage);
  EXPECT_FALSE(faulty.list("/").is_ok());
  faulty.set_outage(false);
  EXPECT_TRUE(faulty.download("/f").is_ok());
}

TEST(FaultyCloudTest, BaseFailureRateApproximate) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  FaultProfile profile;
  profile.base_failure_rate = 0.3;
  FaultyCloud faulty(inner, profile, 99);
  int failures = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (!faulty.list("/").is_ok()) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, 0.3, 0.03);
}

TEST(FaultyCloudTest, SizeDependentFailures) {
  // Larger payloads fail more often (paper Figure 4).
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  FaultProfile profile;
  profile.base_failure_rate = 0.01;
  profile.per_mb_failure_rate = 0.05;
  FaultyCloud faulty(inner, profile, 7);
  Rng rng(1);
  const Bytes small = rng.bytes(64 << 10);
  const Bytes large = rng.bytes(8 << 20);
  int small_failures = 0, large_failures = 0;
  const int n = 1500;
  for (int i = 0; i < n; ++i) {
    if (!faulty.upload("/s", ByteSpan(small)).is_ok()) ++small_failures;
    if (!faulty.upload("/l", ByteSpan(large)).is_ok()) ++large_failures;
  }
  EXPECT_GT(large_failures, small_failures * 2);
}

TEST(FaultyCloudTest, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    auto inner = std::make_shared<MemoryCloud>(1, "m");
    FaultProfile profile;
    profile.base_failure_rate = 0.5;
    FaultyCloud faulty(inner, profile, seed);
    std::vector<bool> outcomes;
    for (int i = 0; i < 50; ++i) outcomes.push_back(faulty.list("/").is_ok());
    return outcomes;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

// --- QuotaCloud -----------------------------------------------------------------

TEST(QuotaCloudTest, EnforcesQuota) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  QuotaCloud quota(inner, 10);
  EXPECT_TRUE(quota.upload("/a", ByteSpan(bytes("123456"))).is_ok());
  EXPECT_EQ(quota.upload("/b", ByteSpan(bytes("123456"))).code(),
            ErrorCode::kQuotaExceeded);
  EXPECT_TRUE(quota.upload("/b", ByteSpan(bytes("1234"))).is_ok());
  EXPECT_EQ(quota.used_bytes(), 10u);
}

TEST(QuotaCloudTest, ReplacementDoesNotDoubleCount) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  QuotaCloud quota(inner, 10);
  EXPECT_TRUE(quota.upload("/a", ByteSpan(bytes("12345678"))).is_ok());
  // Replacing /a with an 8-byte payload fits (old copy is released).
  EXPECT_TRUE(quota.upload("/a", ByteSpan(bytes("abcdefgh"))).is_ok());
  EXPECT_EQ(quota.used_bytes(), 8u);
}

TEST(QuotaCloudTest, RemoveFreesSpace) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  QuotaCloud quota(inner, 10);
  EXPECT_TRUE(quota.upload("/a", ByteSpan(bytes("1234567890"))).is_ok());
  EXPECT_TRUE(quota.remove("/a").is_ok());
  EXPECT_EQ(quota.used_bytes(), 0u);
  EXPECT_TRUE(quota.upload("/b", ByteSpan(bytes("1234567890"))).is_ok());
}

// --- StatsCloud -----------------------------------------------------------------

TEST(StatsCloudTest, CountsTraffic) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  StatsCloud stats(inner, /*per_request_overhead=*/100);
  ASSERT_TRUE(stats.upload("/f", ByteSpan(bytes("12345"))).is_ok());
  ASSERT_TRUE(stats.download("/f").is_ok());
  (void)stats.list("/");
  const TrafficStats t = stats.stats();
  EXPECT_EQ(t.requests, 3u);
  EXPECT_EQ(t.payload_up, 5u);
  EXPECT_EQ(t.payload_down, 5u);
  EXPECT_GE(t.overhead_bytes, 300u);
}

TEST(StatsCloudTest, FailedTransfersNotCountedAsPayload) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  StatsCloud stats(inner, 100);
  EXPECT_FALSE(stats.download("/missing").is_ok());
  const TrafficStats t = stats.stats();
  EXPECT_EQ(t.payload_down, 0u);
  EXPECT_EQ(t.requests, 1u);
}

TEST(StatsCloudTest, ResetClears) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  StatsCloud stats(inner, 100);
  ASSERT_TRUE(stats.upload("/f", ByteSpan(bytes("x"))).is_ok());
  stats.reset_stats();
  EXPECT_EQ(stats.stats().total_bytes(), 0u);
}

// --- DirectoryCloud ----------------------------------------------------------------

class DirectoryCloudTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs each case as its own process, so a
    // shared directory would be clobbered by concurrent SetUp/TearDown.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (std::filesystem::temp_directory_path() /
             (std::string("unidrive_dircloud_") + info->name()))
                .string();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::string root_;
};

TEST_F(DirectoryCloudTest, RoundTrip) {
  DirectoryCloud c(1, "dir", root_);
  ASSERT_TRUE(c.upload("/data/block_1", ByteSpan(bytes("payload"))).is_ok());
  auto got = c.download("/data/block_1");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(string_from_bytes(ByteSpan(got.value())), "payload");
  EXPECT_TRUE(c.remove("/data/block_1").is_ok());
  EXPECT_EQ(c.download("/data/block_1").code(), ErrorCode::kNotFound);
}

TEST_F(DirectoryCloudTest, PersistsAcrossInstances) {
  {
    DirectoryCloud c(1, "dir", root_);
    ASSERT_TRUE(c.upload("/meta/version", ByteSpan(bytes("v42"))).is_ok());
  }
  DirectoryCloud again(1, "dir", root_);
  auto got = again.download("/meta/version");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(string_from_bytes(ByteSpan(got.value())), "v42");
}

TEST_F(DirectoryCloudTest, ListImmediateFilesOnly) {
  DirectoryCloud c(1, "dir", root_);
  ASSERT_TRUE(c.upload("/lock/lock_a", ByteSpan(Bytes{})).is_ok());
  ASSERT_TRUE(c.upload("/lock/lock_b", ByteSpan(bytes("x"))).is_ok());
  ASSERT_TRUE(c.upload("/lock/sub/deep", ByteSpan(bytes("y"))).is_ok());
  auto listing = c.list("/lock");
  ASSERT_TRUE(listing.is_ok());
  ASSERT_EQ(listing.value().size(), 2u);
  EXPECT_EQ(listing.value()[0].name, "lock_a");
  EXPECT_EQ(listing.value()[1].name, "lock_b");
  EXPECT_EQ(listing.value()[1].size, 1u);
}

TEST_F(DirectoryCloudTest, ListMissingDirIsEmpty) {
  DirectoryCloud c(1, "dir", root_);
  auto listing = c.list("/nothing");
  ASSERT_TRUE(listing.is_ok());
  EXPECT_TRUE(listing.value().empty());
}

TEST_F(DirectoryCloudTest, UploadReplacesAtomically) {
  DirectoryCloud c(1, "dir", root_);
  ASSERT_TRUE(c.upload("/f", ByteSpan(bytes("old"))).is_ok());
  ASSERT_TRUE(c.upload("/f", ByteSpan(bytes("new"))).is_ok());
  EXPECT_EQ(string_from_bytes(ByteSpan(c.download("/f").value())), "new");
}

TEST_F(DirectoryCloudTest, WorksAsQuorumLockSubstrate) {
  // A full client-grade consumer: the quorum lock over directory clouds.
  cloud::MultiCloud clouds;
  for (cloud::CloudId id = 0; id < 3; ++id) {
    clouds.push_back(std::make_shared<DirectoryCloud>(
        id, "d" + std::to_string(id), root_ + "/c" + std::to_string(id)));
  }
  ManualClock clock;
  lock::LockConfig config;
  lock::QuorumLock lock(clouds, "dev", config, clock, Rng(1),
                        [&clock](Duration d) { clock.advance(d); });
  ASSERT_TRUE(lock.acquire().is_ok());
  lock.release();
  for (const auto& c : clouds) {
    EXPECT_TRUE(c->list("/lock").value().empty());
  }
}

// --- RateLimitedCloud -------------------------------------------------------------

TEST(RateLimitedCloudTest, BurstThenThrottle) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  ManualClock clock;
  RateLimit limit;
  limit.requests_per_second = 1;
  limit.burst = 3;
  RateLimitedCloud limited(inner, limit, clock);

  // The burst allowance passes, the next request is throttled.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(limited.upload("/f" + std::to_string(i),
                               ByteSpan(bytes("x"))).is_ok());
  }
  const Status throttled = limited.upload("/f3", ByteSpan(bytes("x")));
  EXPECT_EQ(throttled.code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(throttled.is_transient());  // schedulers will retry
  EXPECT_EQ(limited.throttled_requests(), 1u);
}

TEST(RateLimitedCloudTest, TokensRefillOverTime) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  ManualClock clock;
  RateLimit limit;
  limit.requests_per_second = 2;
  limit.burst = 1;
  RateLimitedCloud limited(inner, limit, clock);
  EXPECT_TRUE(limited.list("/").is_ok());
  EXPECT_FALSE(limited.list("/").is_ok());
  clock.advance(0.6);  // 1.2 tokens refilled
  EXPECT_TRUE(limited.list("/").is_ok());
}

TEST(RateLimitedCloudTest, ClientSyncsThroughRateLimits) {
  // End to end: a client over rate-limited clouds retries through 429s.
  cloud::MultiCloud clouds;
  for (cloud::CloudId id = 0; id < 5; ++id) {
    auto memory =
        std::make_shared<MemoryCloud>(id, "m" + std::to_string(id));
    RateLimit limit;
    limit.requests_per_second = 200;  // tight but survivable
    limit.burst = 20;
    clouds.push_back(std::make_shared<RateLimitedCloud>(
        memory, limit, RealClock::instance()));
  }
  auto fs = std::make_shared<core::MemoryLocalFs>();
  core::ClientConfig config;
  config.device = "dev";
  config.theta = 64 << 10;
  config.lock.retry.backoff_base = 0.005;
  config.lock.retry.backoff_cap = 0.015;
  core::UniDriveClient client(clouds, fs, config);
  Rng rng(77);
  ASSERT_TRUE(fs->write("/f", ByteSpan(rng.bytes(100000))).is_ok());
  auto report = client.sync();
  EXPECT_TRUE(report.is_ok()) << report.status().to_string();
}

// --- LatentCloud -----------------------------------------------------------------

TEST(LatentCloudTest, ThrottlesUpload) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  LinkProfile profile;
  profile.up_bytes_per_sec = 1 << 20;  // 1 MiB/s
  LatentCloud latent(inner, profile);
  Rng rng(1);
  const Bytes payload = rng.bytes(256 << 10);  // 0.25 MiB -> ~0.25 s
  const double start = RealClock::instance().now();
  ASSERT_TRUE(latent.upload("/f", ByteSpan(payload)).is_ok());
  const double elapsed = RealClock::instance().now() - start;
  EXPECT_GE(elapsed, 0.2);
  EXPECT_LT(elapsed, 2.0);
}

TEST(LatentCloudTest, UnlimitedIsFast) {
  auto inner = std::make_shared<MemoryCloud>(1, "m");
  LatentCloud latent(inner, LinkProfile{});
  Rng rng(2);
  const Bytes payload = rng.bytes(1 << 20);
  const double start = RealClock::instance().now();
  ASSERT_TRUE(latent.upload("/f", ByteSpan(payload)).is_ok());
  EXPECT_LT(RealClock::instance().now() - start, 0.5);
}

}  // namespace
}  // namespace unidrive::cloud
