// Tests for the observability layer (src/obs/): histogram quantile
// correctness, thread-safety of concurrent instrument updates (the CI
// sanitizer job runs this suite under TSan), span nesting and ring-buffer
// overflow, and deterministic timestamps under an injected ManualClock.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/obs.h"

namespace unidrive::obs {
namespace {

// --- Counter / Gauge --------------------------------------------------------

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, QuantilesInterpolateExactlyOnUniformData) {
  // Bounds at 10, 20, ..., 100 and values 1..100: every bucket holds
  // exactly 10 observations, so linear interpolation within the target
  // bucket must land on the exact rank.
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) h.observe(v);

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  // Edge quantiles are pinned to the observed extremes.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(HistogramTest, QuantilesClampToObservedRange) {
  Histogram h({10.0, 20.0});
  h.observe(14.0);
  h.observe(15.0);
  h.observe(16.0);
  // All mass is in (10, 20]; interpolation may not report values outside
  // what was actually observed.
  EXPECT_GE(h.quantile(0.01), 14.0);
  EXPECT_LE(h.quantile(0.99), 16.0);
}

TEST(HistogramTest, OverflowBucketReportsMax) {
  Histogram h({1.0, 2.0});
  h.observe(50.0);
  h.observe(75.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 75.0);
  const HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 50.0);
  EXPECT_DOUBLE_EQ(s.max, 75.0);
}

TEST(HistogramTest, StatsTrackSumMinMaxMean) {
  Histogram h(Histogram::default_latency_bounds());
  h.observe(0.2);
  h.observe(0.4);
  const HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.sum, 0.6);
  EXPECT_DOUBLE_EQ(s.min, 0.2);
  EXPECT_DOUBLE_EQ(s.max, 0.4);
  EXPECT_DOUBLE_EQ(s.mean(), 0.3);
}

TEST(HistogramTest, EmptyHistogramIsAllZeros) {
  Histogram h(Histogram::default_latency_bounds());
  const HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

// --- concurrency (TSan-clean) -----------------------------------------------

TEST(MetricsRegistryTest, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Mix of cached-reference and by-name access, plus histogram and
      // gauge traffic, all against shared instruments.
      Counter& fast = registry.counter("test.fast");
      for (int i = 0; i < kPerThread; ++i) {
        fast.add();
        registry.counter("test.named").add(2);
        registry.histogram("test.latency").observe(0.01 * (i % 7));
        registry.gauge("test.gauge").add(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MetricsSnapshot s = registry.snapshot();
  EXPECT_EQ(s.counter_value("test.fast"), kThreads * kPerThread);
  EXPECT_EQ(s.counter_value("test.named"), 2u * kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(s.gauge_value("test.gauge"), kThreads * kPerThread);
  const auto hist = s.histograms.at("test.latency");
  EXPECT_EQ(hist.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(hist.min, 0.0);
  EXPECT_DOUBLE_EQ(hist.max, 0.06);
}

TEST(TracerTest, ConcurrentSpansAllRecorded) {
  ManualClock clock(0.0);
  Tracer tracer(clock, /*capacity=*/4096);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        Span root = tracer.start("work");
        Span child = root.child("step");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.finished().size(), 2u * kThreads * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.count("work"), static_cast<std::size_t>(kThreads) * kPerThread);
}

// --- spans ------------------------------------------------------------------

TEST(TracerTest, ParentChildNesting) {
  ManualClock clock(100.0);
  Tracer tracer(clock);
  {
    Span root = tracer.start("root");
    Span child = root.child("child");
    Span grandchild = child.child("grandchild");
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 3u);
  // Destruction order: grandchild, child, root.
  EXPECT_EQ(spans[0].name, "grandchild");
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[2].name, "root");
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[1].parent, spans[2].id);
  EXPECT_EQ(spans[2].parent, 0u);
}

TEST(TracerTest, RingBufferOverflowKeepsNewestAndCounts) {
  ManualClock clock(0.0);
  Tracer tracer(clock, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    Span s = tracer.start("span" + std::to_string(i));
    clock.advance(1.0);
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "span6");
  EXPECT_EQ(spans.back().name, "span9");
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(TracerTest, DeterministicTimestampsWithManualClock) {
  ManualClock clock(1000.0);
  Tracer tracer(clock);
  Span root = tracer.start("outer");
  clock.advance(3.0);
  {
    Span inner = root.child("inner");
    clock.advance(2.0);
  }
  clock.advance(5.0);
  root.end();

  const auto outer = tracer.find("outer");
  const auto inner = tracer.find("inner");
  ASSERT_TRUE(outer.has_value());
  ASSERT_TRUE(inner.has_value());
  EXPECT_DOUBLE_EQ(outer->start, 1000.0);
  EXPECT_DOUBLE_EQ(outer->end, 1010.0);
  EXPECT_DOUBLE_EQ(outer->duration(), 10.0);
  EXPECT_DOUBLE_EQ(inner->start, 1003.0);
  EXPECT_DOUBLE_EQ(inner->end, 1005.0);
}

TEST(TracerTest, EndIsIdempotentAndMoveTransfersOwnership) {
  ManualClock clock(0.0);
  Tracer tracer(clock);
  Span a = tracer.start("a");
  Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): on purpose
  EXPECT_TRUE(b.active());
  b.end();
  b.end();  // second end is a no-op
  EXPECT_EQ(tracer.finished().size(), 1u);
}

TEST(SpanTest, InertSpanIsSafe) {
  Span inert;
  EXPECT_FALSE(inert.active());
  Span child = inert.child("child");
  EXPECT_FALSE(child.active());
  inert.end();  // no-op, no crash
}

// --- Observability / JSON ---------------------------------------------------

TEST(ObservabilityTest, NullHelpersAreNoOps) {
  add_counter(nullptr, "x");
  observe(nullptr, "y", 1.0);
  Span s = start_span(nullptr, "z");
  EXPECT_FALSE(s.active());
}

TEST(ObservabilityTest, DumpJsonContainsAllSections) {
  ManualClock clock(7.0);
  Observability obs(clock);
  obs.metrics.counter("requests.total").add(3);
  obs.metrics.gauge("queue.depth").set(1.5);
  obs.metrics.histogram("latency").observe(0.25);
  {
    Span s = obs.tracer.start("round");
    clock.advance(1.0);
  }
  const std::string json = DumpJson(obs);
  EXPECT_NE(json.find("\"requests.total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"queue.depth\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"round\""), std::string::npos);
  EXPECT_NE(json.find("\"spans_dropped\": 0"), std::string::npos);
}

TEST(ObservabilityTest, WriteJsonFileCreatesParentDirs) {
  Observability obs;
  obs.metrics.counter("c").add();
  const std::string path =
      ::testing::TempDir() + "/obs_test_out/nested/metrics.json";
  ASSERT_TRUE(WriteJsonFile(obs, path).is_ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"c\": 1"), std::string::npos);
}

TEST(MetricsSnapshotTest, MissingNamesReadAsZero) {
  MetricsRegistry registry;
  const MetricsSnapshot s = registry.snapshot();
  EXPECT_EQ(s.counter_value("nope"), 0u);
  EXPECT_DOUBLE_EQ(s.gauge_value("nope"), 0.0);
}

}  // namespace
}  // namespace unidrive::obs
