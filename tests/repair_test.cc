// Scrub-and-repair subsystem tests: silent-defect detection (block loss,
// bit-rot), budget-bounded healing back to full redundancy, quarantined
// orphan collection, cloud-lost re-homing, and the durability floor in
// SyncReport.degraded — all against MemoryClouds wrapped in FaultyCloud so
// defects are injected deterministically behind the provider's back.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/faulty_cloud.h"
#include "cloud/health.h"
#include "cloud/memory_cloud.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/local_fs.h"
#include "core/sync_daemon.h"
#include "crypto/convergent.h"
#include "metadata/types.h"
#include "repair/engine.h"
#include "repair/scrubber.h"
#include "repair/service.h"

namespace unidrive::repair {
namespace {

using core::ClientConfig;
using core::MemoryLocalFs;
using core::UniDriveClient;

// 5 MemoryClouds, each wrapped in a FaultyCloud (zero rates — faults are
// injected deterministically via rot_stored/drop_stored/set_outage), a
// manual clock driving every sleep, and one client over the lot.
struct Rig {
  ManualClock clock;
  std::vector<std::shared_ptr<cloud::MemoryCloud>> memory;
  std::vector<std::shared_ptr<cloud::FaultyCloud>> faulty;
  std::shared_ptr<MemoryLocalFs> fs;
  std::unique_ptr<UniDriveClient> client;
};

std::unique_ptr<Rig> make_rig(int n = 5, const std::string& device = "dev") {
  auto rig = std::make_unique<Rig>();
  cloud::MultiCloud clouds;
  for (int i = 0; i < n; ++i) {
    auto memory = std::make_shared<cloud::MemoryCloud>(
        static_cast<cloud::CloudId>(i), "cloud" + std::to_string(i));
    auto faulty = std::make_shared<cloud::FaultyCloud>(
        memory, cloud::FaultProfile{}, 500 + static_cast<std::uint64_t>(i),
        [clock = &rig->clock](Duration d) { clock->advance(d); });
    rig->memory.push_back(memory);
    rig->faulty.push_back(faulty);
    clouds.push_back(faulty);
  }
  ClientConfig cfg;
  cfg.device = device;
  cfg.theta = 64 << 10;
  cfg.retry.max_attempts = 3;
  cfg.retry.backoff_base = 0.001;
  cfg.retry.backoff_cap = 0.01;
  cfg.lock.retry.backoff_base = 0.001;
  cfg.lock.retry.backoff_cap = 0.01;
  cfg.breaker.consecutive_failures_to_open = 3;
  cfg.breaker.open_duration = 300.0;
  cfg.sleep = [clock = &rig->clock](Duration d) { clock->advance(d); };
  rig->fs = std::make_shared<MemoryLocalFs>();
  rig->client = std::make_unique<UniDriveClient>(clouds, rig->fs, cfg,
                                                 rig->clock, Rng(7));
  return rig;
}

// Ground truth: every referenced placement must hold exactly its
// re-encoded codeword row (checked against the RAW memory clouds, so no
// decorator can mask a defect).
void expect_all_blocks_intact(Rig& rig) {
  const metadata::SyncFolderImage image = rig.client->image();
  const erasure::RsCode code = rig.client->codec();
  for (const auto& [id, seg] : image.segments()) {
    if (seg.refcount == 0) continue;
    auto plain = rig.client->reconstruct_segment(id, {});
    ASSERT_TRUE(plain.is_ok()) << "segment " << id << " unreconstructable";
    for (const metadata::BlockLocation& loc : seg.blocks) {
      auto stored = rig.memory[loc.cloud]->download(
          metadata::block_path(id, loc.block_index));
      ASSERT_TRUE(stored.is_ok())
          << "block " << metadata::block_name(id, loc.block_index)
          << " absent from cloud " << loc.cloud;
      const unidrive::Bytes sealed =
          crypto::convergent_seal(id, ByteSpan(plain.value()));
      const auto expected =
          code.encode_shards(ByteSpan(sealed), {loc.block_index});
      EXPECT_EQ(stored.value(), expected.front().data)
          << "block " << metadata::block_name(id, loc.block_index)
          << " on cloud " << loc.cloud << " does not match its codeword";
    }
  }
}

// First referenced placement of any live segment on cloud `cloud_id`.
metadata::BlockLocation placement_on(const metadata::SyncFolderImage& image,
                                     cloud::CloudId cloud_id,
                                     std::string* segment_id) {
  for (const auto& [id, seg] : image.segments()) {
    if (seg.refcount == 0) continue;
    for (const metadata::BlockLocation& loc : seg.blocks) {
      if (loc.cloud == cloud_id) {
        *segment_id = id;
        return loc;
      }
    }
  }
  ADD_FAILURE() << "no placement on cloud " << cloud_id;
  return {};
}

TEST(RepairScrubTest, DetectsSilentLossAndBitRot) {
  auto rig = make_rig();
  ASSERT_TRUE(rig->fs->write("/a", ByteSpan(Rng(1).bytes(150 << 10))).is_ok());
  ASSERT_TRUE(rig->client->sync().is_ok());

  // Silent defects behind the provider's back: one block vanishes from
  // cloud 1, one rots (same size, flipped byte) on cloud 3.
  std::string lost_seg;
  const metadata::BlockLocation lost =
      placement_on(rig->client->image(), 1, &lost_seg);
  ASSERT_TRUE(rig->faulty[1]
                  ->drop_stored(metadata::block_path(lost_seg, lost.block_index))
                  .is_ok());
  std::string rot_seg;
  const metadata::BlockLocation rotted =
      placement_on(rig->client->image(), 3, &rot_seg);
  ASSERT_TRUE(rig->faulty[3]
                  ->rot_stored(metadata::block_path(rot_seg, rotted.block_index))
                  .is_ok());
  EXPECT_EQ(rig->faulty[1]->lost_blocks(), 1u);
  EXPECT_EQ(rig->faulty[3]->bitrots(), 1u);

  ScrubConfig scrub_cfg;
  scrub_cfg.deep_verify_segments = 64;  // cover the whole pool in one pass
  Scrubber scrubber(*rig->client, rig->client->durability(), scrub_cfg);
  const ScrubReport report = scrubber.run_pass();

  EXPECT_EQ(report.clouds_probed, 5u);
  EXPECT_GT(report.blocks_probed, 0u);
  EXPECT_GE(report.missing, 1u);
  EXPECT_GE(report.corrupt, 1u);
  const auto& tracker = rig->client->durability();
  EXPECT_EQ(tracker->defect_kind(lost_seg, lost.block_index, 1),
            DefectKind::kMissingBlock);
  EXPECT_EQ(tracker->defect_kind(rot_seg, rotted.block_index, 3),
            DefectKind::kCorruptBlock);

  // Idempotent: a second pass re-sights but records nothing new.
  const ScrubReport again = scrubber.run_pass();
  EXPECT_EQ(again.missing, 0u);
  EXPECT_EQ(again.corrupt, 0u);
}

TEST(RepairEngineTest, RestoresFullRedundancyAndObservesMttr) {
  auto rig = make_rig();
  ASSERT_TRUE(rig->fs->write("/a", ByteSpan(Rng(2).bytes(150 << 10))).is_ok());
  ASSERT_TRUE(rig->client->sync().is_ok());

  std::string lost_seg;
  const metadata::BlockLocation lost =
      placement_on(rig->client->image(), 1, &lost_seg);
  ASSERT_TRUE(rig->faulty[1]
                  ->drop_stored(metadata::block_path(lost_seg, lost.block_index))
                  .is_ok());
  std::string rot_seg;
  const metadata::BlockLocation rotted =
      placement_on(rig->client->image(), 3, &rot_seg);
  ASSERT_TRUE(rig->faulty[3]
                  ->rot_stored(metadata::block_path(rot_seg, rotted.block_index))
                  .is_ok());

  ScrubConfig scrub_cfg;
  scrub_cfg.deep_verify_segments = 64;
  Scrubber scrubber(*rig->client, rig->client->durability(), scrub_cfg);
  (void)scrubber.run_pass();
  ASSERT_GE(rig->client->durability()->backlog(), 2u);
  rig->clock.advance(42.0);  // detection -> heal gap feeds the MTTR sample

  RepairEngine engine(*rig->client, rig->client->durability(), RepairConfig{});
  const RepairOutcome outcome = engine.run_slice(100);
  EXPECT_GE(outcome.blocks_healed, 2u);
  EXPECT_EQ(outcome.failures, 0u);
  EXPECT_EQ(outcome.unrecoverable, 0u);
  EXPECT_EQ(rig->client->durability()->backlog(), 0u);

  // Every placement — including the two repaired ones — holds its exact
  // codeword again, and a fresh scrub finds nothing.
  expect_all_blocks_intact(*rig);
  const ScrubReport clean = scrubber.run_pass();
  EXPECT_EQ(clean.missing + clean.corrupt + clean.cloud_lost, 0u);

  const auto metrics = rig->client->observability()->metrics.snapshot();
  EXPECT_GE(metrics.counter_value("repair.blocks_healed"), 2u);
  const auto mttr = metrics.histograms.find("repair.mttr");
  ASSERT_NE(mttr, metrics.histograms.end());
  EXPECT_GE(mttr->second.count, 2u);
  EXPECT_GE(mttr->second.max, 42.0);
}

TEST(RepairEngineTest, DurabilityFloorTripsDegradedAndRepairClearsIt) {
  auto rig = make_rig();
  ASSERT_TRUE(rig->fs->write("/a", ByteSpan(Rng(3).bytes(40 << 10))).is_ok());
  auto healthy = rig->client->sync();
  ASSERT_TRUE(healthy.is_ok());
  EXPECT_FALSE(healthy.value().degraded);
  EXPECT_EQ(healthy.value().durability.under_replicated, 0u);

  // Erode one segment down to exactly k distinct surviving indices: with
  // the default floor of 1 that is under-replicated (degraded) but still
  // recoverable. All breakers stay closed — this is pure data erosion.
  const metadata::SyncFolderImage image = rig->client->image();
  ASSERT_FALSE(image.segments().empty());
  const metadata::SegmentInfo& seg = image.segments().begin()->second;
  const std::size_t k = rig->client->config().k;
  std::set<std::uint32_t> keep;
  const TimePoint now = rig->clock.now();
  for (const metadata::BlockLocation& loc : seg.blocks) {
    if (keep.size() < k) {
      keep.insert(loc.block_index);
    }
    if (keep.count(loc.block_index) > 0) continue;
    ASSERT_TRUE(rig->faulty[loc.cloud]
                    ->drop_stored(metadata::block_path(seg.id, loc.block_index))
                    .is_ok());
    rig->client->durability()->record({DefectKind::kMissingBlock, seg.id,
                                       loc.block_index, loc.cloud, now});
  }

  auto degraded = rig->client->sync();
  ASSERT_TRUE(degraded.is_ok());
  EXPECT_TRUE(degraded.value().degraded)
      << "redundancy below the floor must trip degraded mode";
  EXPECT_EQ(degraded.value().durability.under_replicated, 1u);
  EXPECT_EQ(degraded.value().durability.unrecoverable, 0u);
  EXPECT_EQ(degraded.value().durability.min_surviving, k);
  EXPECT_EQ(degraded.value().durability.min_redundancy, 0);

  RepairEngine engine(*rig->client, rig->client->durability(), RepairConfig{});
  (void)engine.run_slice(100);
  auto repaired = rig->client->sync();
  ASSERT_TRUE(repaired.is_ok());
  EXPECT_FALSE(repaired.value().degraded);
  EXPECT_EQ(repaired.value().durability.under_replicated, 0u);
  expect_all_blocks_intact(*rig);
}

TEST(RepairEngineTest, OrphanGcWaitsOutQuarantineAndSparesLiveBlocks) {
  auto rig = make_rig();
  ASSERT_TRUE(rig->fs->write("/a", ByteSpan(Rng(4).bytes(40 << 10))).is_ok());
  ASSERT_TRUE(rig->client->sync().is_ok());

  // A stray object in /data no metadata references (debris of a crashed
  // uploader or a torn upload).
  const std::string stray =
      std::string(metadata::kDataDir) + "/" + std::string(40, 'e') + "_0";
  ASSERT_TRUE(
      rig->memory[2]->upload(stray, ByteSpan(Rng(5).bytes(128))).is_ok());

  ScrubConfig scrub_cfg;
  scrub_cfg.deep_verify_segments = 0;
  Scrubber scrubber(*rig->client, rig->client->durability(), scrub_cfg);
  RepairConfig repair_cfg;
  repair_cfg.orphan_grace = 600.0;
  RepairEngine engine(*rig->client, rig->client->durability(), repair_cfg);

  // Pass 1 sights the orphan; nothing may be deleted yet (single sighting,
  // no commit landed since, grace not served).
  const ScrubReport pass1 = scrubber.run_pass();
  EXPECT_GE(pass1.orphans_sighted, 1u);
  RepairOutcome out1 = engine.run_slice(100);
  EXPECT_EQ(out1.orphans_collected, 0u);
  EXPECT_TRUE(rig->memory[2]->download(stray).is_ok());

  // A later commit advances the version past the orphan's first sighting
  // (proof it was not an in-flight upload of that commit), and the grace
  // elapses.
  ASSERT_TRUE(rig->fs->write("/b", ByteSpan(Rng(6).bytes(10 << 10))).is_ok());
  ASSERT_TRUE(rig->client->sync().is_ok());
  rig->clock.advance(601.0);
  const ScrubReport pass2 = scrubber.run_pass();
  EXPECT_GE(pass2.orphans_sighted, 1u);
  RepairOutcome out2 = engine.run_slice(100);
  EXPECT_EQ(out2.orphans_collected, 1u);
  EXPECT_FALSE(rig->memory[2]->download(stray).is_ok());

  // Collection never touched live data: every referenced block is intact.
  expect_all_blocks_intact(*rig);
  EXPECT_EQ(rig->client->durability()->orphans_quarantined(), 0u);
}

TEST(RepairEngineTest, CloudLostBlocksAreRehomedOntoHealthyClouds) {
  auto rig = make_rig();
  ASSERT_TRUE(rig->fs->write("/a", ByteSpan(Rng(8).bytes(100 << 10))).is_ok());
  ASSERT_TRUE(rig->client->sync().is_ok());
  // Trim to fair share (1 block per cloud per segment) so healthy clouds
  // have room under the ks security cap for re-homed blocks.
  ASSERT_TRUE(rig->client->cleanup_overprovisioned().is_ok());

  // Cloud 4 dies for good. A foreground round trips its breaker.
  rig->faulty[4]->set_outage(true);
  ASSERT_TRUE(rig->fs->write("/b", ByteSpan(Rng(9).bytes(20 << 10))).is_ok());
  ASSERT_TRUE(rig->client->sync().is_ok());
  ASSERT_EQ(rig->client->health()->state(4), cloud::BreakerState::kOpen);

  ScrubConfig scrub_cfg;
  scrub_cfg.deep_verify_segments = 0;
  scrub_cfg.cloud_lost_after_passes = 2;
  Scrubber scrubber(*rig->client, rig->client->durability(), scrub_cfg);
  const ScrubReport pass1 = scrubber.run_pass();
  EXPECT_EQ(pass1.cloud_lost, 0u);  // one dark pass is not yet "lost"
  const ScrubReport pass2 = scrubber.run_pass();
  EXPECT_GE(pass2.cloud_lost, 1u);

  RepairEngine engine(*rig->client, rig->client->durability(), RepairConfig{});
  const RepairOutcome outcome = engine.run_slice(100);
  EXPECT_GE(outcome.rehomed, 1u);
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(rig->client->durability()->backlog(), 0u);

  // The placement commit arrives through the normal apply path; after the
  // next round no referenced block lives on the dead cloud and every
  // segment is back above the floor (degraded stays true only because the
  // breaker is still open).
  auto report = rig->client->sync();
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().durability.under_replicated, 0u);
  for (const auto& [id, seg] : rig->client->image().segments()) {
    if (seg.refcount == 0) continue;
    for (const metadata::BlockLocation& loc : seg.blocks) {
      EXPECT_NE(loc.cloud, 4u) << "segment " << id << " still references the "
                               << "lost cloud";
    }
  }
  expect_all_blocks_intact(*rig);
}

TEST(RepairServiceTest, DaemonHealsDefectsAsBackgroundMaintenance) {
  auto rig = make_rig();
  core::DaemonConfig daemon_cfg;
  auto service = std::make_shared<RepairService>(*rig->client);
  daemon_cfg.maintenance = service;
  core::SyncDaemon daemon(*rig->client, daemon_cfg);

  ASSERT_TRUE(rig->fs->write("/a", ByteSpan(Rng(10).bytes(60 << 10))).is_ok());
  ASSERT_TRUE(daemon.sync_once().is_ok());

  std::string lost_seg;
  const metadata::BlockLocation lost =
      placement_on(rig->client->image(), 2, &lost_seg);
  ASSERT_TRUE(rig->faulty[2]
                  ->drop_stored(metadata::block_path(lost_seg, lost.block_index))
                  .is_ok());

  // Quiet round: full maintenance budget — the slice scrubs, finds the
  // loss, and heals it in the same tick.
  ASSERT_TRUE(daemon.sync_once().is_ok());
  EXPECT_GE(daemon.stats().maintenance_slices, 1u);
  EXPECT_EQ(daemon.stats().maintenance_errors, 0u);
  EXPECT_EQ(rig->client->durability()->backlog(), 0u);
  EXPECT_GE(service->totals().blocks_healed, 1u);
  expect_all_blocks_intact(*rig);
}

TEST(FaultyCloudTest, SilentDefectInjectorsReportSuccess) {
  auto memory = std::make_shared<cloud::MemoryCloud>(0, "m");
  cloud::FaultProfile profile;
  profile.block_loss_rate = 1.0;
  cloud::FaultyCloud faulty(memory, profile, 99);
  const Bytes payload = Rng(11).bytes(4096);

  // Dropped: the client sees OK, the cloud stores nothing.
  EXPECT_TRUE(faulty.upload("/data/x_0", ByteSpan(payload)).is_ok());
  EXPECT_FALSE(memory->download("/data/x_0").is_ok());
  EXPECT_EQ(faulty.lost_blocks(), 1u);

  // Rotted: the client sees OK, the stored bytes differ at the same size.
  profile.block_loss_rate = 0.0;
  profile.bitrot_rate = 1.0;
  faulty.set_profile(profile);
  EXPECT_TRUE(faulty.upload("/data/y_0", ByteSpan(payload)).is_ok());
  auto stored = memory->download("/data/y_0");
  ASSERT_TRUE(stored.is_ok());
  EXPECT_EQ(stored.value().size(), payload.size());
  EXPECT_NE(stored.value(), payload);
  EXPECT_EQ(faulty.bitrots(), 1u);
}

}  // namespace
}  // namespace unidrive::repair
