// unidrive_cli — a minimal command-line client over PERSISTENT local
// "clouds" (DirectoryCloud). State survives across invocations, so you can
// play with the full sync lifecycle from a shell:
//
//   unidrive_cli init                 # create 5 clouds + a sync folder
//   echo hi > $HOME/.unidrive_demo/folder/hello.txt
//   unidrive_cli sync                 # push
//   unidrive_cli status               # folder + block placement
//   unidrive_cli history /hello.txt   # superseded snapshots
//   unidrive_cli restore /hello.txt   # roll back one version (+ sync)
//   unidrive_cli gc                   # drop dereferenced segments
//
// Everything lives under --root (default $HOME/.unidrive_demo or /tmp).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "cloud/directory_cloud.h"
#include "core/client.h"
#include "obs/obs.h"

using namespace unidrive;
namespace fs = std::filesystem;

namespace {

std::string default_root() {
  if (const char* home = std::getenv("HOME")) {
    return std::string(home) + "/.unidrive_demo";
  }
  return (fs::temp_directory_path() / "unidrive_demo").string();
}

core::UniDriveClient make_client(const std::string& root) {
  cloud::MultiCloud clouds;
  for (cloud::CloudId id = 0; id < 5; ++id) {
    clouds.push_back(std::make_shared<cloud::DirectoryCloud>(
        id, "cloud" + std::to_string(id),
        root + "/clouds/cloud" + std::to_string(id)));
  }
  core::ClientConfig config;
  config.device = "cli";
  config.state_file = root + "/client.state";
  return core::UniDriveClient(
      clouds, std::make_shared<core::DiskLocalFs>(root + "/folder"), config);
}

int cmd_init(const std::string& root) {
  fs::create_directories(root + "/folder");
  for (int id = 0; id < 5; ++id) {
    fs::create_directories(root + "/clouds/cloud" + std::to_string(id));
  }
  std::printf("initialized.\n  sync folder: %s/folder\n  clouds:      "
              "%s/clouds/cloud{0..4}\nDrop files into the folder and run "
              "`sync`.\n", root.c_str(), root.c_str());
  return 0;
}

int cmd_sync(const std::string& root) {
  auto client = make_client(root);
  auto report = client.sync();
  if (!report.is_ok()) {
    std::fprintf(stderr, "sync failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("synced: +%zu uploaded, %zu downloaded, %zu removed, "
              "%zu conflict(s); version %s\n",
              report.value().files_uploaded, report.value().files_downloaded,
              report.value().files_removed, report.value().conflicts.size(),
              report.value().version.to_string().c_str());
  for (const auto& conflict : report.value().conflicts) {
    std::printf("  conflict at %s (copy: %s)\n", conflict.path.c_str(),
                conflict.conflict_copy.c_str());
  }
  if (report.value().degraded) {
    std::printf("DEGRADED: synced with reduced redundancy; unhealthy clouds:\n");
    for (const auto& h : report.value().cloud_health) {
      if (h.state == cloud::BreakerState::kClosed) continue;
      std::printf("  cloud %u: breaker %s (%llu failures)\n", h.id,
                  cloud::breaker_state_name(h.state),
                  static_cast<unsigned long long>(h.failures));
    }
  }
  // Full metrics + span dump of the round, for dashboards/debugging.
  const std::string metrics_path = root + "/metrics.json";
  if (obs::WriteJsonFile(*client.observability(), metrics_path).is_ok()) {
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

int cmd_status(const std::string& root) {
  auto client = make_client(root);
  // Pull the latest committed state without touching local files.
  (void)client.sync();
  const auto& image = client.image();
  std::printf("version: %s\nfiles: %zu, segments: %zu\n",
              image.version().to_string().c_str(), image.files().size(),
              image.segments().size());
  for (const auto& [path, snap] : image.files()) {
    std::printf("  %-40s %8llu bytes, %zu segment(s)\n", path.c_str(),
                static_cast<unsigned long long>(snap.size),
                snap.segment_ids.size());
  }
  std::printf("block placement:\n");
  for (const auto& [id, seg] : image.segments()) {
    std::printf("  %.12s… refs=%u blocks:", id.c_str(), seg.refcount);
    for (const auto& b : seg.blocks) {
      std::printf(" %u@cloud%u", b.block_index, b.cloud);
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_history(const std::string& root, const std::string& path) {
  auto client = make_client(root);
  (void)client.sync();
  const auto history = client.file_history(path);
  if (history.empty()) {
    std::printf("no superseded versions of %s\n", path.c_str());
    return 0;
  }
  std::printf("%zu superseded version(s) of %s (most recent first):\n",
              history.size(), path.c_str());
  for (std::size_t i = 0; i < history.size(); ++i) {
    std::printf("  [%zu] %llu bytes, hash %.12s…, from %s\n", i,
                static_cast<unsigned long long>(history[i].size),
                history[i].content_hash.c_str(),
                history[i].origin_device.c_str());
  }
  return 0;
}

int cmd_restore(const std::string& root, const std::string& path) {
  auto client = make_client(root);
  (void)client.sync();
  const Status restored = client.restore_previous_version(path);
  if (!restored.is_ok()) {
    std::fprintf(stderr, "restore failed: %s\n", restored.to_string().c_str());
    return 1;
  }
  auto report = client.sync();  // commit the rollback
  std::printf("restored %s to its previous version%s\n", path.c_str(),
              report.is_ok() ? " (committed)" : " (commit pending)");
  return 0;
}

int cmd_gc(const std::string& root) {
  auto client = make_client(root);
  (void)client.sync();
  auto collected = client.collect_garbage();
  if (!collected.is_ok()) {
    std::fprintf(stderr, "gc failed: %s\n",
                 collected.status().to_string().c_str());
    return 1;
  }
  std::printf("collected %zu dereferenced segment(s)\n", collected.value());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: unidrive_cli [--root DIR] "
               "init|sync|status|history PATH|restore PATH|gc\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = default_root();
  int arg = 1;
  if (arg + 1 < argc && std::strcmp(argv[arg], "--root") == 0) {
    root = argv[arg + 1];
    arg += 2;
  }
  if (arg >= argc) return usage();
  const std::string command = argv[arg++];

  if (command == "init") return cmd_init(root);
  if (command == "sync") return cmd_sync(root);
  if (command == "status") return cmd_status(root);
  if (command == "gc") return cmd_gc(root);
  if (command == "history" && arg < argc) return cmd_history(root, argv[arg]);
  if (command == "restore" && arg < argc) return cmd_restore(root, argv[arg]);
  return usage();
}
