// Real-disk synchronization: two actual directories on this machine kept in
// sync through the multi-cloud — the closest thing to running the Windows
// app. Uses DiskLocalFs (std::filesystem) and, optionally, bandwidth-
// throttled clouds so transfer pacing is observable.
//
// Run:  build/examples/disk_sync [--throttle]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>

#include "cloud/latent_cloud.h"
#include "cloud/memory_cloud.h"
#include "core/client.h"
#include "workload/files.h"

using namespace unidrive;
namespace fs = std::filesystem;

int main(int argc, char** argv) {
  const bool throttle = argc > 1 && std::strcmp(argv[1], "--throttle") == 0;

  const fs::path root = fs::temp_directory_path() / "unidrive_disk_sync";
  fs::remove_all(root);
  const std::string dir_a = (root / "laptop").string();
  const std::string dir_b = (root / "desktop").string();

  // Five clouds; with --throttle each gets a distinct real-time bandwidth
  // so the scheduler's preference for fast clouds is visible in wall time.
  cloud::MultiCloud clouds;
  for (cloud::CloudId id = 0; id < 5; ++id) {
    cloud::CloudPtr c =
        std::make_shared<cloud::MemoryCloud>(id, "cloud" + std::to_string(id));
    if (throttle) {
      cloud::LinkProfile link;
      link.up_bytes_per_sec = (5.0 - id) * 2e6;  // 10, 8, 6, 4, 2 MB/s
      link.down_bytes_per_sec = (5.0 - id) * 3e6;
      link.request_latency_sec = 0.02;
      c = std::make_shared<cloud::LatentCloud>(c, link);
    }
    clouds.push_back(c);
  }

  core::ClientConfig config_a;
  config_a.device = "laptop";
  core::ClientConfig config_b = config_a;
  config_b.device = "desktop";

  core::UniDriveClient laptop(clouds,
                              std::make_shared<core::DiskLocalFs>(dir_a),
                              config_a);
  core::UniDriveClient desktop(clouds,
                               std::make_shared<core::DiskLocalFs>(dir_b),
                               config_b);

  // Laptop writes a small project tree.
  std::printf("sync folders:\n  %s\n  %s\n\n", dir_a.c_str(), dir_b.c_str());
  Rng rng(123);
  core::DiskLocalFs laptop_fs(dir_a);
  laptop_fs.write("/project/readme.md", ByteSpan(bytes_from_string(
                      "# my project\nsynced via the multi-cloud\n")));
  laptop_fs.write("/project/data.bin",
                  ByteSpan(workload::random_file(rng, 2 << 20)));
  laptop_fs.write("/photos/cat.jpg",
                  ByteSpan(workload::random_file(rng, 800 << 10)));

  auto up = laptop.sync();
  if (!up.is_ok()) {
    std::fprintf(stderr, "laptop sync failed: %s\n",
                 up.status().to_string().c_str());
    return 1;
  }
  std::printf("laptop pushed %zu files (%zu segments) as erasure-coded "
              "blocks\n", up.value().files_uploaded,
              up.value().segments_uploaded);

  auto down = desktop.sync();
  if (!down.is_ok()) {
    std::fprintf(stderr, "desktop sync failed: %s\n",
                 down.status().to_string().c_str());
    return 1;
  }
  std::printf("desktop pulled %zu files; on-disk tree:\n",
              down.value().files_downloaded);
  for (const auto& entry : fs::recursive_directory_iterator(dir_b)) {
    if (entry.is_regular_file()) {
      std::printf("  %s (%ju bytes)\n", entry.path().c_str(),
                  static_cast<std::uintmax_t>(entry.file_size()));
    }
  }

  // Edit on the desktop, delete on the laptop; both propagate.
  core::DiskLocalFs desktop_fs(dir_b);
  desktop_fs.write("/project/readme.md", ByteSpan(bytes_from_string(
                       "# my project\nedited on the desktop\n")));
  fs::remove(fs::path(dir_a) / "photos/cat.jpg");

  if (!desktop.sync().is_ok() || !laptop.sync().is_ok() ||
      !desktop.sync().is_ok()) {
    std::fprintf(stderr, "follow-up syncs failed\n");
    return 1;
  }

  const auto readme_a = laptop_fs.read("/project/readme.md");
  const bool edit_arrived =
      readme_a.is_ok() &&
      string_from_bytes(ByteSpan(readme_a.value())).find("desktop") !=
          std::string::npos;
  const bool delete_arrived = !fs::exists(fs::path(dir_b) / "photos/cat.jpg");
  std::printf("\nedit reached laptop: %s; deletion reached desktop: %s\n",
              edit_arrived ? "yes" : "NO", delete_arrived ? "yes" : "NO");

  fs::remove_all(root);
  return edit_arrived && delete_arrived ? 0 : 1;
}
