// Quickstart: the minimum viable UniDrive setup.
//
// Builds a multi-cloud from five in-memory cloud providers (stand-ins for
// Dropbox/OneDrive/etc. REST endpoints), attaches one device with an
// in-memory sync folder, adds a file, runs one sync round, and shows where
// the erasure-coded blocks ended up. A second device then joins the same
// multi-cloud and receives the file.
//
// Run:  build/examples/quickstart
#include <cstdio>
#include <memory>

#include "cloud/memory_cloud.h"
#include "core/client.h"
#include "workload/files.h"

using namespace unidrive;

int main() {
  // 1. The multi-cloud: five independent providers. In a real deployment
  //    each of these would be an adapter speaking one vendor's REST API.
  const char* vendor_names[] = {"Dropbox", "OneDrive", "GoogleDrive",
                                "BaiduPCS", "DBank"};
  cloud::MultiCloud clouds;
  for (cloud::CloudId id = 0; id < 5; ++id) {
    clouds.push_back(std::make_shared<cloud::MemoryCloud>(
        id, vendor_names[id]));
  }

  // 2. A device with a sync folder. Config: k=3 blocks per segment,
  //    tolerate 2 cloud outages (Kr=3), no single cloud can read data
  //    (Ks=2) — the paper's defaults.
  core::ClientConfig config;
  config.device = "laptop";
  config.passphrase = "correct horse battery staple";
  auto folder = std::make_shared<core::MemoryLocalFs>();
  core::UniDriveClient laptop(clouds, folder, config);

  // 3. Put a file into the folder and sync.
  Rng rng(2024);
  const Bytes photo = workload::random_file(rng, 3 << 20);  // 3 MB
  folder->write("/photos/vacation.jpg", ByteSpan(photo));

  auto report = laptop.sync();
  if (!report.is_ok()) {
    std::fprintf(stderr, "sync failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("laptop synced: %zu file(s), %zu new segment(s), version %s\n",
              report.value().files_uploaded, report.value().segments_uploaded,
              report.value().version.to_string().c_str());

  // 4. Inspect the block placement: every cloud holds at most Ks-bounded
  //    shares; no provider can reconstruct the photo alone.
  for (const auto& [seg_id, seg] : laptop.image().segments()) {
    std::printf("segment %.12s… (%llu bytes) blocks:", seg_id.c_str(),
                static_cast<unsigned long long>(seg.size));
    for (const auto& block : seg.blocks) {
      std::printf(" #%u->%s", block.block_index,
                  vendor_names[block.cloud]);
    }
    std::printf("\n");
  }

  // 5. A second device joins with an empty folder and catches up.
  core::ClientConfig config2 = config;
  config2.device = "desktop";
  auto folder2 = std::make_shared<core::MemoryLocalFs>();
  core::UniDriveClient desktop(clouds, folder2, config2);
  auto report2 = desktop.sync();
  if (!report2.is_ok()) {
    std::fprintf(stderr, "desktop sync failed: %s\n",
                 report2.status().to_string().c_str());
    return 1;
  }

  auto fetched = folder2->read("/photos/vacation.jpg");
  const bool identical = fetched.is_ok() && fetched.value() == photo;
  std::printf("desktop synced: downloaded %zu file(s); content identical: %s\n",
              report2.value().files_downloaded, identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
