// Scheduler playground: watch over-provisioning and dynamic scheduling work.
//
// Runs the same 32 MB upload twice on an identical simulated network with
// one deliberately slow cloud — once with UniDrive's scheduler, once with
// the static multi-cloud benchmark — and prints a per-block trace showing
// how UniDrive routes extra parity blocks to the fast clouds instead of
// waiting for the slow one.
//
// Run:  build/examples/scheduler_playground
#include <cstdio>

#include "sched/upload_scheduler.h"
#include "sim/job_runner.h"
#include "sim/profiles.h"
#include "workload/files.h"

using namespace unidrive;

namespace {

constexpr std::uint64_t kBytes = 32 << 20;

double run_once(bool unidrive, bool verbose) {
  sim::SimEnv env(4242);
  sim::FluidNet net(env);

  // Hand-built network: four decent clouds and one crawler.
  const double mbps = 1e6 / 8;
  const double rates[5] = {20 * mbps, 14 * mbps, 10 * mbps, 8 * mbps,
                           0.8 * mbps};
  std::vector<std::unique_ptr<sim::SimCloud>> clouds;
  for (std::uint32_t id = 0; id < 5; ++id) {
    sim::SimCloudConfig config;
    config.id = id;
    config.name = "cloud" + std::to_string(id);
    config.up = sim::constant_bw(rates[id]);
    config.down = sim::constant_bw(rates[id] * 1.5);
    config.request_latency = 0.1;
    clouds.push_back(std::make_unique<sim::SimCloud>(env, net, config));
  }
  std::vector<sim::SimCloud*> ptrs;
  for (const auto& c : clouds) ptrs.push_back(c.get());

  const auto specs = workload::upload_specs({kBytes}, 4 << 20, "demo");
  sched::UploadOptions options;
  options.overprovision = unidrive;
  options.availability_first = unidrive;
  auto scheduler = std::make_shared<sched::UploadScheduler>(
      sched::CodeParams{}, std::vector<cloud::CloudId>{0, 1, 2, 3, 4}, specs,
      options);

  sched::ThroughputMonitor monitor;
  sim::RunConfig run;
  run.dynamic_polling = unidrive;
  auto runner = std::make_shared<sim::JobRunner<sched::UploadScheduler>>(
      env, ptrs, scheduler, monitor, run, sched::Direction::kUpload);

  bool done = false;
  double available_at = -1;  // when the file became usable (the paper's
                             // "available time" metric — reliability fill
                             // continues in the background afterwards)
  runner->on_progress = [&] {
    if (available_at < 0 && scheduler->all_available()) {
      available_at = env.now();
    }
  };
  runner->start([&done] { done = true; });
  while (!done && env.step()) {
  }

  if (verbose) {
    std::printf("\nfinal block placement (%s):\n",
                unidrive ? "UniDrive" : "static benchmark");
    std::map<cloud::CloudId, int> totals;
    for (const auto& spec : specs) {
      for (const auto& seg : spec.segments) {
        for (const auto& loc : scheduler->locations(seg.id)) {
          ++totals[loc.cloud];
        }
      }
    }
    for (const auto& [cloud_id, count] : totals) {
      std::printf("  cloud%u (%4.1f Mbps): %2d blocks %s\n", cloud_id,
                  rates[cloud_id] / mbps, count,
                  std::string(static_cast<std::size_t>(count), '#').c_str());
    }
    const auto surplus = scheduler->overprovisioned_blocks();
    std::printf("  over-provisioned placements: %zu\n", surplus.size());
    std::printf("  available at %.1f s, fully reliable at %.1f s\n",
                available_at, runner->finish_time());
  }
  return available_at;
}

}  // namespace

int main() {
  std::printf("=== 32 MB upload to 4 fast clouds + 1 slow cloud ===\n");
  const double unidrive = run_once(true, true);
  const double benchmark = run_once(false, true);
  std::printf("\navailability time: UniDrive %.1f s vs static benchmark %.1f s"
              " (%.2fx)\n",
              unidrive, benchmark, benchmark / unidrive);
  std::printf("the slow cloud no longer gates the upload: fast clouds absorb "
              "extra parity blocks.\n");
  return unidrive <= benchmark ? 0 : 1;
}
