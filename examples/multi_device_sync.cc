// Multi-device synchronization with concurrent edits and conflicts.
//
// Three devices share one multi-cloud. The example walks through:
//   1. normal propagation of adds/edits/deletes between devices,
//   2. a genuine conflict (two devices edit the same file between syncs)
//      resolved by UniDrive's keep-both policy,
//   3. segment-level deduplication (copying a file costs no new uploads).
//
// Run:  build/examples/multi_device_sync
#include <cstdio>
#include <memory>

#include "cloud/memory_cloud.h"
#include "cloud/stats_cloud.h"
#include "core/client.h"
#include "workload/files.h"

using namespace unidrive;

namespace {

Bytes text(const std::string& s) { return bytes_from_string(s); }

void must(const Result<core::SyncReport>& report, const char* what) {
  if (!report.is_ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 report.status().to_string().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  cloud::MultiCloud clouds;
  std::vector<std::shared_ptr<cloud::StatsCloud>> stats;
  for (cloud::CloudId id = 0; id < 5; ++id) {
    auto memory = std::make_shared<cloud::MemoryCloud>(
        id, "cloud" + std::to_string(id));
    auto wrapped = std::make_shared<cloud::StatsCloud>(memory);
    stats.push_back(wrapped);
    clouds.push_back(wrapped);
  }

  auto make_device = [&](const std::string& name) {
    core::ClientConfig config;
    config.device = name;
    return std::make_pair(std::make_shared<core::MemoryLocalFs>(), config);
  };
  auto [fs_a, cfg_a] = make_device("alice-laptop");
  auto [fs_b, cfg_b] = make_device("alice-phone");
  auto [fs_c, cfg_c] = make_device("alice-desktop");
  core::UniDriveClient a(clouds, fs_a, cfg_a);
  core::UniDriveClient b(clouds, fs_b, cfg_b);
  core::UniDriveClient c(clouds, fs_c, cfg_c);

  // --- 1. propagation ---------------------------------------------------------
  std::printf("== 1. basic propagation ==\n");
  fs_a->write("/notes/todo.txt", ByteSpan(text("buy milk")));
  must(a.sync(), "a.sync");
  must(b.sync(), "b.sync");
  must(c.sync(), "c.sync");
  std::printf("phone sees: \"%s\"\n",
              string_from_bytes(ByteSpan(fs_b->read("/notes/todo.txt").value()))
                  .c_str());

  // --- 2. conflict -------------------------------------------------------------
  std::printf("\n== 2. conflicting edits ==\n");
  fs_a->write("/notes/todo.txt", ByteSpan(text("buy milk and bread")));
  fs_b->write("/notes/todo.txt", ByteSpan(text("buy oat milk")));
  must(a.sync(), "a.sync");  // laptop commits first
  auto rb = b.sync();        // phone detects the conflict while committing
  must(rb, "b.sync");
  if (rb.value().conflicts.empty()) {
    std::fprintf(stderr, "expected a conflict!\n");
    return 1;
  }
  const auto& conflict = rb.value().conflicts.front();
  std::printf("conflict at %s; both versions kept:\n", conflict.path.c_str());
  std::printf("  %-40s \"%s\"\n", conflict.path.c_str(),
              string_from_bytes(ByteSpan(fs_b->read(conflict.path).value()))
                  .c_str());
  std::printf("  %-40s \"%s\"\n", conflict.conflict_copy.c_str(),
              string_from_bytes(
                  ByteSpan(fs_b->read(conflict.conflict_copy).value()))
                  .c_str());
  must(c.sync(), "c.sync");
  std::printf("desktop now has %zu file(s) — conflicts propagate everywhere\n",
              fs_c->list_files().size());

  // --- 3. dedup ------------------------------------------------------------------
  std::printf("\n== 3. deduplication ==\n");
  Rng rng(7);
  const Bytes big = workload::random_file(rng, 2 << 20);
  fs_a->write("/data/original.bin", ByteSpan(big));
  must(a.sync(), "a.sync");
  std::uint64_t uploaded_before = 0;
  for (const auto& s : stats) uploaded_before += s->stats().payload_up;

  fs_a->write("/data/copy.bin", ByteSpan(big));  // identical content
  must(a.sync(), "a.sync");
  std::uint64_t uploaded_after = 0;
  for (const auto& s : stats) uploaded_after += s->stats().payload_up;

  std::printf("2 MB copy cost only %llu KB of upload traffic "
              "(segments dedup'ed, metadata only)\n",
              static_cast<unsigned long long>(
                  (uploaded_after - uploaded_before) / 1024));

  for (const auto& [id, seg] : a.image().segments()) {
    if (seg.refcount > 1) {
      std::printf("segment %.12s… is shared by %u files\n", id.c_str(),
                  seg.refcount);
    }
  }
  return 0;
}
