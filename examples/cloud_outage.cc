// Reliability and membership management under cloud outages.
//
// Demonstrates the paper's reliability story end to end:
//   1. a file synced with Kr=3, Ks=2 survives TWO simultaneous cloud
//      outages (any 3 of 5 clouds suffice);
//   2. a single cloud can never reconstruct the data (security);
//   3. a dead cloud can be removed and a fresh one added — the client
//      rebalances blocks so the guarantees hold for the new membership.
//
// Run:  build/examples/cloud_outage
#include <cstdio>
#include <memory>

#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "core/client.h"
#include "workload/files.h"

using namespace unidrive;

int main() {
  // Five clouds, each wrapped in a fault injector we can switch off.
  cloud::MultiCloud clouds;
  std::vector<std::shared_ptr<cloud::FaultyCloud>> faults;
  for (cloud::CloudId id = 0; id < 5; ++id) {
    auto memory = std::make_shared<cloud::MemoryCloud>(
        id, "cloud" + std::to_string(id));
    auto faulty =
        std::make_shared<cloud::FaultyCloud>(memory, cloud::FaultProfile{}, id);
    faults.push_back(faulty);
    clouds.push_back(faulty);
  }

  core::ClientConfig config;
  config.device = "workstation";
  auto folder = std::make_shared<core::MemoryLocalFs>();
  core::UniDriveClient workstation(clouds, folder, config);

  Rng rng(99);
  const Bytes dataset = workload::random_file(rng, 1 << 20);
  folder->write("/research/results.csv", ByteSpan(dataset));
  auto up = workstation.sync();
  if (!up.is_ok()) {
    std::fprintf(stderr, "initial sync failed: %s\n",
                 up.status().to_string().c_str());
    return 1;
  }
  std::printf("uploaded with Kr=3 (any 3 clouds recover), Ks=2 "
              "(no single cloud can read)\n");

  // --- 1. two clouds die; a fresh device still recovers everything -------------
  std::printf("\n== outage: clouds 0 and 1 go down ==\n");
  faults[0]->set_outage(true);
  faults[1]->set_outage(true);

  core::ClientConfig config2 = config;
  config2.device = "rescue-laptop";
  auto folder2 = std::make_shared<core::MemoryLocalFs>();
  core::UniDriveClient rescue(clouds, folder2, config2);
  auto down = rescue.sync();
  const bool recovered = down.is_ok() &&
                         folder2->read("/research/results.csv").is_ok() &&
                         folder2->read("/research/results.csv").value() ==
                             dataset;
  std::printf("rescue laptop recovered the dataset from 3 live clouds: %s\n",
              recovered ? "yes" : "NO");
  if (!recovered) return 1;

  // --- 2. security: any single cloud holds < k distinct blocks ---------------
  std::printf("\n== security check ==\n");
  for (const auto& [seg_id, seg] : workstation.image().segments()) {
    std::map<cloud::CloudId, int> per_cloud;
    for (const auto& b : seg.blocks) ++per_cloud[b.cloud];
    int worst = 0;
    for (const auto& [c, n] : per_cloud) worst = std::max(worst, n);
    std::printf("segment %.12s…: max blocks on any one cloud = %d (< k = %zu)\n",
                seg_id.c_str(), worst, workstation.config().k);
  }

  // --- 3. membership change: drop the dead cloud 0, add a new vendor -----------
  std::printf("\n== membership: remove dead cloud 0, add cloud 5 ==\n");
  faults[1]->set_outage(false);  // cloud 1 recovers; cloud 0 stays dead
  const Status removed = workstation.remove_cloud(0);
  std::printf("remove_cloud(0): %s (N is now 4)\n",
              removed.is_ok() ? "ok" : removed.to_string().c_str());

  auto new_cloud = std::make_shared<cloud::MemoryCloud>(5, "newvendor");
  const Status added = workstation.add_cloud(new_cloud);
  std::printf("add_cloud(newvendor): %s (N is now 5; fair shares rebalanced)\n",
              added.is_ok() ? "ok" : added.to_string().c_str());
  std::printf("newvendor now stores %zu block file(s)\n",
              new_cloud->file_count());

  // The dataset must still decode after the reshuffle.
  core::ClientConfig config3 = config;
  config3.device = "verify-device";
  auto folder3 = std::make_shared<core::MemoryLocalFs>();
  cloud::MultiCloud new_membership = workstation.clouds();
  core::UniDriveClient verifier(new_membership, folder3, config3);
  auto verify = verifier.sync();
  const bool ok = verify.is_ok() &&
                  folder3->read("/research/results.csv").is_ok() &&
                  folder3->read("/research/results.csv").value() == dataset;
  std::printf("post-rebalance recovery: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
